"""The attributed network model shared by hosting and query networks.

A :class:`Network` is a thin, domain-oriented layer over
:class:`networkx.Graph` (or :class:`networkx.DiGraph` for directed
infrastructures).  It adds:

* an :class:`~repro.graphs.attributes.AttributeSchema` describing the typed
  node and edge attributes (so GraphML round-trips preserve types);
* convenient accessors used heavily by the search algorithms
  (:meth:`node_attrs`, :meth:`edge_attrs`, :meth:`neighbors`, :meth:`degree`)
  that avoid repeatedly constructing networkx views in the inner loops;
* validation helpers and a consistent error model.

Node identifiers may be any hashable value; the generators in
:mod:`repro.topology` use strings (e.g. ``"site03"``) or integers.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.graphs.attributes import AttributeSchema, infer_schema
from repro.graphs.errors import DuplicateNodeError, GraphError, MissingNodeError
from repro.graphs.journal import (
    EDGE_ADDED,
    EDGE_ATTRS,
    EDGE_REMOVED,
    NODE_ADDED,
    NODE_ATTRS,
    NODE_REMOVED,
    MutationJournal,
    NetworkDelta,
)

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


class Network:
    """An attributed graph: the common base of hosting and query networks.

    Parameters
    ----------
    name:
        Human-readable name (carried into GraphML and experiment reports).
    directed:
        Whether edges are directed.  The paper treats PlanetLab and BRITE
        topologies as undirected; directed graphs are supported because the
        filter-update rule in §V-A footnote 3 distinguishes the two cases.
    schema:
        Optional attribute schema.  When omitted, a schema is inferred lazily
        whenever one is needed (e.g. when writing GraphML).
    """

    def __init__(self, name: str = "network", directed: bool = False,
                 schema: Optional[AttributeSchema] = None) -> None:
        self.name = name
        self._graph: nx.Graph = nx.DiGraph() if directed else nx.Graph()
        self._schema = schema
        #: Per-node neighbour lists, filled lazily by :meth:`neighbors` and
        #: invalidated by the mutators below.  The search algorithms call
        #: ``neighbors`` once per expansion step, and for directed graphs the
        #: uncached version built two sets and a union every time.
        self._adjacency: Dict[NodeId, List[NodeId]] = {}
        #: Monotonic mutation epoch, bumped by every mutator.  Compiled
        #: artifacts derived from this network (hosting compiles, embedding
        #: plans) record the epoch they were built at, so a staleness check
        #: is a single integer comparison instead of a structural diff.
        self._mutation_count: int = 0
        #: Bounded structured history of mutations (what changed, not just
        #: how often).  Consumed by the incremental recompile paths via
        #: :meth:`delta_since`; overflow simply degrades them to a full
        #: rebuild.
        self._journal = MutationJournal()

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #

    #: Derived, per-process caches memoised on the instance by other layers
    #: (the hosting compile, the request fingerprint digest).  They are
    #: rebuilt on demand, so pickling — notably shipping networks to the
    #: shard workers of :mod:`repro.core.parallel` — drops them to keep the
    #: payload lean and free of cross-process aliasing.
    _DERIVED_CACHE_ATTRS = ("_hosting_compile", "_structure_digest")

    @classmethod
    def register_derived_cache(cls, attr: str) -> None:
        """Register *attr* as a derived per-process cache dropped on pickle.

        Layers that memoise compiled artifacts on a network instance (the
        way :mod:`repro.core.filters` hangs the hosting compile here) call
        this once at import so ``__getstate__`` strips their attribute too —
        shard payloads must never ship compiled handles or array views that
        alias the parent's buffers.
        """
        if attr not in cls._DERIVED_CACHE_ATTRS:
            cls._DERIVED_CACHE_ATTRS = cls._DERIVED_CACHE_ATTRS + (attr,)

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_adjacency"] = {}
        # The journal is history, not state: a deserialized copy (a shard
        # worker's network) must not claim to know deltas it never saw, so
        # it ships empty with its floor at the current epoch.
        state["_journal"] = MutationJournal(
            capacity=self._journal.capacity,
            floor_epoch=self._mutation_count)
        for attr in self._DERIVED_CACHE_ATTRS:
            state.pop(attr, None)
        return state

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_node(self, node: NodeId, **attrs: Any) -> NodeId:
        """Add *node* with the given attributes.

        Raises
        ------
        DuplicateNodeError
            If the node already exists (silently merging attributes would
            hide workload-generation bugs).
        """
        if node in self._graph:
            raise DuplicateNodeError(f"node {node!r} already exists in {self.name!r}")
        self._graph.add_node(node, **attrs)
        self._record_mutation(NODE_ADDED, (node,))
        return node

    def add_edge(self, u: NodeId, v: NodeId, **attrs: Any) -> Edge:
        """Add an edge between existing nodes *u* and *v* with attributes."""
        for endpoint in (u, v):
            if endpoint not in self._graph:
                raise MissingNodeError(f"node {endpoint!r} does not exist in {self.name!r}")
        if u == v:
            raise GraphError(f"self-loop {u!r} is not a meaningful embedding target")
        self._graph.add_edge(u, v, **attrs)
        self._adjacency.pop(u, None)
        self._adjacency.pop(v, None)
        self._record_mutation(EDGE_ADDED, (u, v))
        return (u, v)

    def update_node(self, node: NodeId, **attrs: Any) -> None:
        """Merge *attrs* into an existing node's attribute dict."""
        if node not in self._graph:
            raise MissingNodeError(f"node {node!r} does not exist in {self.name!r}")
        self._graph.nodes[node].update(attrs)
        self._record_mutation(NODE_ATTRS, (node,), tuple(attrs))

    def update_edge(self, u: NodeId, v: NodeId, **attrs: Any) -> None:
        """Merge *attrs* into an existing edge's attribute dict."""
        if not self._graph.has_edge(u, v):
            raise MissingNodeError(f"edge ({u!r}, {v!r}) does not exist in {self.name!r}")
        self._graph.edges[u, v].update(attrs)
        self._record_mutation(EDGE_ATTRS, (u, v), tuple(attrs))

    def remove_node(self, node: NodeId) -> None:
        """Remove *node* and its incident edges."""
        if node not in self._graph:
            raise MissingNodeError(f"node {node!r} does not exist in {self.name!r}")
        self._graph.remove_node(node)
        # Every former neighbour's adjacency changed; drop the whole cache.
        self._adjacency.clear()
        self._record_mutation(NODE_REMOVED, (node,))

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the edge between *u* and *v*."""
        if not self._graph.has_edge(u, v):
            raise MissingNodeError(f"edge ({u!r}, {v!r}) does not exist in {self.name!r}")
        self._graph.remove_edge(u, v)
        self._adjacency.pop(u, None)
        self._adjacency.pop(v, None)
        self._record_mutation(EDGE_REMOVED, (u, v))

    def _record_mutation(self, kind: str, subject: Tuple[NodeId, ...],
                         attrs: Tuple[str, ...] = ()) -> None:
        """Bump the epoch and journal one mutation (every mutator funnels here)."""
        self._mutation_count += 1
        self._journal.record(self._mutation_count, kind, subject, attrs)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    @property
    def directed(self) -> bool:
        """Whether this network's edges are directed."""
        return self._graph.is_directed()

    @property
    def mutation_count(self) -> int:
        """Monotonic count of mutations applied through the mutator methods.

        Mutating the raw :attr:`graph` handle bypasses the counter, exactly
        as it bypasses the adjacency-cache invalidation — use the
        :class:`Network` mutators.
        """
        return self._mutation_count

    @property
    def mutation_journal(self) -> MutationJournal:
        """The bounded structured history behind :meth:`delta_since`."""
        return self._journal

    def delta_since(self, epoch: int) -> Optional[NetworkDelta]:
        """What changed since *epoch*, or ``None`` when unreconstructible.

        ``None`` means the journal overflowed past *epoch* (or *epoch* is
        from the future); callers holding artifacts compiled at *epoch*
        must then rebuild from scratch.  An empty delta means the network
        has not mutated since *epoch*.
        """
        return self._journal.delta_since(epoch, self._mutation_count)

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (shared, not a copy)."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._graph.number_of_edges()

    def nodes(self) -> List[NodeId]:
        """All node identifiers (list copy, stable iteration order)."""
        return list(self._graph.nodes())

    def edges(self) -> List[Edge]:
        """All edges as ``(u, v)`` tuples."""
        return list(self._graph.edges())

    def has_node(self, node: NodeId) -> bool:
        """Whether *node* exists."""
        return node in self._graph

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether an edge ``u -> v`` (or ``u -- v`` when undirected) exists."""
        return self._graph.has_edge(u, v)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        return self.num_nodes

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._graph.nodes())

    def node_attrs(self, node: NodeId) -> Dict[str, Any]:
        """The attribute dict of *node* (live reference)."""
        try:
            return self._graph.nodes[node]
        except KeyError:
            raise MissingNodeError(f"node {node!r} does not exist in {self.name!r}") from None

    def edge_attrs(self, u: NodeId, v: NodeId) -> Dict[str, Any]:
        """The attribute dict of edge ``(u, v)`` (live reference)."""
        try:
            return self._graph.edges[u, v]
        except KeyError:
            raise MissingNodeError(
                f"edge ({u!r}, {v!r}) does not exist in {self.name!r}") from None

    def get_node_attr(self, node: NodeId, name: str, default: Any = None) -> Any:
        """A single node attribute, with a default."""
        return self.node_attrs(node).get(name, default)

    def get_edge_attr(self, u: NodeId, v: NodeId, name: str, default: Any = None) -> Any:
        """A single edge attribute, with a default."""
        return self.edge_attrs(u, v).get(name, default)

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Neighbors of *node* (successors+predecessors when directed).

        Backed by a per-node cache invalidated by :meth:`add_edge`,
        :meth:`remove_edge` and :meth:`remove_node` — the search algorithms
        ask for adjacency at every expansion step.  Mutating the graph
        through the raw :attr:`graph` handle bypasses the invalidation; use
        the :class:`Network` mutators.  For directed graphs the order is
        deterministic: successors first, then predecessors not already seen.
        """
        cached = self._adjacency.get(node)
        if cached is None:
            graph = self._graph
            if graph.is_directed():
                cached = list(graph.successors(node))
                seen = set(cached)
                cached += [p for p in graph.predecessors(node) if p not in seen]
            else:
                cached = list(graph.neighbors(node))
            self._adjacency[node] = cached
        return list(cached)

    def degree(self, node: NodeId) -> int:
        """Degree of *node* (total degree when directed)."""
        return int(self._graph.degree(node))

    def adjacency(self) -> Dict[NodeId, List[NodeId]]:
        """Full adjacency mapping node -> neighbor list (undirected view)."""
        return {node: self.neighbors(node) for node in self._graph.nodes()}

    def is_connected(self) -> bool:
        """Whether the network is (weakly) connected; empty graphs count as connected."""
        if self.num_nodes == 0:
            return True
        if self.directed:
            return nx.is_weakly_connected(self._graph)
        return nx.is_connected(self._graph)

    def density(self) -> float:
        """Edge density in [0, 1]."""
        return nx.density(self._graph)

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> AttributeSchema:
        """The attribute schema, inferring one from current data if unset."""
        if self._schema is None:
            self._schema = infer_schema(
                (self._graph.nodes[n] for n in self._graph.nodes()),
                (self._graph.edges[e] for e in self._graph.edges()),
            )
        return self._schema

    @schema.setter
    def schema(self, value: Optional[AttributeSchema]) -> None:
        self._schema = value

    def refresh_schema(self) -> AttributeSchema:
        """Re-infer the schema from current attribute data."""
        self._schema = None
        return self.schema

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #

    def copy(self, name: Optional[str] = None) -> "Network":
        """A deep-ish copy (attribute dicts are copied, values shared)."""
        clone = type(self)(name=name or self.name, directed=self.directed,
                           schema=self._schema)
        clone._graph = self._graph.copy()
        return clone

    def subnetwork(self, nodes: Iterable[NodeId], name: Optional[str] = None) -> "Network":
        """The induced sub-network on *nodes* (attributes copied).

        Built explicitly rather than via ``networkx.Graph.subgraph(...)``:
        the view's iteration order runs through a set and therefore varies
        with the process's hash seed, which made sampled workloads (and
        everything seeded from them) irreproducible across processes.  Here
        nodes keep the caller's order and edges follow the adjacency
        structure, so equal inputs yield identical sub-networks everywhere.
        """
        node_list = list(nodes)
        missing = [n for n in node_list if n not in self._graph]
        if missing:
            raise MissingNodeError(f"nodes {missing!r} do not exist in {self.name!r}")
        sub = type(self)(name=name or f"{self.name}-sub", directed=self.directed,
                         schema=self._schema)
        graph = self._graph
        sub_graph = sub._graph
        keep = set(node_list)
        for node in node_list:
            sub_graph.add_node(node, **dict(graph.nodes[node]))
        if self.directed:
            # edges(node) yields each arc exactly once, from its source.
            for node in node_list:
                for _, neighbor, data in graph.edges(node, data=True):
                    if neighbor in keep:
                        sub_graph.add_edge(node, neighbor, **dict(data))
        else:
            # Undirected incidence yields each edge from both endpoints.
            seen = set()
            for node in node_list:
                for _, neighbor, data in graph.edges(node, data=True):
                    if neighbor not in keep or (neighbor, node) in seen:
                        continue
                    seen.add((node, neighbor))
                    sub_graph.add_edge(node, neighbor, **dict(data))
        return sub

    @classmethod
    def from_networkx(cls, graph: nx.Graph, name: str = "network",
                      schema: Optional[AttributeSchema] = None) -> "Network":
        """Wrap an existing networkx graph (copied) as a :class:`Network`."""
        net = cls(name=name, directed=graph.is_directed(), schema=schema)
        net._graph = graph.copy()
        return net

    def to_networkx(self) -> nx.Graph:
        """A copy of the underlying networkx graph."""
        return self._graph.copy()

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return (f"<{type(self).__name__} {self.name!r}: {self.num_nodes} nodes, "
                f"{self.num_edges} edges, {kind}>")
