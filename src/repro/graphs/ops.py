"""Graph operations shared by the workload generators and the algorithms.

The most important routine is :func:`random_connected_subgraph`, which is how
the paper generates its PlanetLab and BRITE query workloads (§VII-A, first
approach): a query is a random connected subgraph of the hosting network, so
at least one feasible embedding is guaranteed to exist by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.graphs.network import Edge, Network, NodeId
from repro.graphs.query import QueryNetwork
from repro.utils.rng import RandomSource, as_rng


def random_connected_node_set(network: Network, size: int,
                              rng: RandomSource = None) -> List[NodeId]:
    """Pick a random connected set of *size* nodes from *network*.

    The set is grown frontier-style from a random seed node: at each step a
    random node adjacent to the current set is added.  If the seed's
    component is smaller than *size* the growth restarts from a different
    seed; if no component is large enough a ``ValueError`` is raised.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if size > network.num_nodes:
        raise ValueError(
            f"requested {size} nodes but the network only has {network.num_nodes}")
    rand = as_rng(rng)
    nodes = network.nodes()

    for _attempt in range(50):
        seed = rand.choice(nodes)
        selected = {seed}
        frontier = set(network.neighbors(seed))
        while len(selected) < size and frontier:
            nxt = rand.choice(sorted(frontier, key=str))
            selected.add(nxt)
            frontier.discard(nxt)
            frontier.update(n for n in network.neighbors(nxt) if n not in selected)
        if len(selected) == size:
            return sorted(selected, key=str)
    raise ValueError(
        f"could not find a connected set of {size} nodes after 50 attempts; "
        f"the network may have no component that large")


def random_connected_subgraph(network: Network, num_nodes: int,
                              num_edges: Optional[int] = None,
                              rng: RandomSource = None) -> Network:
    """Extract a random connected subgraph of *network*.

    Parameters
    ----------
    network:
        The source (hosting) network.
    num_nodes:
        Number of nodes in the subgraph.
    num_edges:
        Target number of edges.  The induced subgraph on the chosen nodes may
        have more edges than requested; in that case edges are removed at
        random while keeping the subgraph connected (a spanning tree is always
        preserved).  ``None`` keeps the full induced subgraph.
    rng:
        Seed / generator for reproducibility.

    Returns
    -------
    Network
        A new network of the same class as *network* (so sampling from a
        :class:`HostingNetwork` yields a :class:`HostingNetwork`; use
        :func:`as_query` to re-type it as a query).
    """
    rand = as_rng(rng)
    nodes = random_connected_node_set(network, num_nodes, rand)
    sub = network.subnetwork(nodes, name=f"{network.name}-sample{num_nodes}")

    if num_edges is not None:
        if num_edges < num_nodes - 1:
            raise ValueError(
                f"a connected graph on {num_nodes} nodes needs at least "
                f"{num_nodes - 1} edges, got num_edges={num_edges}")
        _thin_edges_keeping_connected(sub, num_edges, rand)
    return sub


def _thin_edges_keeping_connected(network: Network, target_edges: int, rand) -> None:
    """Remove random edges from *network* until it has *target_edges* edges,
    never disconnecting it."""
    graph = network.graph
    if network.num_edges <= target_edges:
        return
    # Edges of a spanning structure are never candidates for removal.
    if network.directed:
        spanning = set()
        undirected = graph.to_undirected(as_view=True)
        for u, v in nx.minimum_spanning_edges(undirected, data=False):
            spanning.add((u, v))
            spanning.add((v, u))
    else:
        spanning = set(nx.minimum_spanning_edges(graph, data=False))
        spanning |= {(v, u) for u, v in spanning}

    removable = [e for e in network.edges() if e not in spanning]
    rand.shuffle(removable)
    excess = network.num_edges - target_edges
    for u, v in removable[:excess]:
        network.remove_edge(u, v)


def as_query(network: Network, name: Optional[str] = None,
             attribute_whitelist: Optional[Iterable[str]] = None) -> QueryNetwork:
    """Convert any network into a :class:`QueryNetwork`.

    Parameters
    ----------
    network:
        Source network (typically a sampled hosting subgraph).
    name:
        Name for the resulting query network.
    attribute_whitelist:
        When given, only these attribute names are copied onto the query
        (both node and edge attributes).  This is how the workload generators
        turn measured hosting attributes into *requested* query attributes
        while discarding irrelevant ones.
    """
    whitelist = set(attribute_whitelist) if attribute_whitelist is not None else None
    query = QueryNetwork(name=name or f"{network.name}-query", directed=network.directed)
    for node in network.nodes():
        attrs = network.node_attrs(node)
        if whitelist is not None:
            attrs = {k: v for k, v in attrs.items() if k in whitelist}
        query.add_node(node, **attrs)
    for u, v in network.edges():
        attrs = network.edge_attrs(u, v)
        if whitelist is not None:
            attrs = {k: v for k, v in attrs.items() if k in whitelist}
        query.add_edge(u, v, **attrs)
    return query


def relabel_sequential(network: Network, prefix: str = "q") -> Tuple[Network, Dict[NodeId, NodeId]]:
    """Relabel nodes as ``prefix0, prefix1, ...`` and return (new_network, old->new map).

    Query networks sampled from the hosting network keep the hosting node
    identifiers, which makes "did the trivial identity embedding get found?"
    ambiguities possible in tests.  Relabeling removes any identifier overlap.
    """
    mapping = {old: f"{prefix}{index}" for index, old in enumerate(network.nodes())}
    relabeled = type(network)(name=network.name, directed=network.directed,
                              schema=network.schema)
    for old in network.nodes():
        relabeled.add_node(mapping[old], **dict(network.node_attrs(old)))
    for u, v in network.edges():
        relabeled.add_edge(mapping[u], mapping[v], **dict(network.edge_attrs(u, v)))
    return relabeled, mapping


def degree_sorted_nodes(network: Network, descending: bool = True) -> List[NodeId]:
    """Nodes sorted by degree (ties broken by stringified id)."""
    return sorted(network.nodes(),
                  key=lambda n: (-network.degree(n) if descending else network.degree(n),
                                 str(n)))


def edge_induced_nodes(edges: Sequence[Edge]) -> List[NodeId]:
    """Distinct endpoints of an edge list, in first-appearance order."""
    seen: Dict[NodeId, None] = {}
    for u, v in edges:
        seen.setdefault(u)
        seen.setdefault(v)
    return list(seen)


def is_subgraph_embedding(query: Network, hosting: Network,
                          assignment: Dict[NodeId, NodeId]) -> bool:
    """Purely topological validity check of an assignment (no constraints).

    True iff *assignment* covers every query node, is injective, and maps
    every query edge onto an existing hosting edge (respecting direction for
    directed networks).
    """
    if set(assignment.keys()) != set(query.nodes()):
        return False
    if len(set(assignment.values())) != len(assignment):
        return False
    for node in assignment.values():
        if not hosting.has_node(node):
            return False
    for u, v in query.edges():
        ru, rv = assignment[u], assignment[v]
        if hosting.directed:
            if not hosting.has_edge(ru, rv):
                return False
        else:
            if not (hosting.has_edge(ru, rv) or hosting.has_edge(rv, ru)):
                return False
    return True
