"""The query (virtual) network: what an application asks to instantiate.

A :class:`QueryNetwork` is a :class:`~repro.graphs.network.Network` whose
node and edge attributes express *requirements* rather than measurements:
requested link delays, required operating systems, explicit bindings to
particular hosting nodes (the ``bindTo`` idiom of §VI-B), and so on.

It adds the orderings and structural accessors the three NETEMBED search
algorithms rely on:

* the degree-descending ordering used by LNS to seed and grow the Covered set;
* the edge lists incident to a node restricted to already-placed nodes, which
  is the conjunction of constraints the paper's expression (2) intersects;
* feasibility sanity checks (a query larger than the host can never embed).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.graphs.network import Edge, Network, NodeId


class QueryNetwork(Network):
    """The virtual topology (with constraints) to embed into a hosting network."""

    # ------------------------------------------------------------------ #
    # Structural orderings used by the algorithms
    # ------------------------------------------------------------------ #

    def nodes_by_degree(self, descending: bool = True) -> List[NodeId]:
        """Query nodes sorted by degree.

        LNS picks the *highest*-degree node first (heuristic 1 of §V-C) so
        the Covered set quickly becomes highly connected; the default is
        therefore descending order.  Ties are broken by node id (as strings)
        to keep runs deterministic.
        """
        return sorted(self.nodes(),
                      key=lambda n: (-self.degree(n) if descending else self.degree(n),
                                     str(n)))

    def edges_to_placed(self, node: NodeId, placed: Iterable[NodeId]) -> List[Edge]:
        """Edges from *node* to nodes already in *placed* (as (placed, node) pairs).

        This is the set of "connecting edges" of LNS step 6 and the index set
        of the intersection in ECF's expression (2).
        """
        placed_set = set(placed)
        edges: List[Edge] = []
        for neighbor in self.neighbors(node):
            if neighbor in placed_set:
                edges.append((neighbor, node))
        return edges

    def neighbors_in(self, node: NodeId, pool: Iterable[NodeId]) -> List[NodeId]:
        """Neighbors of *node* restricted to *pool*."""
        pool_set = set(pool)
        return [n for n in self.neighbors(node) if n in pool_set]

    # ------------------------------------------------------------------ #
    # Requirement accessors
    # ------------------------------------------------------------------ #

    def bound_nodes(self, attribute: str = "bindTo") -> Dict[NodeId, object]:
        """Query nodes carrying an explicit binding requirement.

        §VI-B's ``isBoundTo(vSource.bindTo, rSource.name)`` idiom: the query
        node attribute ``bindTo`` names the hosting node it must map to.
        Returns a mapping query-node -> required hosting-node name.
        """
        return {node: attrs[attribute]
                for node in self.nodes()
                if (attrs := self.node_attrs(node)) and attribute in attrs}

    def required_node_attributes(self) -> Dict[NodeId, Dict[str, object]]:
        """All node attribute requirements, keyed by query node."""
        return {node: dict(self.node_attrs(node)) for node in self.nodes()}

    def requested_edge_attribute(self, name: str) -> Dict[Edge, object]:
        """Mapping of each query edge to its requested value of *name* (if set)."""
        requested = {}
        for u, v in self.edges():
            value = self.get_edge_attr(u, v, name)
            if value is not None:
                requested[(u, v)] = value
        return requested

    # ------------------------------------------------------------------ #
    # Feasibility pre-checks
    # ------------------------------------------------------------------ #

    def obviously_infeasible_reasons(self, hosting: Network) -> List[str]:
        """Cheap necessary-condition checks before any search is attempted.

        Returns a list of human-readable reasons the query can never embed in
        *hosting* (empty list means "not obviously infeasible").  These checks
        are sound: they only reject queries for which no injective,
        edge-preserving mapping can exist regardless of attribute constraints.
        """
        reasons: List[str] = []
        if self.num_nodes > hosting.num_nodes:
            reasons.append(
                f"query has {self.num_nodes} nodes but the hosting network only "
                f"has {hosting.num_nodes}")
        if self.num_edges > hosting.num_edges and not hosting.directed:
            reasons.append(
                f"query has {self.num_edges} edges but the hosting network only "
                f"has {hosting.num_edges}")
        if self.num_nodes > 0 and hosting.num_nodes > 0:
            max_query_degree = max(self.degree(n) for n in self.nodes())
            max_host_degree = max(hosting.degree(n) for n in hosting.nodes())
            if max_query_degree > max_host_degree:
                reasons.append(
                    f"query has a node of degree {max_query_degree} but the maximum "
                    f"hosting degree is {max_host_degree}")
        return reasons

    def is_obviously_infeasible(self, hosting: Network) -> bool:
        """Whether any necessary condition for embeddability is violated."""
        return bool(self.obviously_infeasible_reasons(hosting))
