"""Trace-driven load-test harness for the serving and cluster tiers.

The harness is the rig every perf claim about the serving stack runs
through: a named (or JSON-configured) *scenario* describes an arrival
process, a scene, and the server's admission knobs; the scenario is
lowered to a replayable :class:`~repro.workloads.trace.Trace`; and the
open-loop driver replays that trace against a live
:class:`~repro.server.app.EmbeddingServer`, measuring every request from
its **scheduled** offset so driver lag (coordinated omission) inflates the
latency numbers instead of hiding queueing delay.

* :mod:`repro.harness.scenarios` — scenario configs, the named registry
  (steady / overload / burst / diurnal / churn / allshed), trace building;
* :mod:`repro.harness.driver` — the open-loop replay driver and the
  per-scenario summary (percentiles via :mod:`repro.analysis.stats`,
  shed/abort breakdowns, schedule slip, accounting invariants);
* :mod:`repro.harness.report` — per-request CSV rows and the JSON summary
  documents the CI gate reads.
"""

from repro.harness.scenarios import (
    DEFAULT_MATRIX,
    SCENARIOS,
    ScenarioConfig,
    build_scene,
    build_trace,
    load_scenario,
)
from repro.harness.driver import (
    RequestOutcome,
    ScenarioRun,
    classify_outcomes,
    replay_open_loop,
    run_scenario,
)
from repro.harness.report import (
    outcome_rows,
    scenario_summary,
    write_scenario_artifacts,
)

__all__ = [
    "DEFAULT_MATRIX",
    "SCENARIOS",
    "ScenarioConfig",
    "build_scene",
    "build_trace",
    "load_scenario",
    "RequestOutcome",
    "ScenarioRun",
    "classify_outcomes",
    "replay_open_loop",
    "run_scenario",
    "outcome_rows",
    "scenario_summary",
    "write_scenario_artifacts",
]
