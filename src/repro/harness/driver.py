"""The open-loop trace replay driver and its honest measurements.

The driver replays a recorded :class:`~repro.workloads.trace.Trace`
against a live :class:`~repro.server.app.EmbeddingServer` (optionally
fronting the partitioned :class:`~repro.cluster.ClusterService`).  Two
measurement rules make the numbers honest:

* **Latency is measured from the scheduled offset**, not from the moment
  the driver actually got around to sending.  An open-loop trace fixes
  every arrival time in advance; if the driver (or the event loop it
  shares with the server) falls behind, that lag is queueing delay the
  load *caused* and must appear in the latency numbers — measuring from
  dispatch would silently delete it (coordinated omission).  The driver's
  own lag is additionally reported as first-class **schedule slip**
  (send − scheduled), so a reader can attribute inflation to the rig.
* **An empty sample has no percentiles.**  All summary statistics come
  from :mod:`repro.analysis.stats`, which answers ``None`` — never 0.0 —
  when nothing was served.

Reservation departures recorded in the trace are released against the
in-process service at their scheduled offsets, and scenarios with
``churn_ticks > 0`` perturb the hosting network live during the replay.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.harness.scenarios import ScenarioConfig, build_scene, build_trace
from repro.server import (
    AdmissionConfig,
    AsyncNetEmbedClient,
    EmbeddingServer,
    ServerConfig,
    ServiceRegistry,
    TenantPolicy,
)
from repro.utils.rng import as_rng
from repro.workloads.queries import Workload
from repro.workloads.trace import Trace, workload_fingerprint

#: Network name the harness registers its scene under.
NETWORK_NAME = "harness-scene"


@dataclass
class RequestOutcome:
    """One replayed request: schedule, timing, and the server's answer."""

    index: int
    workload: int
    tenant: str
    scheduled_offset: float
    #: When the driver actually wrote the request (seconds into the run).
    send_offset: float
    #: When the response arrived (seconds into the run).
    done_offset: float
    reserve: bool
    response: Dict[str, Any]

    @property
    def latency_seconds(self) -> float:
        """Response time from the *scheduled* arrival, driver lag included."""
        return self.done_offset - self.scheduled_offset

    @property
    def slip_seconds(self) -> float:
        """How late the driver sent this request vs its schedule."""
        return self.send_offset - self.scheduled_offset

    @property
    def kind(self) -> str:
        """``result`` / ``shed`` / ``error``."""
        return str(self.response.get("kind"))

    @property
    def detail(self) -> str:
        """Result status, shed reason, or error code — the outcome label."""
        if self.kind == "result":
            return str(self.response.get("status"))
        if self.kind == "shed":
            return str(self.response.get("reason"))
        return str(self.response.get("error"))

    @property
    def mappings(self) -> int:
        return len(self.response.get("mappings") or ())

    @property
    def reservation_id(self) -> Optional[str]:
        return self.response.get("reservation_id")


@dataclass
class ScenarioRun:
    """Everything one scenario replay produced (raw, pre-summary)."""

    config: ScenarioConfig
    seed: int
    trace: Trace
    outcomes: List[RequestOutcome]
    wall_seconds: float
    metrics: Dict[str, Any]
    workloads: List[Workload] = field(default_factory=list)
    released: int = 0
    release_failures: int = 0
    churn_ticks_applied: int = 0


def classify_outcomes(outcomes: Sequence[RequestOutcome]) -> List[str]:
    """Per-request outcome classification, for replay-parity comparison.

    Timing-free by construction: trace position, answer kind, detail label
    and mapping count — the fields two replays of the same trace against
    the same seeded scene must agree on.
    """
    return [f"{o.index}:{o.kind}:{o.detail}:{o.mappings}"
            for o in sorted(outcomes, key=lambda o: o.index)]


def _server_config(config: ScenarioConfig) -> ServerConfig:
    tenants = {}
    if config.capped_rate is not None:
        tenants["capped"] = TenantPolicy(rate=config.capped_rate,
                                         burst=max(1, int(config.capped_rate)))
    return ServerConfig(
        default_timeout=(config.timeout if config.timeout is not None
                         else config.deadline),
        engine_workers=config.engine_workers,
        admission=AdmissionConfig(max_queue_depth=config.queue_depth,
                                  tenants=tenants),
    )


def _build_registry(config: ScenarioConfig, hosting) -> ServiceRegistry:
    server_config = _server_config(config)
    service = None
    if config.partitions is not None:
        from repro.cluster import ClusterService
        service = ClusterService(
            default_timeout=server_config.default_timeout,
            plan_cache_size=server_config.plan_cache_size,
            num_partitions=config.partitions)
    registry = ServiceRegistry(server_config, service=service)
    registry.service.register_network(hosting, name=NETWORK_NAME)
    return registry


async def replay_open_loop(trace: Trace, workloads: Sequence[Workload],
                           registry: ServiceRegistry,
                           config: ScenarioConfig,
                           hosting=None, seed: int = 0) -> ScenarioRun:
    """Replay *trace* open-loop against a freshly started server.

    Every arrival fires at its scheduled offset regardless of whether the
    server has kept up; departures release their arrival's reservation at
    their own offsets; churn ticks (when configured) mutate *hosting*
    between requests.  Returns the raw :class:`ScenarioRun`.
    """
    churn = None
    if config.churn_ticks > 0:
        if config.partitions is not None:
            raise ValueError("churn-during-traffic is not supported through "
                             "the cluster tier yet (churn_ticks requires "
                             "partitions=None)")
        from repro.workloads.churn import ChurnConfig, ChurnProcess
        churn = ChurnProcess(hosting, ChurnConfig(
            link_fraction=config.churn_link_fraction,
            node_fraction=config.churn_node_fraction), rng=as_rng(seed + 2))

    run = ScenarioRun(config=config, seed=seed, trace=trace, outcomes=[],
                      wall_seconds=0.0, metrics={}, workloads=list(workloads))
    # One future per arrival index resolves to its reservation_id (or None)
    # so departure tasks can wait for the answer they are releasing.
    reservation_ready: Dict[int, asyncio.Future] = {}

    async with EmbeddingServer(registry) as server:
        async with await AsyncNetEmbedClient.connect(
                server.host, server.port) as client:
            run_started = time.perf_counter()

            def now() -> float:
                return time.perf_counter() - run_started

            async def sleep_until(offset: float) -> None:
                delay = offset - now()
                if delay > 0:
                    await asyncio.sleep(delay)

            async def fire(arrival) -> RequestOutcome:
                await sleep_until(arrival.offset)
                workload = workloads[arrival.workload]
                send_offset = now()
                response = await client.embed(
                    workload.query, constraint=workload.constraint,
                    algorithm="ECF", max_results=config.max_results,
                    tenant=arrival.tenant, deadline=config.deadline,
                    reserve=arrival.reserve)
                outcome = RequestOutcome(
                    index=arrival.index, workload=arrival.workload,
                    tenant=arrival.tenant,
                    scheduled_offset=arrival.offset,
                    send_offset=send_offset, done_offset=now(),
                    reserve=arrival.reserve, response=response)
                waiter = reservation_ready.get(arrival.index)
                if waiter is not None and not waiter.done():
                    waiter.set_result(outcome.reservation_id)
                return outcome

            async def depart(departure) -> None:
                waiter = reservation_ready[departure.request_index]
                await sleep_until(departure.offset)
                reservation_id = await waiter
                if reservation_id is None:
                    return   # the arrival was shed or reserved nothing
                try:
                    registry.service.release(reservation_id)
                    run.released += 1
                except Exception:  # noqa: BLE001 — counted, not fatal
                    run.release_failures += 1

            async def churn_loop() -> None:
                interval = config.horizon / (config.churn_ticks + 1)
                for tick in range(1, config.churn_ticks + 1):
                    await sleep_until(tick * interval)
                    churn.tick()
                    registry.models.touch(NETWORK_NAME)
                    run.churn_ticks_applied += 1

            loop = asyncio.get_running_loop()
            for departure in trace.departures:
                reservation_ready.setdefault(departure.request_index,
                                             loop.create_future())
            tasks = [fire(a) for a in trace.arrivals]
            side_tasks = [asyncio.ensure_future(depart(d))
                          for d in trace.departures]
            if churn is not None:
                side_tasks.append(asyncio.ensure_future(churn_loop()))

            run.outcomes = list(await asyncio.gather(*tasks))
            run.wall_seconds = now()
            for waiter in reservation_ready.values():
                if not waiter.done():   # arrival never resolved (shouldn't)
                    waiter.set_result(None)
            if side_tasks:
                await asyncio.gather(*side_tasks)
            run.metrics = await client.metrics()
    return run


def run_scenario(config: ScenarioConfig, seed: int = 0,
                 trace: Optional[Trace] = None) -> ScenarioRun:
    """Build the scene, lower (or verify) the trace, and replay it.

    When *trace* is given (a ``--replay`` artifact) its header fingerprints
    are checked against the regenerated scene — replaying a trace against
    different queries than it was recorded for raises instead of silently
    measuring something else.
    """
    hosting, workloads = build_scene(config, seed)
    if trace is None:
        trace = build_trace(config, seed, workloads=workloads)
    else:
        pinned = trace.fingerprints()
        actual = [workload_fingerprint(w) for w in workloads]
        if pinned and pinned != actual:
            raise ValueError(
                f"trace was recorded against a different scene: header pins "
                f"workloads {pinned}, scene (seed {seed}) builds {actual}")
    registry = _build_registry(config, hosting)
    try:
        return asyncio.run(replay_open_loop(
            trace, workloads, registry, config, hosting=hosting, seed=seed))
    finally:
        registry.service.shutdown()
