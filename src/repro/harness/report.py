"""Per-scenario CSV rows and JSON summaries for harness runs.

Each scenario run produces two artifacts under
``<output_dir>/<scenario>/``:

* ``requests.csv`` — one row per scheduled request: its schedule, honest
  latency (from the scheduled offset), schedule slip, and outcome
  classification; the raw material for plots and postmortems;
* ``summary.json`` — the folded report: latency percentiles (``null`` on
  an empty sample), throughput, shed/abort breakdowns by reason, schedule
  slip, reservation lifecycle counts, and the deterministic accounting
  invariants the CI gate pins.

``repro loadtest`` additionally writes a combined ``loadtest.json`` over
all scenarios of the invocation (see :mod:`repro.cli`), and
``benchmarks/bench_harness.py`` folds the same summaries into the gated
``BENCH_harness.json``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.analysis.reporting import write_csv
from repro.analysis.stats import latency_block, slip_block
from repro.harness.driver import ScenarioRun

#: Column order of ``requests.csv``.
CSV_COLUMNS = (
    "index", "tenant", "workload", "scheduled_offset", "send_offset",
    "done_offset", "latency_seconds", "slip_seconds", "kind", "detail",
    "mappings", "reserve", "reservation_id",
)


def outcome_rows(run: ScenarioRun) -> List[Dict]:
    """The per-request CSV rows of one run, in trace order."""
    rows = []
    for outcome in sorted(run.outcomes, key=lambda o: o.index):
        rows.append({
            "index": outcome.index,
            "tenant": outcome.tenant,
            "workload": outcome.workload,
            "scheduled_offset": outcome.scheduled_offset,
            "send_offset": outcome.send_offset,
            "done_offset": outcome.done_offset,
            "latency_seconds": outcome.latency_seconds,
            "slip_seconds": outcome.slip_seconds,
            "kind": outcome.kind,
            "detail": outcome.detail,
            "mappings": outcome.mappings,
            "reserve": outcome.reserve,
            "reservation_id": outcome.reservation_id,
        })
    return rows


def scenario_summary(run: ScenarioRun) -> Dict:
    """Fold one raw run into its report document."""
    outcomes = run.outcomes
    served = [o for o in outcomes if o.kind == "result"]
    shed = [o for o in outcomes if o.kind == "shed"]
    errors = [o for o in outcomes if o.kind == "error"]

    shed_reasons: Dict[str, int] = {}
    for outcome in shed:
        shed_reasons[outcome.detail] = shed_reasons.get(outcome.detail, 0) + 1
    error_reasons: Dict[str, int] = {}
    for outcome in errors:
        error_reasons[outcome.detail] = error_reasons.get(outcome.detail, 0) + 1
    per_tenant: Dict[str, Dict[str, int]] = {}
    for outcome in outcomes:
        bucket = per_tenant.setdefault(
            outcome.tenant, {"served": 0, "shed": 0, "errors": 0})
        bucket["served" if outcome.kind == "result" else
               "shed" if outcome.kind == "shed" else "errors"] += 1

    offered = len(outcomes)
    admission = run.metrics.get("admission", {})
    server = run.metrics.get("server", {})
    accounting_ok = (
        offered == len(run.trace.arrivals)
        and admission.get("offered") == offered
        and (admission.get("admitted", 0)
             + admission.get("shed_total", 0)) == offered
        and admission.get("completed") == len(served)
        and not errors)
    protocol_errors = server.get("protocol_errors", 0)

    reserved = sum(1 for o in served if o.reservation_id is not None)
    return {
        "scenario": run.config.name,
        "seed": run.seed,
        "config": run.config.describe(),
        "requests": offered,
        "latency": latency_block(o.latency_seconds for o in served),
        "schedule_slip": slip_block(o.slip_seconds for o in outcomes),
        "throughput": {
            "wall_seconds": run.wall_seconds,
            "served_per_second": (len(served) / run.wall_seconds
                                  if run.wall_seconds > 0 else 0.0),
            "horizon_seconds": run.config.horizon,
        },
        "outcomes": {
            "offered": offered,
            "served": len(served),
            "shed": len(shed),
            "errors": len(errors),
            "shed_rate": len(shed) / offered if offered else 0.0,
            "shed_reasons": shed_reasons,
            "error_reasons": error_reasons,
            "per_tenant": per_tenant,
        },
        "reservations": {
            "requested": sum(1 for o in outcomes if o.reserve),
            "granted": reserved,
            "released": run.released,
            "release_failures": run.release_failures,
        },
        "churn": {"ticks_applied": run.churn_ticks_applied},
        "accounting": {"consistent": accounting_ok},
        "server": {
            "protocol_errors": protocol_errors,
            "plan_cache_hits": run.metrics.get("service", {})
                                          .get("plan_cache", {}).get("hits"),
            "plan_cache_misses": run.metrics.get("service", {})
                                            .get("plan_cache", {}).get("misses"),
        },
    }


def write_scenario_artifacts(run: ScenarioRun,
                             output_dir: Union[str, Path]) -> Dict[str, Path]:
    """Write ``requests.csv`` + ``summary.json`` for *run*; returns paths."""
    import json

    directory = Path(output_dir) / run.config.name
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = write_csv(outcome_rows(run), directory / "requests.csv",
                         columns=CSV_COLUMNS)
    summary_path = directory / "summary.json"
    summary_path.write_text(
        json.dumps(scenario_summary(run), indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return {"requests_csv": csv_path, "summary_json": summary_path}
