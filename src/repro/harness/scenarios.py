"""Scenario configs for the load-test harness, and their trace lowering.

A :class:`ScenarioConfig` pins everything one load-test run depends on:
the arrival process (steady Poisson, sustained overload, a burst step, a
diurnal ramp — the inhomogeneous shapes ride on the Lewis–Shedler thinning
in :mod:`repro.workloads.arrivals`), the scene (hosting size, workload
population), the server's admission knobs, and the reservation lifecycle
mix.  :func:`build_trace` lowers a config + seed to a replayable
:class:`~repro.workloads.trace.Trace`; the driver never looks at the
arrival process again — it replays the trace, which is the artifact.

Named scenarios live in :data:`SCENARIOS` at smoke scale (sub-two-second
horizons, CI-sized scenes).  Larger runs are JSON configs::

    {"extends": "overload", "rate": 120.0, "horizon": 30.0,
     "hosting_nodes": 296}

loaded with :func:`load_scenario` — any field of :class:`ScenarioConfig`
overrides the base.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.utils.rng import as_rng
from repro.workloads.arrivals import (
    diurnal_rate,
    inhomogeneous_poisson_arrivals,
    poisson_arrivals,
)
from repro.workloads.queries import Workload, subgraph_query
from repro.workloads.suites import planetlab_host
from repro.workloads.trace import Trace, TraceArrival, TraceDeparture, workload_fingerprint

#: Arrival-process shapes a scenario may declare.
ARRIVAL_KINDS = ("steady", "burst", "diurnal")


@dataclass(frozen=True)
class ScenarioConfig:
    """One load-test scenario, fully pinned.

    Attributes
    ----------
    name:
        Scenario id (directory and report key).
    arrival:
        ``"steady"`` (homogeneous Poisson at :attr:`rate`), ``"burst"``
        (baseline :attr:`rate` with a step to :attr:`burst_rate` during
        ``[burst_start, burst_start + burst_duration)``), or ``"diurnal"``
        (:func:`~repro.workloads.arrivals.diurnal_rate` ramp from
        :attr:`base_rate` to :attr:`peak_rate` over :attr:`period`).
    rate, horizon:
        Offered load (req/s) and trace length (s).
    rate_max:
        Thinning envelope override for inhomogeneous arrivals.  ``None``
        derives the tight envelope (burst/peak rate); setting it *below*
        the actual peak makes trace building raise — the envelope check in
        :func:`~repro.workloads.arrivals.inhomogeneous_poisson_arrivals`
        is the guard that the recorded process is actually Poisson.
    tenants:
        Round-robin tenant mix of the trace.
    capped_rate:
        Admission rate limit applied to the tenant named ``"capped"``
        (``None`` = no tenant rate policy).
    hosting_nodes, num_workloads, query_size, slack:
        The scene: a PlanetLab-like hosting network and the query
        population sampled from it.
    capacity:
        Per-host reservation capacity stamped onto the scene (required
        when ``reserve_fraction > 0``; ``None`` = leave hosts as
        generated, which makes reservations fail).
    engine_workers, queue_depth, max_results, deadline, timeout:
        Server-side knobs for the replay (admission bound, per-request
        deadline/budget).
    reserve_fraction, lifetime_mean:
        Fraction of requests that reserve capacity, and the mean of their
        exponential reservation lifetimes — departures become trace
        events and are released against the live service during replay.
    churn_ticks, churn_link_fraction, churn_node_fraction:
        Sparse attribute churn applied to the hosting network *while the
        trace replays* (churn-during-traffic), exercising plan
        invalidation under load.  0 ticks = quiescent network.
    partitions:
        Serve through the cluster tier (:class:`repro.cluster.ClusterService`)
        with this many balanced partitions instead of the single-process
        service (``None`` = monolithic).
    """

    name: str
    arrival: str = "steady"
    rate: float = 20.0
    horizon: float = 1.5
    burst_rate: float = 0.0
    burst_start: float = 0.0
    burst_duration: float = 0.0
    base_rate: float = 0.0
    peak_rate: float = 0.0
    period: float = 0.0
    rate_max: Optional[float] = None
    tenants: Tuple[str, ...] = ("open", "capped")
    capped_rate: Optional[float] = None
    hosting_nodes: int = 24
    num_workloads: int = 3
    query_size: int = 5
    slack: float = 0.30
    capacity: Optional[float] = None
    engine_workers: int = 1
    queue_depth: int = 16
    max_results: int = 4
    deadline: float = 10.0
    timeout: Optional[float] = None
    reserve_fraction: float = 0.0
    lifetime_mean: float = 0.5
    churn_ticks: int = 0
    churn_link_fraction: float = 0.05
    churn_node_fraction: float = 0.05
    partitions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"arrival must be one of {ARRIVAL_KINDS}, "
                             f"got {self.arrival!r}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not 0.0 <= self.reserve_fraction <= 1.0:
            raise ValueError(f"reserve_fraction must be in [0, 1], "
                             f"got {self.reserve_fraction}")
        if self.reserve_fraction > 0 and self.lifetime_mean <= 0:
            raise ValueError(f"lifetime_mean must be positive, "
                             f"got {self.lifetime_mean}")
        if not self.tenants:
            raise ValueError("tenants must not be empty")

    def rate_fn(self) -> Optional[Callable[[float], float]]:
        """λ(t) for inhomogeneous scenarios; ``None`` for steady Poisson."""
        if self.arrival == "steady":
            return None
        if self.arrival == "burst":
            start, stop = self.burst_start, self.burst_start + self.burst_duration

            def step(t: float) -> float:
                return self.burst_rate if start <= t < stop else self.rate

            return step
        return diurnal_rate(self.base_rate, self.peak_rate, period=self.period)

    def envelope(self) -> float:
        """The thinning envelope: declared :attr:`rate_max`, else the peak."""
        if self.rate_max is not None:
            return self.rate_max
        if self.arrival == "burst":
            return max(self.rate, self.burst_rate)
        return self.peak_rate

    def describe(self) -> Dict:
        """The config as plain data (trace headers, report workload blocks)."""
        payload = dataclasses.asdict(self)
        payload["tenants"] = list(self.tenants)
        return payload


def _core(name: str, **overrides) -> ScenarioConfig:
    return ScenarioConfig(name=name, **overrides)


#: The named scenario matrix, smoke-sized.  ``steady`` is the baseline the
#: CI gate pins; ``overload`` offers several times the single worker's
#: capacity so queue-full sheds appear; ``burst`` is steady with a 10x step
#: mid-trace; ``diurnal`` ramps night→day→night inside the horizon;
#: ``churn`` is steady traffic over a network being perturbed live;
#: ``allshed`` schedules every request dead on arrival (its deadline is
#: expired before admission) — the scenario that proves the harness reports
#: an empty latency sample as ``null``, not as a perfect 0.0.
SCENARIOS: Dict[str, ScenarioConfig] = {
    config.name: config for config in (
        _core("steady", rate=16.0, horizon=1.25, capped_rate=4.0),
        _core("overload", rate=80.0, horizon=1.0, engine_workers=1,
              queue_depth=8, deadline=2.0, capped_rate=6.0),
        _core("burst", arrival="burst", rate=8.0, horizon=1.5,
              burst_rate=80.0, burst_start=0.5, burst_duration=0.4,
              queue_depth=8, deadline=2.0, capped_rate=6.0),
        _core("diurnal", arrival="diurnal", base_rate=4.0, peak_rate=48.0,
              period=1.5, horizon=1.5, queue_depth=12, deadline=2.0,
              capped_rate=6.0),
        _core("churn", rate=16.0, horizon=1.5, churn_ticks=3,
              reserve_fraction=0.25, lifetime_mean=0.4, capacity=4.0),
        _core("allshed", rate=16.0, horizon=0.75, deadline=1e-6),
    )
}

#: The scenarios ``repro loadtest`` runs when none are named.
DEFAULT_MATRIX: Tuple[str, ...] = ("steady", "overload", "burst", "diurnal")


def load_scenario(source: Union[str, Path, Dict]) -> ScenarioConfig:
    """Resolve a scenario name, JSON config path, or config dict.

    A dict/JSON config may set ``"extends": "<named scenario>"`` to start
    from a registry entry; every other key overrides the corresponding
    :class:`ScenarioConfig` field.  Unknown keys raise — a typoed knob must
    not silently run the default scenario.
    """
    if isinstance(source, ScenarioConfig):
        return source
    if isinstance(source, str) and source in SCENARIOS:
        return SCENARIOS[source]
    if isinstance(source, (str, Path)):
        path = Path(source)
        if not path.exists():
            raise ValueError(
                f"unknown scenario {source!r}: not a registered name "
                f"({', '.join(sorted(SCENARIOS))}) and no such config file")
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: scenario config must be a JSON object")
        source = payload
    config = dict(source)
    base_name = config.pop("extends", None)
    fields = {f.name for f in dataclasses.fields(ScenarioConfig)}
    unknown = sorted(set(config) - fields)
    if unknown:
        raise ValueError(f"unknown scenario field(s): {', '.join(unknown)}")
    if "tenants" in config:
        config["tenants"] = tuple(config["tenants"])
    if base_name is not None:
        if base_name not in SCENARIOS:
            raise ValueError(f"extends: unknown base scenario {base_name!r}")
        return dataclasses.replace(SCENARIOS[base_name], **config)
    return ScenarioConfig(**config)


def build_scene(config: ScenarioConfig, seed: int):
    """One deterministic (hosting, workloads) scene for *config* + *seed*."""
    rng = as_rng(seed)
    hosting = planetlab_host(config.hosting_nodes, rng=rng)
    workloads: List[Workload] = [
        subgraph_query(hosting, config.query_size, slack=config.slack, rng=rng)
        for _ in range(config.num_workloads)]
    if config.capacity is not None:
        for node in hosting.nodes():
            hosting.set_capacity(node, config.capacity)
    return hosting, workloads


def build_trace(config: ScenarioConfig, seed: int,
                workloads: Optional[List[Workload]] = None) -> Trace:
    """Lower *config* + *seed* to a replayable trace.

    The trace rng (``seed + 1``) is independent of the scene rng (``seed``)
    so recording a trace never perturbs the scene it runs against.  When
    *workloads* is given their fingerprints are pinned in the header; a
    replay against a regenerated scene verifies them before sending a
    single request.
    """
    if workloads is None:
        _, workloads = build_scene(config, seed)
    rng = as_rng(seed + 1)
    rate_fn = config.rate_fn()
    if rate_fn is None:
        arrivals = poisson_arrivals(rate=config.rate, horizon=config.horizon,
                                    tenants=config.tenants, rng=rng)
    else:
        arrivals = inhomogeneous_poisson_arrivals(
            rate_fn, horizon=config.horizon, rate_max=config.envelope(),
            tenants=config.tenants, rng=rng)

    trace = Trace(header={
        "scenario": config.name,
        "seed": seed,
        "horizon": config.horizon,
        "config": config.describe(),
        "workloads": [workload_fingerprint(w) for w in workloads],
    })
    for arrival in arrivals:
        reserve = (config.reserve_fraction > 0
                   and rng.random() < config.reserve_fraction)
        lifetime = None
        if reserve:
            lifetime = rng.expovariate(1.0 / config.lifetime_mean)
            departure_at = arrival.offset + lifetime
            if departure_at < config.horizon:
                trace.departures.append(TraceDeparture(
                    offset=departure_at, request_index=arrival.index))
        trace.arrivals.append(TraceArrival(
            offset=arrival.offset, index=arrival.index, tenant=arrival.tenant,
            workload=arrival.index % len(workloads), reserve=reserve,
            lifetime=lifetime))
    trace.departures.sort(key=lambda d: (d.offset, d.request_index))
    return trace
