"""The asyncio serving tier: the service's long-running front door.

Components:

* :class:`ServiceRegistry` / :class:`ServerConfig` — the composition root
  that wires service, admission controller and cost model explicitly;
* :class:`AdmissionController` — bounded priority queue, per-tenant rate
  limits and quotas, deadline-aware shedding (:class:`Shed` rejections);
* :class:`EmbeddingServer` — the newline-delimited-JSON asyncio server
  with a ``metrics`` endpoint over :meth:`NetEmbedService.stats`;
* :class:`AsyncNetEmbedClient` — the matching async client.
"""

from repro.server.admission import (
    PRIORITY_CLASSES,
    AdmissionConfig,
    AdmissionController,
    CostModel,
    Shed,
    TenantPolicy,
    Ticket,
)
from repro.server.app import EmbeddingServer
from repro.server.client import (
    AsyncNetEmbedClient,
    ConnectionLostError,
    RetryPolicy,
    ServerClosedError,
)
from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    mapping_payload,
    network_payload,
    query_from_payload,
)
from repro.server.registry import ServerConfig, ServiceRegistry

__all__ = [
    "PRIORITY_CLASSES",
    "AdmissionConfig",
    "AdmissionController",
    "CostModel",
    "Shed",
    "TenantPolicy",
    "Ticket",
    "EmbeddingServer",
    "AsyncNetEmbedClient",
    "ConnectionLostError",
    "RetryPolicy",
    "ServerClosedError",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "mapping_payload",
    "network_payload",
    "query_from_payload",
    "ServerConfig",
    "ServiceRegistry",
]
