"""Admission control for the serving tier: bounded queue, QoS, shedding.

The front door admits a request only when the service can plausibly answer
it in time; everything else is *shed* immediately with a structured,
machine-readable rejection instead of being left to time out in a queue.
Five policies compose, checked in this order by :meth:`AdmissionController.admit`:

1. **Dead-on-arrival shedding** — a request whose deadline has already
   expired is refused outright (it must never reach the engine).
2. **Deadline-aware shedding** — using an EWMA :class:`CostModel` of
   observed per-workload execution cost, a request whose remaining deadline
   cannot cover the expected queue wait plus its own expected cost is shed
   up front (reason ``deadline-unreachable``) rather than admitted to fail.
3. **Per-tenant rate limits** — a token bucket (``rate`` req/s sustained,
   ``burst`` depth) per tenant; over-rate arrivals are shed with a
   ``retry_after`` hint.
4. **Per-tenant queue/pool quotas** — ``max_queued`` bounds a tenant's
   share of the admission queue; ``max_inflight`` bounds its concurrent
   executions (enforced at dispatch: over-quota tickets wait, they are not
   re-rejected).  ``max_plans`` is the *cache* quota: a tenant past its
   budget of distinct cached workloads is still served, but with
   ``cache=False`` so it cannot evict other tenants' warm plans.
5. **Bounded global queue with priority classes** — the queue never exceeds
   ``max_queue_depth``.  When full, an arrival of a strictly higher
   priority class preempts the worst queued ticket (which is shed with
   reason ``preempted``); equal-or-lower-priority arrivals are shed with
   ``queue-full``.  Dispatch order is priority class, FIFO within a class.

The controller is transport-agnostic and designed to be driven from a
single event loop (or synchronously from tests): it takes an injectable
monotonic ``clock`` and keeps no locks of its own.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import faults
from repro.utils.timing import Deadline

#: The recognised priority classes, most important first.
PRIORITY_CLASSES: Tuple[str, ...] = ("interactive", "standard", "batch")
_PRIORITY_RANK: Dict[str, int] = {name: rank
                                  for rank, name in enumerate(PRIORITY_CLASSES)}


@dataclass(frozen=True)
class TenantPolicy:
    """QoS knobs for one tenant (all optional; ``None`` = unlimited).

    Attributes
    ----------
    rate:
        Sustained admission rate in requests/second (token-bucket refill).
    burst:
        Token-bucket depth: how many requests may arrive back-to-back
        before the sustained rate applies.
    max_queued:
        Cap on the tenant's simultaneously queued requests.
    max_inflight:
        Cap on the tenant's concurrently executing requests (its share of
        the engine worker pool).
    max_plans:
        Cap on the tenant's distinct *cached* workloads; beyond it new
        workloads run with the plan cache bypassed.
    """

    rate: Optional[float] = None
    burst: int = 8
    max_queued: Optional[int] = None
    max_inflight: Optional[int] = None
    max_plans: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive or None, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        for name in ("max_queued", "max_inflight", "max_plans"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {value}")


@dataclass(frozen=True)
class AdmissionConfig:
    """Global admission-control configuration.

    Attributes
    ----------
    max_queue_depth:
        Hard bound on the admission queue (so overload cannot grow memory).
    default_policy:
        The :class:`TenantPolicy` applied to tenants without an explicit one.
    tenants:
        Per-tenant policy overrides, keyed by tenant name.
    shed_safety:
        Multiplier on the expected execution cost in the deadline-aware
        shed test; > 1 sheds more aggressively (hedging cost variance).
    """

    max_queue_depth: int = 64
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    tenants: Dict[str, TenantPolicy] = field(default_factory=dict)
    shed_safety: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.shed_safety <= 0:
            raise ValueError(
                f"shed_safety must be positive, got {self.shed_safety}")

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The effective policy for *tenant*."""
        return self.tenants.get(tenant, self.default_policy)


@dataclass(frozen=True)
class Shed:
    """A structured rejection: why a request was refused before execution.

    ``reason`` is a stable machine-readable code (``deadline-expired``,
    ``deadline-unreachable``, ``tenant-rate``, ``tenant-queue-quota``,
    ``queue-full``, ``preempted``, ``server-shutdown``); ``retry_after``
    (seconds) is set when retrying later could succeed (rate limits).
    """

    reason: str
    message: str
    retry_after: Optional[float] = None


class Ticket:
    """One request's admission-control state, transport-agnostic.

    The serving layer attaches whatever it needs (decoded spec, response
    future) to :attr:`payload` / :attr:`future`; the controller only reads
    tenant, priority, deadline and cost key.
    """

    __slots__ = ("tenant", "priority", "deadline", "cost_key", "payload",
                 "future", "cache", "shed", "cancelled", "seq",
                 "enqueued_at", "dispatched_at")

    def __init__(self, tenant: str = "default", priority: str = "standard",
                 deadline: Optional[Deadline] = None,
                 cost_key: Optional[object] = None,
                 payload: Optional[object] = None) -> None:
        if priority not in _PRIORITY_RANK:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, got {priority!r}")
        self.tenant = tenant
        self.priority = priority
        self.deadline = deadline if deadline is not None else Deadline.unlimited()
        self.cost_key = cost_key
        self.payload = payload
        self.future = None
        #: Whether the execution may use the plan cache (cleared when the
        #: tenant is over its cache quota).
        self.cache = True
        #: Set when the controller refused or evicted this ticket.
        self.shed: Optional[Shed] = None
        self.cancelled = False
        self.seq = 0
        self.enqueued_at: Optional[float] = None
        self.dispatched_at: Optional[float] = None

    @property
    def rank(self) -> int:
        """Numeric priority (lower = more important)."""
        return _PRIORITY_RANK[self.priority]


class CostModel:
    """EWMA estimates of per-workload execution cost (seconds).

    Keyed by an opaque hashable workload key (the server uses
    ``(network, algorithm, query fingerprint)``); a global EWMA over all
    workloads backs estimates for keys never seen before.  ``None`` means
    "no idea yet" — the admission controller only sheds on deadlines it can
    actually predict.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._per_key: Dict[object, float] = {}
        self._global: Optional[float] = None
        self._observations = 0

    def observe(self, key: object, seconds: float) -> None:
        """Fold one completed execution's wall cost into the estimates."""
        if seconds < 0:
            return
        self._observations += 1
        previous = self._per_key.get(key)
        self._per_key[key] = (seconds if previous is None
                              else previous + self.alpha * (seconds - previous))
        self._global = (seconds if self._global is None
                        else self._global + self.alpha * (seconds - self._global))

    def estimate(self, key: object) -> Optional[float]:
        """Expected cost for *key* (falls back to the global EWMA)."""
        value = self._per_key.get(key)
        return value if value is not None else self._global

    @property
    def global_estimate(self) -> Optional[float]:
        """The cross-workload EWMA (used for queue-wait predictions)."""
        return self._global

    def stats(self) -> Dict[str, object]:
        return {
            "observations": self._observations,
            "tracked_keys": len(self._per_key),
            "global_estimate_seconds": self._global,
        }


class AdmissionController:
    """The bounded, QoS-aware admission queue in front of the engine.

    Drive it from one thread (the server's event loop): :meth:`admit` on
    arrival, :meth:`pop_ready` whenever an engine worker frees up,
    :meth:`finish` on completion.  Evictions caused by priority preemption
    are collected via :meth:`take_evicted` so the transport can answer the
    evicted requests too.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None,
                 cost_model: Optional[CostModel] = None,
                 workers: int = 1, clock=time.monotonic) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.config = config if config is not None else AdmissionConfig()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.workers = workers
        self._clock = clock
        self._seq = itertools.count(1)
        #: Min-heap of (priority rank, seq, ticket); cancelled tickets stay
        #: until popped (lazy deletion).
        self._heap: List[Tuple[int, int, Ticket]] = []
        self._queued = 0
        self._queued_per_tenant: Dict[str, int] = {}
        self._inflight = 0
        self._inflight_per_tenant: Dict[str, int] = {}
        self._buckets: Dict[str, Tuple[float, float]] = {}  # tokens, stamp
        self._plan_keys: Dict[str, Set[object]] = {}
        self._evicted: List[Ticket] = []
        # Lifetime counters (served verbatim by the metrics endpoint).
        self._offered = 0
        self._admitted = 0
        self._executed = 0
        self._completed = 0
        self._cache_bypassed = 0
        self._shed: Dict[str, int] = {}
        self._per_tenant: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # Arrival
    # ------------------------------------------------------------------ #

    def admit(self, ticket: Ticket) -> Optional[Shed]:
        """Admit *ticket* to the queue, or return why it was shed.

        A returned :class:`Shed` is also stored on ``ticket.shed``.  May
        preempt a lower-priority queued ticket; collect those through
        :meth:`take_evicted` and answer them.
        """
        faults.fire("admission.admit")
        self._offered += 1
        tenant = ticket.tenant
        self._tenant_counters(tenant)["offered"] += 1
        policy = self.config.policy_for(tenant)

        decision = (self._check_deadline(ticket)
                    or self._check_rate(tenant, policy)
                    or self._check_tenant_queue(tenant, policy)
                    or self._check_global_queue(ticket))
        if decision is not None:
            return self._refuse(ticket, decision)

        self._consume_token(tenant, policy)
        self._apply_cache_quota(ticket, policy)
        ticket.seq = next(self._seq)
        ticket.enqueued_at = self._clock()
        heapq.heappush(self._heap, (ticket.rank, ticket.seq, ticket))
        self._queued += 1
        self._queued_per_tenant[tenant] = self._queued_per_tenant.get(tenant, 0) + 1
        self._admitted += 1
        self._tenant_counters(tenant)["admitted"] += 1
        return None

    def _check_deadline(self, ticket: Ticket) -> Optional[Shed]:
        remaining = ticket.deadline.remaining
        if remaining <= 0:
            return Shed("deadline-expired",
                        "deadline expired before admission")
        estimate = self.cost_model.estimate(ticket.cost_key)
        if estimate is None:
            return None
        backlog = self.cost_model.global_estimate
        wait = 0.0
        if backlog is not None:
            waiting = self._queued + max(0, self._inflight - self.workers + 1)
            wait = backlog * waiting / self.workers
        needed = self.config.shed_safety * estimate + wait
        if remaining < needed:
            return Shed("deadline-unreachable",
                        f"remaining deadline {remaining:.3f}s cannot cover "
                        f"expected cost {needed:.3f}s "
                        f"(execution {estimate:.3f}s + queue wait {wait:.3f}s)")
        return None

    def _check_rate(self, tenant: str, policy: TenantPolicy) -> Optional[Shed]:
        if policy.rate is None:
            return None
        tokens = self._refill(tenant, policy)
        if tokens >= 1.0:
            return None
        return Shed("tenant-rate",
                    f"tenant {tenant!r} exceeded {policy.rate:g} req/s "
                    f"(burst {policy.burst})",
                    retry_after=(1.0 - tokens) / policy.rate)

    def _check_tenant_queue(self, tenant: str,
                            policy: TenantPolicy) -> Optional[Shed]:
        if policy.max_queued is None:
            return None
        if self._queued_per_tenant.get(tenant, 0) < policy.max_queued:
            return None
        return Shed("tenant-queue-quota",
                    f"tenant {tenant!r} already has {policy.max_queued} "
                    f"request(s) queued")

    def _check_global_queue(self, ticket: Ticket) -> Optional[Shed]:
        if self._queued < self.config.max_queue_depth:
            return None
        victim = self._worst_queued()
        if victim is not None and ticket.rank < victim.rank:
            self._evict(victim)
            return None
        return Shed("queue-full",
                    f"admission queue is full "
                    f"({self.config.max_queue_depth} deep)")

    def _worst_queued(self) -> Optional[Ticket]:
        worst: Optional[Ticket] = None
        for _, _, candidate in self._heap:
            if candidate.cancelled:
                continue
            if (worst is None or (candidate.rank, candidate.seq)
                    > (worst.rank, worst.seq)):
                worst = candidate
        return worst

    def _evict(self, victim: Ticket) -> None:
        victim.cancelled = True
        victim.shed = Shed("preempted",
                           "evicted from a full queue by a higher-priority "
                           "arrival")
        self._dequeued(victim)
        self._count_shed(victim, victim.shed)
        self._evicted.append(victim)

    def _refuse(self, ticket: Ticket, decision: Shed) -> Shed:
        ticket.shed = decision
        self._count_shed(ticket, decision)
        return decision

    # ------------------------------------------------------------------ #
    # Dispatch / completion
    # ------------------------------------------------------------------ #

    def pop_ready(self) -> Optional[Ticket]:
        """The next ticket to act on, in (priority, FIFO) order.

        Returns a ticket whose ``shed`` is set when its deadline expired
        while queued — the caller must answer it and **not** execute it.
        Tickets of tenants at their ``max_inflight`` quota are left queued.
        Returns ``None`` when nothing is dispatchable right now.
        """
        blocked: List[Tuple[int, int, Ticket]] = []
        found: Optional[Ticket] = None
        while self._heap:
            rank, seq, ticket = heapq.heappop(self._heap)
            if ticket.cancelled:
                continue
            if ticket.deadline.remaining <= 0:
                ticket.shed = Shed("deadline-expired",
                                   "deadline expired while queued")
                self._dequeued(ticket)
                self._count_shed(ticket, ticket.shed)
                found = ticket
                break
            policy = self.config.policy_for(ticket.tenant)
            if (policy.max_inflight is not None
                    and self._inflight_per_tenant.get(ticket.tenant, 0)
                    >= policy.max_inflight):
                blocked.append((rank, seq, ticket))
                continue
            self._dequeued(ticket)
            self._inflight += 1
            self._inflight_per_tenant[ticket.tenant] = (
                self._inflight_per_tenant.get(ticket.tenant, 0) + 1)
            self._executed += 1
            ticket.dispatched_at = self._clock()
            found = ticket
            break
        for item in blocked:
            heapq.heappush(self._heap, item)
        return found

    def finish(self, ticket: Ticket,
               cost_seconds: Optional[float] = None) -> None:
        """Record the completion of a dispatched ticket."""
        self._inflight -= 1
        count = self._inflight_per_tenant.get(ticket.tenant, 0) - 1
        if count > 0:
            self._inflight_per_tenant[ticket.tenant] = count
        else:
            self._inflight_per_tenant.pop(ticket.tenant, None)
        self._completed += 1
        self._tenant_counters(ticket.tenant)["completed"] += 1
        if cost_seconds is not None:
            self.cost_model.observe(ticket.cost_key, cost_seconds)

    def take_evicted(self) -> List[Ticket]:
        """Tickets preempted since the last call (answer them as shed)."""
        evicted, self._evicted = self._evicted, []
        return evicted

    def drain(self, reason: str = "server-shutdown") -> List[Ticket]:
        """Shed everything still queued (shutdown path); returns the tickets."""
        drained: List[Ticket] = []
        while self._heap:
            _, _, ticket = heapq.heappop(self._heap)
            if ticket.cancelled:
                continue
            ticket.cancelled = True
            ticket.shed = Shed(reason, "server is shutting down")
            self._dequeued(ticket)
            self._count_shed(ticket, ticket.shed)
            drained.append(ticket)
        return drained

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _dequeued(self, ticket: Ticket) -> None:
        self._queued -= 1
        count = self._queued_per_tenant.get(ticket.tenant, 0) - 1
        if count > 0:
            self._queued_per_tenant[ticket.tenant] = count
        else:
            self._queued_per_tenant.pop(ticket.tenant, None)

    def _refill(self, tenant: str, policy: TenantPolicy) -> float:
        now = self._clock()
        tokens, stamp = self._buckets.get(tenant, (float(policy.burst), now))
        tokens = min(float(policy.burst), tokens + policy.rate * (now - stamp))
        self._buckets[tenant] = (tokens, now)
        return tokens

    def _consume_token(self, tenant: str, policy: TenantPolicy) -> None:
        if policy.rate is None:
            return
        tokens, stamp = self._buckets[tenant]
        self._buckets[tenant] = (tokens - 1.0, stamp)

    def _apply_cache_quota(self, ticket: Ticket, policy: TenantPolicy) -> None:
        if policy.max_plans is None or ticket.cost_key is None:
            return
        keys = self._plan_keys.setdefault(ticket.tenant, set())
        if ticket.cost_key in keys:
            return
        if len(keys) < policy.max_plans:
            keys.add(ticket.cost_key)
            return
        ticket.cache = False
        self._cache_bypassed += 1
        self._tenant_counters(ticket.tenant)["cache_bypassed"] += 1

    def _count_shed(self, ticket: Ticket, decision: Shed) -> None:
        self._shed[decision.reason] = self._shed.get(decision.reason, 0) + 1
        self._tenant_counters(ticket.tenant)["shed"] += 1

    def _tenant_counters(self, tenant: str) -> Dict[str, int]:
        counters = self._per_tenant.get(tenant)
        if counters is None:
            counters = self._per_tenant[tenant] = {
                "offered": 0, "admitted": 0, "completed": 0,
                "shed": 0, "cache_bypassed": 0,
            }
        return counters

    # ------------------------------------------------------------------ #

    @property
    def queued(self) -> int:
        """Live queue depth (excluding cancelled tickets)."""
        return self._queued

    @property
    def inflight(self) -> int:
        """Currently executing tickets."""
        return self._inflight

    def stats(self) -> Dict[str, object]:
        """Lifetime admission counters (a JSON-serialisable snapshot)."""
        return {
            "offered": self._offered,
            "admitted": self._admitted,
            "executed": self._executed,
            "completed": self._completed,
            "shed": dict(self._shed),
            "shed_total": sum(self._shed.values()),
            "cache_bypassed": self._cache_bypassed,
            "queued": self._queued,
            "inflight": self._inflight,
            "max_queue_depth": self.config.max_queue_depth,
            "tenants": {name: dict(counters)
                        for name, counters in self._per_tenant.items()},
            "cost_model": self.cost_model.stats(),
        }
