"""The asyncio front door over :class:`~repro.service.netembed.NetEmbedService`.

One event loop accepts newline-delimited-JSON connections (see
:mod:`repro.server.protocol`), runs every request through the
:class:`~repro.server.admission.AdmissionController`, and offloads admitted
searches onto a bounded thread pool of ``engine_workers`` synchronous
engine executions.  The pool never backs up: queueing happens only in the
admission controller's bounded priority queue, so overload turns into
structured ``shed`` responses instead of unbounded memory growth or silent
client timeouts.

Deadlines are enforced twice: at admission (dead-on-arrival and
cost-model-predicted misses are shed immediately) and at dispatch (a
request whose deadline expired while queued is shed without ever reaching
the engine; one that is still alive runs under its *remaining* deadline via
:meth:`~repro.api.request.Budget.clamped`).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro import faults
from repro.api.request import Budget
from repro.server.admission import Shed, Ticket
from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    mapping_payload,
    query_from_payload,
    read_message,
    write_message,
)
from repro.server.registry import ServiceRegistry
from repro.service.spec import QuerySpec
from repro.utils.timing import Deadline


class EmbeddingServer:
    """A long-running NETEMBED serving process.

    Parameters
    ----------
    registry:
        The composition root holding the service, admission controller and
        cost model this server fronts.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    """

    def __init__(self, registry: Optional[ServiceRegistry] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = registry if registry is not None else ServiceRegistry()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._engine: Optional[Any] = None
        self._slots = self.registry.config.engine_workers
        self._tasks: set = set()
        self._conn_tasks: set = set()
        self._writers: set = set()
        self._stopping = False
        # Transport-level counters, folded into the metrics payload.
        self._connections_total = 0
        self._connections_open = 0
        self._requests: Dict[str, int] = {}
        self._protocol_errors = 0
        # Idempotency: completed results by client key (LRU-bounded) plus
        # in-flight keys, so a retry of a request whose answer was lost on
        # the wire replays the answer instead of re-executing (and
        # re-reserving) it.
        self._idempotency_done: "OrderedDict[str, Dict[str, Any]]" = \
            OrderedDict()
        self._idempotency_pending: Dict[str, asyncio.Future] = {}
        self._idempotency_limit = 1024
        self._idempotent_hits = 0
        self._injected_drops = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "EmbeddingServer":
        """Bind the listening socket and start accepting connections."""
        from concurrent.futures import ThreadPoolExecutor

        if self._server is not None:
            raise RuntimeError("server already started")
        self._engine = ThreadPoolExecutor(
            max_workers=self.registry.config.engine_workers,
            thread_name_prefix="netembed-serve")
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port,
            limit=MAX_MESSAGE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        """``host:port`` the server is bound to."""
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI's blocking mode)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, shed the queue, and wait for inflight work.

        Order matters: queued tickets are answered as shed first, inflight
        executions are allowed to finish and answer, and only then are the
        connections closed and the engine pool torn down.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for ticket in self.registry.admission.drain():
            self._resolve(ticket, self._shed_payload(ticket, ticket.shed))
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        if self._engine is not None:
            self._engine.shutdown(wait=True)
            self._engine = None

    async def __aenter__(self) -> "EmbeddingServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._connections_total += 1
        self._connections_open += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        pending: set = set()
        try:
            while True:
                try:
                    message = await read_message(reader)
                except (ConnectionError, OSError):
                    break  # forcibly closed (our stop() or the client's crash)
                except ProtocolError as exc:
                    # The stream is desynchronised; answer once and hang up.
                    self._protocol_errors += 1
                    await self._safe_write(writer, write_lock, {
                        "id": None, "kind": "error",
                        "error": "protocol", "message": str(exc)})
                    break
                if message is None:
                    break
                task = asyncio.ensure_future(
                    self._handle_message(message, writer, write_lock))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                # Let queued embeds finish answering before the writer dies.
                await asyncio.gather(*list(pending), return_exceptions=True)
        finally:
            self._connections_open -= 1
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _handle_message(self, message: Dict[str, Any],
                              writer: asyncio.StreamWriter,
                              write_lock: asyncio.Lock) -> None:
        op = message.get("op")
        self._requests[str(op)] = self._requests.get(str(op), 0) + 1
        message_id = message.get("id")
        if op == "ping":
            payload = {"id": message_id, "kind": "pong",
                       "protocol": PROTOCOL_VERSION}
        elif op == "metrics":
            payload = {"id": message_id, "kind": "metrics",
                       "stats": self.stats()}
        elif op in ("health", "ready"):
            payload = {"id": message_id, "kind": "health",
                       "protocol": PROTOCOL_VERSION,
                       "status": "draining" if self._stopping else "ok",
                       "ready": (self._server is not None
                                 and not self._stopping),
                       "address": self.address}
        elif op == "embed":
            payload = await self._handle_embed(message)
            if not self._stopping:
                # The connection-drop fault site: request-path replies only.
                # Shutdown-drain answers deliberately bypass injection so
                # stop() semantics stay fault-plan-independent — a queued
                # ticket is always answered `shed/server-shutdown`.
                try:
                    faults.fire("server.reply")
                except faults.InjectedConnectionDrop:
                    self._injected_drops += 1
                    writer.close()
                    return
        else:
            payload = {"id": message_id, "kind": "error", "error": "bad-op",
                       "message": f"unknown op {op!r} "
                                  f"(expected embed/metrics/ping/health)"}
        await self._safe_write(writer, write_lock, payload)

    async def _safe_write(self, writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock,
                          payload: Dict[str, Any]) -> None:
        try:
            async with write_lock:
                await write_message(writer, payload)
        except (ConnectionError, OSError):
            pass  # client went away; the work is already accounted for

    # ------------------------------------------------------------------ #
    # The embed path
    # ------------------------------------------------------------------ #

    async def _handle_embed(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Deduplicate by idempotency key, then admit/execute.

        Successful results are cached per key (LRU-bounded): a client retry
        whose first attempt executed but lost its answer on the wire gets
        the recorded result — including its ``reservation_id`` — instead of
        a second execution and a double reservation.  Sheds and errors are
        *not* cached; retrying those is exactly what a client should do.
        """
        message_id = message.get("id")
        key = message.get("idempotency_key")
        if key is None:
            return await self._execute_embed(message)
        if not isinstance(key, str) or not key:
            return {"id": message_id, "kind": "error", "error": "bad-request",
                    "message": "idempotency_key must be a non-empty string"}
        cached = self._idempotency_done.get(key)
        if cached is not None:
            self._idempotency_done.move_to_end(key)
            self._idempotent_hits += 1
            return dict(cached, id=message_id, idempotent_replay=True)
        pending = self._idempotency_pending.get(key)
        if pending is not None:
            # A duplicate racing its original: share the original's answer.
            self._idempotent_hits += 1
            payload = await asyncio.shield(pending)
            return dict(payload, id=message_id, idempotent_replay=True)
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._idempotency_pending[key] = waiter
        try:
            payload = await self._execute_embed(message)
        except BaseException:
            self._idempotency_pending.pop(key, None)
            if not waiter.done():
                waiter.cancel()
            raise
        self._idempotency_pending.pop(key, None)
        if payload.get("kind") == "result":
            self._idempotency_done[key] = dict(payload)
            while len(self._idempotency_done) > self._idempotency_limit:
                self._idempotency_done.popitem(last=False)
        if not waiter.done():
            waiter.set_result(dict(payload))
        return payload

    async def _execute_embed(self, message: Dict[str, Any]) -> Dict[str, Any]:
        message_id = message.get("id")
        try:
            ticket = self._ticket_from(message)
        except (ProtocolError, TypeError, ValueError) as exc:
            return {"id": message_id, "kind": "error", "error": "bad-request",
                    "message": str(exc)}
        ticket.future = asyncio.get_running_loop().create_future()
        decision = self.registry.admission.admit(ticket)
        for evicted in self.registry.admission.take_evicted():
            self._resolve(evicted, self._shed_payload(evicted, evicted.shed))
        if decision is not None:
            return self._shed_payload(ticket, decision)
        self._kick()
        return await ticket.future

    def _ticket_from(self, message: Dict[str, Any]) -> Ticket:
        """Validate an embed message into an admission ticket."""
        query = query_from_payload(message.get("query"))
        algorithm = message.get("algorithm", "auto")
        if (not isinstance(algorithm, str)
                or (algorithm.lower() != "auto"
                    and algorithm not in self.registry.service.algorithms)):
            raise ProtocolError(
                f"unknown algorithm {algorithm!r}; expected 'auto' or one of "
                f"{self.registry.service.algorithms.names()}")
        network = message.get("network")
        constraint = message.get("constraint")
        node_constraint = message.get("node_constraint")
        deadline = message.get("deadline")
        if deadline is not None and (not isinstance(deadline, (int, float))
                                     or deadline <= 0):
            raise ProtocolError(
                f"deadline must be a positive number of seconds, "
                f"got {deadline!r}")
        payload = {
            "id": message.get("id"),
            "query": query,
            "constraint": constraint,
            "node_constraint": node_constraint,
            "algorithm": algorithm,
            "network": network,
            "timeout": message.get("timeout"),
            "max_results": message.get("max_results"),
            "seed": message.get("seed"),
            "reserve": bool(message.get("reserve", False)),
        }
        cost_key = (network, algorithm, query.name, query.num_nodes,
                    query.num_edges, constraint, node_constraint)
        return Ticket(
            tenant=str(message.get("tenant", "default")),
            priority=str(message.get("priority", "standard")),
            deadline=(Deadline(float(deadline)) if deadline is not None
                      else Deadline.unlimited()),
            cost_key=cost_key,
            payload=payload,
        )

    def _kick(self) -> None:
        """Dispatch queued tickets onto free engine slots."""
        admission = self.registry.admission
        while self._slots > 0 and not self._stopping:
            ticket = admission.pop_ready()
            if ticket is None:
                return
            if ticket.shed is not None:
                # Expired while queued: answer, never execute.
                self._resolve(ticket, self._shed_payload(ticket, ticket.shed))
                continue
            self._slots -= 1
            task = asyncio.ensure_future(self._run_ticket(ticket))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_ticket(self, ticket: Ticket) -> None:
        cost: Optional[float] = None
        try:
            spec = self._spec_for(ticket)
            started = time.perf_counter()
            response = await asyncio.get_running_loop().run_in_executor(
                self._engine, self.registry.service.submit, spec)
            cost = time.perf_counter() - started
            payload = self._result_payload(ticket, response)
        except Exception as exc:  # noqa: BLE001 — reported per-request
            payload = {"id": ticket.payload["id"], "kind": "error",
                       "error": type(exc).__name__, "message": str(exc)}
        finally:
            self.registry.admission.finish(ticket, cost)
            self._slots += 1
            self._kick()
        self._resolve(ticket, payload)

    def _spec_for(self, ticket: Ticket) -> QuerySpec:
        """Lower a dispatched ticket onto a deadline-clamped QuerySpec."""
        fields = ticket.payload
        budget = (Budget(timeout=fields["timeout"],
                         max_results=fields["max_results"])
                  .with_default_timeout(self.registry.config.default_timeout)
                  .clamped(ticket.deadline.remaining))
        return QuerySpec(
            query=fields["query"],
            constraint=fields["constraint"],
            node_constraint=fields["node_constraint"],
            algorithm=fields["algorithm"],
            timeout=budget.timeout,
            max_results=budget.max_results,
            network=fields["network"],
            seed=fields["seed"],
            reserve=fields["reserve"],
            cache=ticket.cache,
            registry=self.registry.service.algorithms,
        )

    def _result_payload(self, ticket: Ticket, response) -> Dict[str, Any]:
        queue_seconds = None
        if ticket.enqueued_at is not None and ticket.dispatched_at is not None:
            queue_seconds = ticket.dispatched_at - ticket.enqueued_at
        return {
            "id": ticket.payload["id"],
            "kind": "result",
            "tenant": ticket.tenant,
            "priority": ticket.priority,
            "status": response.status.value,
            "algorithm": response.algorithm_used,
            "network": response.network_name,
            "mappings": [mapping_payload(m) for m in response.mappings],
            "elapsed_seconds": response.elapsed_seconds,
            "queue_seconds": queue_seconds,
            "cache_allowed": ticket.cache,
            "reservation_id": getattr(response, "reservation_id", None),
        }

    def _shed_payload(self, ticket: Ticket, decision: Shed) -> Dict[str, Any]:
        payload = {
            "id": ticket.payload["id"] if ticket.payload else None,
            "kind": "shed",
            "tenant": ticket.tenant,
            "priority": ticket.priority,
            "reason": decision.reason,
            "message": decision.message,
        }
        if decision.retry_after is not None:
            payload["retry_after"] = decision.retry_after
        return payload

    @staticmethod
    def _resolve(ticket: Ticket, payload: Dict[str, Any]) -> None:
        future = ticket.future
        if future is not None and not future.done():
            future.set_result(payload)

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        """The metrics document: service + admission + transport counters."""
        stats = self.registry.stats()
        stats["server"] = {
            "protocol": PROTOCOL_VERSION,
            "address": self.address,
            "engine_workers": self.registry.config.engine_workers,
            "engine_slots_free": self._slots,
            "connections_total": self._connections_total,
            "connections_open": self._connections_open,
            "requests": dict(self._requests),
            "protocol_errors": self._protocol_errors,
            "idempotent_hits": self._idempotent_hits,
            "idempotency_entries": len(self._idempotency_done),
            "injected_connection_drops": self._injected_drops,
        }
        return stats
