"""Async client for the serving tier, used by tests, examples and benches.

:class:`AsyncNetEmbedClient` speaks the newline-delimited-JSON protocol of
:mod:`repro.server.protocol` over one connection.  Requests are correlated
by id, so many may be in flight at once (the open-loop load generators fire
them without waiting) and responses are routed back to their callers even
when the server answers out of order — which it does whenever admission
control reorders by priority.

Failure semantics
-----------------

The client never leaves a caller hanging.  When the connection dies —
server crash, injected drop, network partition — every outstanding request
future fails with a structured :class:`ConnectionLostError`, and any request
issued afterwards fails fast with the same error instead of waiting for a
response that can never arrive.  Recovery is explicit and composable:

* :meth:`reconnect` re-establishes the transport (the original ``connect``
  address is remembered);
* :meth:`embed` accepts a :class:`RetryPolicy` to do the whole loop —
  jittered exponential backoff, honouring a shed's ``retry_after`` hint,
  reconnecting on connection loss — and an ``idempotency_key`` so a retry
  whose first attempt actually executed (the answer was lost on the wire)
  replays the recorded result instead of re-executing and double-reserving.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.graphs.query import QueryNetwork
from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    network_payload,
    read_message,
    write_message,
)


class ServerClosedError(ConnectionError):
    """The server hung up while requests were still outstanding."""


class ConnectionLostError(ServerClosedError):
    """The connection died with requests in flight (or was already dead).

    Attributes
    ----------
    pending:
        How many request futures were failed by the disconnect that raised
        this error (0 when the error marks a request issued *after* the
        connection was already lost).
    """

    def __init__(self, message: str, pending: int = 0) -> None:
        super().__init__(message)
        self.pending = pending


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry/backoff contract for :meth:`AsyncNetEmbedClient.embed`.

    ``delay(attempt)`` is ``min(max_delay, base_delay * 2**(attempt-1))``,
    multiplied by a seeded jitter in ``[1-jitter, 1+jitter]`` (jitter keeps
    a reconnecting client herd from re-arriving in lockstep), and never less
    than the server's ``retry_after`` hint when one was given — the server
    knows its own queue better than any client-side guess.
    """

    #: Total attempts, the first one included.
    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    #: Relative jitter amplitude (0 = deterministic delays).
    jitter: float = 0.25
    #: Also retry ``kind == "error"`` responses (transient server-side
    #: failures such as an injected engine timeout).  Off by default:
    #: errors are commonly deterministic (bad request, unknown network).
    retry_errors: bool = False

    def delay(self, attempt: int, retry_after: Optional[float] = None,
              rng: Optional[random.Random] = None) -> float:
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay


class AsyncNetEmbedClient:
    """One connection to an :class:`~repro.server.app.EmbeddingServer`.

    Use as an async context manager::

        async with await AsyncNetEmbedClient.connect("127.0.0.1", port) as c:
            response = await c.embed(query, constraint="...", deadline=2.0)

    Every call returns the raw response dict (``kind`` is ``result`` /
    ``shed`` / ``error``); :meth:`embed` never raises on a shed — shedding
    is an expected answer under load, not an exception.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 host: Optional[str] = None,
                 port: Optional[int] = None) -> None:
        self._reader = reader
        self._writer = writer
        self.host = host
        self.port = port
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._lost: Optional[BaseException] = None
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._reconnect_lock = asyncio.Lock()
        self._reconnects = 0
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncNetEmbedClient":
        """Open a connection to the server at ``host:port``."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_MESSAGE_BYTES)
        return cls(reader, writer, host=host, port=port)

    @property
    def connection_lost(self) -> Optional[BaseException]:
        """The error that killed the connection, or ``None`` while healthy."""
        return self._lost

    @property
    def reconnects(self) -> int:
        """How many times :meth:`reconnect` re-established the transport."""
        return self._reconnects

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #

    async def embed(self, query: QueryNetwork,
                    constraint: Optional[str] = None,
                    node_constraint: Optional[str] = None,
                    algorithm: str = "auto",
                    network: Optional[str] = None,
                    timeout: Optional[float] = None,
                    max_results: Optional[int] = None,
                    seed: Optional[int] = None,
                    tenant: str = "default",
                    priority: str = "standard",
                    deadline: Optional[float] = None,
                    reserve: bool = False,
                    idempotency_key: Optional[str] = None,
                    retry: Optional[RetryPolicy] = None,
                    rng: Union[None, int, random.Random] = None
                    ) -> Dict[str, Any]:
        """Submit one embedding request; returns the raw response dict.

        ``deadline`` is the total seconds this request may spend —
        queueing included; the server sheds it rather than let it rot in
        the queue.  ``timeout`` is the search budget once running (clamped
        to whatever deadline remains at dispatch).

        With a :class:`RetryPolicy`, connection losses reconnect-and-retry
        with jittered exponential backoff, sheds carrying a ``retry_after``
        hint wait at least that long before retrying, and an
        ``idempotency_key`` (auto-generated when retrying without one)
        guarantees at-most-once execution across all attempts.  ``rng``
        seeds the jitter for reproducible schedules.
        """
        message: Dict[str, Any] = {
            "op": "embed",
            "query": network_payload(query),
            "algorithm": algorithm,
            "tenant": tenant,
            "priority": priority,
        }
        if constraint is not None:
            # Accept parsed ConstraintExpression objects as well as source
            # text; the wire format is always the source string.
            message["constraint"] = getattr(constraint, "source", constraint)
        if node_constraint is not None:
            message["node_constraint"] = getattr(node_constraint, "source",
                                                 node_constraint)
        if network is not None:
            message["network"] = network
        if timeout is not None:
            message["timeout"] = timeout
        if max_results is not None:
            message["max_results"] = max_results
        if seed is not None:
            message["seed"] = seed
        if deadline is not None:
            message["deadline"] = deadline
        if reserve:
            message["reserve"] = True
        if idempotency_key is None and retry is not None:
            # Retries without a caller-chosen key still must not re-execute
            # an attempt whose answer was merely lost on the wire.
            idempotency_key = f"auto-{uuid.uuid4().hex}"
        if idempotency_key is not None:
            message["idempotency_key"] = idempotency_key
        if retry is None:
            return await self.request(message)
        return await self._request_with_retry(message, retry, rng)

    async def _request_with_retry(self, message: Dict[str, Any],
                                  retry: RetryPolicy,
                                  rng: Union[None, int, random.Random]
                                  ) -> Dict[str, Any]:
        jitter_rng = (random.Random(rng) if isinstance(rng, int)
                      else rng)
        attempt = 0
        while True:
            attempt += 1
            try:
                response = await self.request(message)
            except ConnectionLostError:
                if (attempt >= retry.max_attempts or self._closed
                        or self.host is None):
                    raise
                await asyncio.sleep(retry.delay(attempt, rng=jitter_rng))
                await self.reconnect()
                continue
            kind = response.get("kind")
            if (kind == "shed" and attempt < retry.max_attempts
                    and response.get("retry_after") is not None):
                # Sheds without a retry_after hint (expired deadlines,
                # queue-quota policy) are answers, not transients.
                await asyncio.sleep(retry.delay(
                    attempt, retry_after=response["retry_after"],
                    rng=jitter_rng))
                continue
            if (kind == "error" and retry.retry_errors
                    and attempt < retry.max_attempts):
                await asyncio.sleep(retry.delay(attempt, rng=jitter_rng))
                continue
            return response

    async def metrics(self) -> Dict[str, Any]:
        """Fetch the server's metrics document (the stats snapshot)."""
        response = await self.request({"op": "metrics"})
        return response.get("stats", response)

    async def ping(self) -> Dict[str, Any]:
        """Round-trip a ping (returns the pong with the protocol version)."""
        return await self.request({"op": "ping"})

    async def health(self) -> Dict[str, Any]:
        """The server's health/readiness document (``status``, ``ready``)."""
        return await self.request({"op": "health"})

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw protocol message and await its response.

        Raises :class:`ConnectionLostError` — immediately, never hanging —
        when the connection is already dead or dies mid-flight.
        """
        if self._closed:
            raise ServerClosedError("client is closed")
        if self._lost is not None:
            raise ConnectionLostError(
                f"connection is lost ({self._lost}); reconnect() to resume")
        request_id = next(self._ids)
        message = dict(message)
        message["id"] = request_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            try:
                await write_message(self._writer, message)
            except (ConnectionError, OSError) as exc:
                if future.done() and not future.cancelled():
                    future.exception()   # consume: this call re-raises below
                else:
                    future.cancel()
                raise ConnectionLostError(
                    f"connection lost while sending: {exc}") from exc
            return await future
        finally:
            self._pending.pop(request_id, None)

    # ------------------------------------------------------------------ #

    async def reconnect(self) -> "AsyncNetEmbedClient":
        """Re-establish the transport after a connection loss.

        Outstanding requests of the dead connection stay failed — their
        responses are unrecoverable — but the client object becomes usable
        again.  Requires the client to have been built via :meth:`connect`
        (the address is remembered).
        """
        if self._closed:
            raise ServerClosedError("client is closed")
        if self.host is None or self.port is None:
            raise ConnectionLostError(
                "cannot reconnect: this client was built from raw streams "
                "and has no remembered address")
        async with self._reconnect_lock:
            if self._lost is None:
                return self       # another waiter already reconnected
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            reader, writer = await asyncio.open_connection(
                self.host, self.port, limit=MAX_MESSAGE_BYTES)
            self._reader = reader
            self._writer = writer
            self._lost = None
            self._reconnects += 1
            self._reader_task = asyncio.ensure_future(self._read_loop())
            return self

    async def _read_loop(self) -> None:
        error: BaseException = ServerClosedError("server closed the connection")
        try:
            while True:
                message = await read_message(self._reader)
                if message is None:
                    break
                future = self._pending.get(message.get("id"))
                if future is not None and not future.done():
                    future.set_result(message)
        except (ProtocolError, ConnectionError, OSError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ServerClosedError("client closed")
        # Fail every outstanding request with one structured error; set
        # the lost flag *first* so a request() racing this loop either
        # sees the flag or is in _pending and gets failed here — no
        # interleaving leaves a future unresolved.
        lost = ConnectionLostError(
            f"connection lost: {error}", pending=len(self._pending))
        self._lost = lost
        for future in self._pending.values():
            if not future.done():
                future.set_exception(lost)

    async def close(self) -> None:
        """Close the connection and fail any outstanding requests."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass

    async def __aenter__(self) -> "AsyncNetEmbedClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
