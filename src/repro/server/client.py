"""Async client for the serving tier, used by tests, examples and benches.

:class:`AsyncNetEmbedClient` speaks the newline-delimited-JSON protocol of
:mod:`repro.server.protocol` over one connection.  Requests are correlated
by id, so many may be in flight at once (the open-loop load generators fire
them without waiting) and responses are routed back to their callers even
when the server answers out of order — which it does whenever admission
control reorders by priority.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional

from repro.graphs.query import QueryNetwork
from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    network_payload,
    read_message,
    write_message,
)


class ServerClosedError(ConnectionError):
    """The server hung up while requests were still outstanding."""


class AsyncNetEmbedClient:
    """One connection to an :class:`~repro.server.app.EmbeddingServer`.

    Use as an async context manager::

        async with await AsyncNetEmbedClient.connect("127.0.0.1", port) as c:
            response = await c.embed(query, constraint="...", deadline=2.0)

    Every call returns the raw response dict (``kind`` is ``result`` /
    ``shed`` / ``error``); :meth:`embed` never raises on a shed — shedding
    is an expected answer under load, not an exception.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncNetEmbedClient":
        """Open a connection to the server at ``host:port``."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_MESSAGE_BYTES)
        return cls(reader, writer)

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #

    async def embed(self, query: QueryNetwork,
                    constraint: Optional[str] = None,
                    node_constraint: Optional[str] = None,
                    algorithm: str = "auto",
                    network: Optional[str] = None,
                    timeout: Optional[float] = None,
                    max_results: Optional[int] = None,
                    seed: Optional[int] = None,
                    tenant: str = "default",
                    priority: str = "standard",
                    deadline: Optional[float] = None) -> Dict[str, Any]:
        """Submit one embedding request; returns the raw response dict.

        ``deadline`` is the total seconds this request may spend —
        queueing included; the server sheds it rather than let it rot in
        the queue.  ``timeout`` is the search budget once running (clamped
        to whatever deadline remains at dispatch).
        """
        message: Dict[str, Any] = {
            "op": "embed",
            "query": network_payload(query),
            "algorithm": algorithm,
            "tenant": tenant,
            "priority": priority,
        }
        if constraint is not None:
            # Accept parsed ConstraintExpression objects as well as source
            # text; the wire format is always the source string.
            message["constraint"] = getattr(constraint, "source", constraint)
        if node_constraint is not None:
            message["node_constraint"] = getattr(node_constraint, "source",
                                                 node_constraint)
        if network is not None:
            message["network"] = network
        if timeout is not None:
            message["timeout"] = timeout
        if max_results is not None:
            message["max_results"] = max_results
        if seed is not None:
            message["seed"] = seed
        if deadline is not None:
            message["deadline"] = deadline
        return await self.request(message)

    async def metrics(self) -> Dict[str, Any]:
        """Fetch the server's metrics document (the stats snapshot)."""
        response = await self.request({"op": "metrics"})
        return response.get("stats", response)

    async def ping(self) -> Dict[str, Any]:
        """Round-trip a ping (returns the pong with the protocol version)."""
        return await self.request({"op": "ping"})

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw protocol message and await its response."""
        if self._closed:
            raise ServerClosedError("client is closed")
        request_id = next(self._ids)
        message = dict(message)
        message["id"] = request_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            await write_message(self._writer, message)
            return await future
        finally:
            self._pending.pop(request_id, None)

    # ------------------------------------------------------------------ #

    async def _read_loop(self) -> None:
        error: BaseException = ServerClosedError("server closed the connection")
        try:
            while True:
                message = await read_message(self._reader)
                if message is None:
                    break
                future = self._pending.get(message.get("id"))
                if future is not None and not future.done():
                    future.set_result(message)
        except (ProtocolError, ConnectionError, OSError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ServerClosedError("client closed")
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)

    async def close(self) -> None:
        """Close the connection and fail any outstanding requests."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass

    async def __aenter__(self) -> "AsyncNetEmbedClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
