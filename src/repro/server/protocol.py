"""Wire protocol of the asyncio serving tier: newline-delimited JSON.

Each message is one JSON object on one line (UTF-8, ``\\n`` terminated).
Requests carry an ``op`` (``embed`` / ``metrics`` / ``ping``) and a
client-chosen ``id`` echoed verbatim in the response, so responses may be
delivered out of order (a queued ``embed`` must not block a ``metrics``
probe on the same connection).  Responses carry a ``kind``:

* ``result`` — an accepted embed, with the stringified mappings;
* ``shed`` — a structured admission rejection (``reason``, ``message``,
  optional ``retry_after``);
* ``metrics`` / ``pong`` — endpoint payloads;
* ``error`` — malformed input or server-side failure.

Query networks travel as explicit node/edge lists (attributes must be
JSON-representable, which every paper workload's are), not as opaque
pickles — the protocol stays language-agnostic and the server never
unpickles untrusted bytes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.core.mapping import Mapping
from repro.graphs.network import Network
from repro.graphs.query import QueryNetwork

#: Bumped on incompatible changes; echoed by ``ping``.
PROTOCOL_VERSION = 1

#: One message may not exceed this many bytes on the wire (keeps a rogue
#: client from ballooning server memory before admission control even runs).
MAX_MESSAGE_BYTES = 8 * 1024 * 1024


class ProtocolError(Exception):
    """Raised on malformed frames (bad JSON, oversized line, wrong shape)."""


# --------------------------------------------------------------------------- #
# Network <-> JSON
# --------------------------------------------------------------------------- #

def network_payload(network: Network) -> Dict[str, Any]:
    """Encode *network* as a JSON-ready dict of node/edge lists."""
    return {
        "name": network.name,
        "directed": network.directed,
        "nodes": [[node, network.node_attrs(node)]
                  for node in network.nodes()],
        "edges": [[u, v, network.edge_attrs(u, v)]
                  for u, v in network.edges()],
    }


def query_from_payload(payload: Dict[str, Any]) -> QueryNetwork:
    """Decode a :func:`network_payload` dict into a :class:`QueryNetwork`."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"query must be an object, got {type(payload).__name__}")
    try:
        query = QueryNetwork(name=str(payload.get("name", "query")),
                             directed=bool(payload.get("directed", False)))
        for node, attrs in payload.get("nodes", []):
            query.add_node(_node_id(node), **dict(attrs or {}))
        for u, v, attrs in payload.get("edges", []):
            query.add_edge(_node_id(u), _node_id(v), **dict(attrs or {}))
    except ProtocolError:
        raise
    except (TypeError, ValueError, KeyError) as exc:
        raise ProtocolError(f"malformed query payload: {exc}") from exc
    if query.num_nodes == 0:
        raise ProtocolError("query payload contains no nodes")
    return query


def _node_id(value: Any) -> Any:
    """Validate a JSON-carried node id (strings and ints survive JSON)."""
    if isinstance(value, bool) or not isinstance(value, (str, int)):
        raise ProtocolError(
            f"node ids must be strings or integers, got {value!r}")
    return value


def mapping_payload(mapping: Mapping) -> Dict[str, str]:
    """Encode a mapping exactly like the CLI's JSON output (stringified)."""
    return {str(q): str(r) for q, r in mapping.items()}


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #

def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one message to its wire frame."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire frame; raises :class:`ProtocolError` on junk."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frames must be JSON objects, got {type(message).__name__}")
    return message


async def read_message(reader) -> Optional[Dict[str, Any]]:
    """Read one message from an asyncio stream; ``None`` on clean EOF."""
    import asyncio

    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        # readline signals an over-limit line as ValueError; both streams in
        # this package are opened with limit=MAX_MESSAGE_BYTES.
        raise ProtocolError(f"frame exceeds stream limit: {exc}") from exc
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit")
    return decode_message(line)


async def write_message(writer, message: Dict[str, Any]) -> None:
    """Write one message to an asyncio stream and drain it."""
    writer.write(encode_message(message))
    await writer.drain()
