"""The serving tier's composition root.

Everything the server needs — the :class:`NetEmbedService` facade (which
itself owns the model registry, plan cache and reservation ledger), the
admission controller, the shared cost model and the clock — is wired here
*explicitly*, in one place, with every collaborator injectable.  There are
no module-level singletons: tests build a :class:`ServiceRegistry` around a
stub service or a fake clock, production builds one from a
:class:`ServerConfig`, and either way the object graph is visible at a
glance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.server.admission import AdmissionConfig, AdmissionController, CostModel
from repro.service.netembed import NetEmbedService


@dataclass(frozen=True)
class ServerConfig:
    """Declarative configuration the composition root builds from.

    Attributes
    ----------
    default_timeout:
        Per-request search budget when a request names none (seconds).
    plan_cache_size:
        Capacity of the service's version-aware plan cache.
    engine_workers:
        Concurrent engine executions (the thread pool the asyncio loop
        offloads the synchronous search onto).  Queueing beyond this is the
        admission controller's job, so the pool itself never backs up.
    admission:
        Queue bound, tenant QoS policies and shedding knobs.
    """

    default_timeout: float = 30.0
    plan_cache_size: int = 128
    engine_workers: int = 2
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)

    def __post_init__(self) -> None:
        if self.engine_workers < 1:
            raise ValueError(
                f"engine_workers must be >= 1, got {self.engine_workers}")


class ServiceRegistry:
    """Explicit wiring of the serving tier's collaborators.

    Parameters
    ----------
    config:
        Knobs used for every component built here (``None`` = defaults).
    service:
        An existing :class:`NetEmbedService` to serve (``None`` = build a
        fresh one from *config*).  Injecting one lets tests pre-register
        networks, monitors and reservations before a server ever starts.
    cost_model:
        The execution-cost estimator shared between the admission
        controller (deadline shedding) and anything else that wants it;
        injectable so tests can prime expectations.
    admission:
        The admission controller (``None`` = build one from *config*,
        *cost_model* and *clock*).
    clock:
        Monotonic clock used by admission control; injectable for tests.
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 service: Optional[NetEmbedService] = None,
                 cost_model: Optional[CostModel] = None,
                 admission: Optional[AdmissionController] = None,
                 clock=time.monotonic) -> None:
        self.config = config if config is not None else ServerConfig()
        self.clock = clock
        self.service = service if service is not None else NetEmbedService(
            default_timeout=self.config.default_timeout,
            plan_cache_size=self.config.plan_cache_size)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.admission = admission if admission is not None else (
            AdmissionController(self.config.admission,
                                cost_model=self.cost_model,
                                workers=self.config.engine_workers,
                                clock=clock))

    # Convenience views into the service's own components, so server code
    # names what it touches instead of reaching through the facade.

    @property
    def models(self):
        """The named hosting-network model registry."""
        return self.service.registry

    @property
    def plans(self):
        """The version-aware plan cache."""
        return self.service.plans

    @property
    def reservations(self):
        """The reservation ledger."""
        return self.service.reservations

    def stats(self) -> Dict[str, object]:
        """The combined service + admission counter snapshot."""
        return {
            "service": self.service.stats(),
            "admission": self.admission.stats(),
        }
