"""The NETEMBED service layer (paper §III).

Components:

* :class:`NetEmbedService` — the facade applications talk to;
* :class:`NetworkModelRegistry` — named hosting-network models;
* :class:`SimulatedMonitor` — a stand-in for the monitoring infrastructure;
* :class:`ReservationManager` — optional capacity reservations over accepted
  embeddings;
* :class:`NegotiationSession` — interactive constraint relaxation;
* :class:`QuerySpec` / :class:`EmbeddingResponse` — the request/response types.
"""

from repro.api.selection import FixedSelectionPolicy, PaperSelectionPolicy, SelectionPolicy
from repro.service.model import ModelEntry, NetworkModelRegistry, UnknownNetworkError
from repro.service.monitor import UP_ATTR, MonitorConfig, SimulatedMonitor
from repro.service.netembed import NetEmbedService
from repro.service.reservation import (
    CAPACITY_NODE_CONSTRAINT,
    Reservation,
    ReservationError,
    ReservationManager,
    with_default_demand,
)
from repro.service.session import NegotiationOutcome, NegotiationRound, NegotiationSession
from repro.service.spec import EmbeddingResponse, QuerySpec, RepairResponse

__all__ = [
    "NetEmbedService",
    "SelectionPolicy",
    "PaperSelectionPolicy",
    "FixedSelectionPolicy",
    "NetworkModelRegistry",
    "ModelEntry",
    "UnknownNetworkError",
    "SimulatedMonitor",
    "MonitorConfig",
    "UP_ATTR",
    "ReservationManager",
    "Reservation",
    "ReservationError",
    "CAPACITY_NODE_CONSTRAINT",
    "with_default_demand",
    "NegotiationSession",
    "NegotiationOutcome",
    "NegotiationRound",
    "QuerySpec",
    "EmbeddingResponse",
    "RepairResponse",
]
