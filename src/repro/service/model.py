"""The network model registry (§III component 1).

The NETEMBED service keeps "a model of the real network that characterizes
the resources available", maintained by a monitoring service and/or a
resource manager.  :class:`NetworkModelRegistry` is that component: it stores
named hosting networks, tracks a model *version* that is bumped whenever the
monitor pushes an update, and hands out the live network objects to the
mapping engine.

Keeping the registry separate from the service facade also supports the
paper's note that the service "can operate in a distributed fashion simply by
keeping an up-to-date copy of the model on each server": a registry snapshot
is exactly that copy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.graphs.hosting import HostingNetwork


class UnknownNetworkError(LookupError):
    """Raised when a query references a hosting network that is not registered.

    Deliberately *not* a :class:`KeyError`: a KeyError's ``str()`` is the
    repr of its argument, which turned the helpful message into an opaque
    quoted blob at the service boundary.  The message always lists the
    registered names so a caller can self-correct.
    """

    def __init__(self, name: str, available: List[str]):
        super().__init__(
            f"no hosting network named {name!r} is registered "
            f"(available: {sorted(available) or 'none — call register_network first'})")
        self.name = name
        self.available = sorted(available)


@dataclass
class ModelEntry:
    """A registered hosting network plus its bookkeeping."""

    network: HostingNetwork
    version: int = 0
    description: str = ""


class NetworkModelRegistry:
    """Named store of hosting-network models.

    Thread-safe: the batch service's worker threads read entries and versions
    (plan-cache keys) while a monitor concurrently ``touch``-es the model, so
    every access to the entry table happens under one reentrant lock.  The
    :class:`ModelEntry` objects themselves are handed out by reference —
    version reads on a live entry are single attribute loads, which is all
    the staleness checks need.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, ModelEntry] = {}
        self._default: Optional[str] = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #

    def register(self, network: HostingNetwork, name: Optional[str] = None,
                 description: str = "", default: bool = False) -> str:
        """Register *network* under *name* (defaults to the network's own name).

        The first registered network automatically becomes the default.
        Registering an existing name replaces the model and bumps its version.
        """
        if not isinstance(network, HostingNetwork):
            raise TypeError(
                f"only HostingNetwork instances can be registered, got "
                f"{type(network).__name__}")
        key = name or network.name
        with self._lock:
            if key in self._entries:
                entry = self._entries[key]
                entry.network = network
                entry.version += 1
                entry.description = description or entry.description
            else:
                self._entries[key] = ModelEntry(network=network,
                                                description=description)
            if default or self._default is None:
                self._default = key
        return key

    def unregister(self, name: str) -> None:
        """Remove a registered network."""
        with self._lock:
            if name not in self._entries:
                raise UnknownNetworkError(name, list(self._entries))
            del self._entries[name]
            if self._default == name:
                self._default = next(iter(self._entries), None)

    # ------------------------------------------------------------------ #

    def get(self, name: Optional[str] = None) -> HostingNetwork:
        """The hosting network registered under *name* (or the default)."""
        return self.entry(name).network

    def entry(self, name: Optional[str] = None) -> ModelEntry:
        """The full registry entry (network, version, description)."""
        with self._lock:
            key = name or self._default
            if key is None or key not in self._entries:
                raise UnknownNetworkError(str(key), list(self._entries))
            return self._entries[key]

    def version(self, name: Optional[str] = None) -> int:
        """Current model version of a registered network."""
        with self._lock:
            return self.entry(name).version

    def touch(self, name: Optional[str] = None) -> int:
        """Record that the model was updated in place (monitor refresh); bump version."""
        with self._lock:
            entry = self.entry(name)
            entry.version += 1
            return entry.version

    # ------------------------------------------------------------------ #

    @property
    def default_name(self) -> Optional[str]:
        """The name of the default hosting network, if any."""
        with self._lock:
            return self._default

    def names(self) -> List[str]:
        """All registered network names."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())
