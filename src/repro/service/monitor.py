"""A simulated monitoring service feeding the network model (§III component 1).

On a real deployment NETEMBED would consume a monitoring infrastructure such
as the PlanetLab all-sites-pings daemon, CoMon or Ganglia (the paper cites
all three).  None of those are available offline, so this module provides a
*simulated* monitor: it perturbs link delays around their baseline, moves
node load, and takes nodes down / brings them back up, pushing each refresh
into a :class:`~repro.service.model.NetworkModelRegistry`.

The simulation is intentionally simple (bounded multiplicative jitter and a
two-state up/down process); its purpose is to exercise the service-side code
paths — model versioning, re-embedding after a refresh, reservations against
a moving model — not to model Internet dynamics faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graphs.hosting import HostingNetwork
from repro.service.model import NetworkModelRegistry
from repro.utils.rng import RandomSource, as_rng

#: Node attribute the monitor uses to mark availability.
UP_ATTR = "up"


@dataclass
class MonitorConfig:
    """Tuning knobs of the simulated monitor."""

    #: Maximum relative change applied to avgDelay per refresh (e.g. 0.1 = ±10 %).
    delay_jitter: float = 0.10
    #: Probability that an up node goes down during one refresh.
    failure_probability: float = 0.01
    #: Probability that a down node comes back up during one refresh.
    recovery_probability: float = 0.5
    #: Relative change applied to node cpuLoad per refresh.
    load_jitter: float = 0.2

    def __post_init__(self) -> None:
        for name in ("delay_jitter", "failure_probability",
                     "recovery_probability", "load_jitter"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class SimulatedMonitor:
    """Periodically refreshes a registered hosting-network model.

    Parameters
    ----------
    registry:
        The model registry to push refreshes into.
    network_name:
        Which registered network this monitor maintains (``None`` = default).
    config:
        Jitter/failure parameters.
    rng:
        Randomness source; seed it for reproducible monitor traces.
    """

    def __init__(self, registry: NetworkModelRegistry,
                 network_name: Optional[str] = None,
                 config: Optional[MonitorConfig] = None,
                 rng: RandomSource = None) -> None:
        self._registry = registry
        self._network_name = network_name
        self._config = config or MonitorConfig()
        self._rng = as_rng(rng)
        self._baseline_delays: Dict[Tuple, float] = {}
        self._ticks = 0

    # ------------------------------------------------------------------ #

    @property
    def ticks(self) -> int:
        """Number of refresh cycles performed so far."""
        return self._ticks

    @property
    def network(self) -> HostingNetwork:
        """The hosting network this monitor maintains."""
        return self._registry.get(self._network_name)

    def tick(self) -> int:
        """Perform one refresh cycle and return the new model version.

        A refresh perturbs every link's average delay around its *baseline*
        (the value observed on the first tick, so repeated jitter does not
        drift unboundedly), perturbs node load, and applies the up/down
        process.  Down nodes are flagged with ``up=False`` rather than being
        removed, so queries can exclude them with a node constraint such as
        ``rNode.up == true``.
        """
        network = self.network
        config = self._config
        rand = self._rng

        for u, v in network.edges():
            key = (u, v)
            baseline = self._baseline_delays.get(key)
            if baseline is None:
                baseline = network.get_edge_attr(u, v, "avgDelay")
                if baseline is None:
                    continue
                self._baseline_delays[key] = baseline
            factor = 1.0 + rand.uniform(-config.delay_jitter, config.delay_jitter)
            new_avg = max(0.1, baseline * factor)
            min_delay = network.get_edge_attr(u, v, "minDelay", new_avg)
            max_delay = network.get_edge_attr(u, v, "maxDelay", new_avg)
            network.update_edge(u, v,
                                avgDelay=round(new_avg, 3),
                                minDelay=round(min(min_delay, new_avg), 3),
                                maxDelay=round(max(max_delay, new_avg), 3))

        for node in network.nodes():
            attrs = network.node_attrs(node)
            is_up = attrs.get(UP_ATTR)
            if is_up is None:
                # First refresh: make availability explicit so queries can
                # filter on ``rNode.up`` without tripping over missing attributes.
                is_up = True
                network.update_node(node, **{UP_ATTR: True})
            if is_up and rand.random() < config.failure_probability:
                network.update_node(node, **{UP_ATTR: False})
            elif not is_up and rand.random() < config.recovery_probability:
                network.update_node(node, **{UP_ATTR: True})
            load = attrs.get("cpuLoad")
            if load is not None:
                factor = 1.0 + rand.uniform(-config.load_jitter, config.load_jitter)
                network.update_node(node, cpuLoad=round(min(1.0, max(0.0, load * factor)), 3))

        self._ticks += 1
        return self._registry.touch(self._network_name)

    def run(self, cycles: int) -> int:
        """Run several refresh cycles; returns the final model version."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        version = self._registry.version(self._network_name)
        for _ in range(cycles):
            version = self.tick()
        return version

    # ------------------------------------------------------------------ #

    def down_nodes(self) -> List:
        """Nodes currently marked down."""
        network = self.network
        return [node for node in network.nodes()
                if network.get_node_attr(node, UP_ATTR, True) is False]
