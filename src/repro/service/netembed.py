"""The NETEMBED service facade (§III component 2).

:class:`NetEmbedService` ties the pieces together: the network model registry
(fed by monitors), the algorithm registry and its selection policy, the
version-aware plan cache (compiled :class:`~repro.core.plan.EmbeddingPlan`
artifacts reused across requests hitting the same model version), the
timeout / result classification policy, and the optional reservation system.
Applications interact with it through :class:`~repro.service.spec.QuerySpec`
/ :class:`~repro.service.spec.EmbeddingResponse`, the convenience
:meth:`NetEmbedService.embed` keyword interface, the streaming
:meth:`NetEmbedService.stream`, or — for many queries at once —
:meth:`NetEmbedService.submit_batch`, which fans specs out over a reusable
thread pool with independent per-request deadlines.

Algorithm auto-selection is delegated to a pluggable
:class:`~repro.api.selection.SelectionPolicy`; the default
:class:`~repro.api.selection.PaperSelectionPolicy` encodes the paper's own
guidance (§VII-E, §VIII) over the capabilities algorithms declare in the
:mod:`repro.api` registry, instead of an isinstance/if-chain.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Union

import repro.baselines  # noqa: F401 — registers the baselines for by-name use
from repro import faults
from repro.api.registry import AlgorithmInfo, AlgorithmRegistry, Capability, default_registry
from repro.api.request import SearchRequest
from repro.api.selection import PaperSelectionPolicy, SelectionPolicy
from repro.constraints import ConstraintExpression
from repro.core import EmbeddingAlgorithm
from repro.core.mapping import Mapping
from repro.core.plan import EmbeddingPlan, PlanCache, PlanInvalidatedError
from repro.core.repair import repair_mapping
from repro.graphs.graphml import read_graphml
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork
from repro.service.model import NetworkModelRegistry
from repro.service.monitor import MonitorConfig, SimulatedMonitor
from repro.service.reservation import ReservationError, ReservationManager
from repro.service.spec import EmbeddingResponse, QuerySpec, RepairResponse
from repro.utils.rng import RandomSource
from repro.utils.timing import Deadline, TimeoutExpired


class NetEmbedService:
    """A complete, in-process NETEMBED service instance.

    Parameters
    ----------
    default_timeout:
        Timeout (seconds) applied to queries that do not set their own; the
        paper's service always bounds searches so it can classify results as
        complete / partial / inconclusive.
    rng:
        Randomness source handed to seedable algorithms created by the
        service when a spec carries no per-request seed.
    selection_policy:
        How ``algorithm="auto"`` requests pick an algorithm; defaults to
        :class:`~repro.api.selection.PaperSelectionPolicy`.
    algorithms:
        The algorithm registry to resolve names against; defaults to the
        process-wide registry with all seven built-in algorithms.
    max_workers:
        Thread-pool size for :meth:`submit_batch` (``None`` = the
        :class:`~concurrent.futures.ThreadPoolExecutor` default).  The pool
        is created lazily on the first batch and reused afterwards.
    plan_cache_size:
        Capacity of the LRU :class:`~repro.core.plan.PlanCache` that
        :meth:`embed`/:meth:`submit`/:meth:`submit_batch`/:meth:`stream`
        route preparable algorithms through, keyed by (network name, model
        version, algorithm signature, request fingerprint).  Repeated
        queries against an unchanged model skip the whole compile stage; a
        monitor refresh (version bump) or any network mutation invalidates
        the affected plans automatically.
    parallel_workers:
        Size bound of the service's shared shard process pool (``None`` =
        ``os.cpu_count()``).  Specs carrying ``parallelism > 1`` — batch
        and streaming traffic alike — run their search stage on this one
        pool (created lazily, torn down by :meth:`shutdown`), so the
        process count stays bounded no matter how many requests ask for
        parallelism at once.
    """

    def __init__(self, default_timeout: float = 30.0, rng: RandomSource = None,
                 selection_policy: Optional[SelectionPolicy] = None,
                 algorithms: Optional[AlgorithmRegistry] = None,
                 max_workers: Optional[int] = None,
                 plan_cache_size: int = 128,
                 parallel_workers: Optional[int] = None) -> None:
        if default_timeout <= 0:
            raise ValueError(f"default_timeout must be positive, got {default_timeout}")
        self.registry = NetworkModelRegistry()
        self.reservations = ReservationManager()
        self.algorithms = algorithms if algorithms is not None else default_registry()
        self.selection_policy = (selection_policy if selection_policy is not None
                                 else PaperSelectionPolicy())
        self.plans = PlanCache(capacity=plan_cache_size)
        self._default_timeout = default_timeout
        self._rng = rng
        self._monitors: Dict[str, SimulatedMonitor] = {}
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._parallel_workers = parallel_workers
        self._process_pool = None
        self._process_pool_lock = threading.Lock()
        #: Default-configured instance per algorithm name, shared by the plan
        #: path (prepared artifacts are config- and seed-independent, and the
        #: search stage keeps all mutable state per run) — avoids building a
        #: throwaway instance on every warm-cache submit.
        self._plan_algorithms: Dict[str, EmbeddingAlgorithm] = {}

    # ------------------------------------------------------------------ #
    # Model management
    # ------------------------------------------------------------------ #

    def register_network(self, network: HostingNetwork, name: Optional[str] = None,
                         description: str = "", default: bool = False) -> str:
        """Register a hosting network model; returns the name it is stored under."""
        return self.registry.register(network, name=name, description=description,
                                      default=default)

    def register_network_from_graphml(self, path, name: Optional[str] = None,
                                      default: bool = False) -> str:
        """Load a hosting network from a GraphML file and register it."""
        network = read_graphml(path, cls=HostingNetwork, name=name)
        return self.register_network(network, name=name, default=default)

    def attach_monitor(self, network_name: Optional[str] = None,
                       config: Optional[MonitorConfig] = None,
                       rng: RandomSource = None) -> SimulatedMonitor:
        """Attach a simulated monitoring service to a registered network."""
        key = network_name or self.registry.default_name
        if key is None:
            raise ValueError("no hosting network registered yet")
        monitor = SimulatedMonitor(self.registry, network_name=key, config=config,
                                   rng=rng if rng is not None else self._rng)
        self._monitors[key] = monitor
        return monitor

    def monitor(self, network_name: Optional[str] = None) -> Optional[SimulatedMonitor]:
        """The monitor attached to a network, if any."""
        key = network_name or self.registry.default_name
        return self._monitors.get(key) if key else None

    def attach_wal(self, path, recover: bool = True,
                   fsync_batch: int = 1) -> Dict[str, object]:
        """Journal reservations to a WAL at *path*, replaying it first.

        When *recover* is true and the file already holds records, the
        ledger is rebuilt from them (the referenced hosting networks must
        already be registered) before journalling resumes — this is the
        server-startup replay path.  Returns the recovery report:
        ``{"path", "records", "applied", "active", "skipped"}`` (zeros for
        a fresh log).
        """
        from pathlib import Path

        from repro.service.wal import ReservationWAL

        report: Dict[str, object] = {
            "path": str(path), "records": 0,
            "applied": {"reserve": 0, "rebind": 0, "release": 0},
            "active": 0, "skipped": 0,
        }
        wal_path = Path(path)
        if recover and wal_path.exists() and wal_path.stat().st_size > 0:
            records, skipped = ReservationWAL.read(wal_path)
            replay = self.reservations.replay(records, self.registry.get)
            report.update(replay)
            report["skipped"] = skipped
        self.reservations.attach_wal(
            ReservationWAL(wal_path, fsync_batch=fsync_batch))
        return report

    # ------------------------------------------------------------------ #
    # Embedding
    # ------------------------------------------------------------------ #

    def submit(self, spec: QuerySpec) -> EmbeddingResponse:
        """Process a full :class:`QuerySpec` and return the response.

        Preparable algorithms (ECF/RWB/LNS) route through the plan cache:
        the compiled plan for this (network version, query, constraints) is
        fetched or built, then executed under the spec's own budget — a warm
        hit skips filter construction entirely.  Per-request seeds still
        apply; they are threaded into the execute stage, not baked into the
        cached plan.
        """
        faults.fire("service.submit")
        network_name, hosting, version = self._resolve_network(spec.network)
        info = self._algorithm_info(spec, hosting)
        request = spec.to_request(hosting, default_timeout=self._default_timeout)

        parallelism, shard_pool = self._shard_plan_for(spec)
        plan = (self._cached_plan(network_name, version, info, request)
                if spec.cache else None)
        result = None
        if plan is not None:
            try:
                result = plan.execute(budget=request.budget,
                                      rng=self._execution_rng(info, spec),
                                      parallelism=parallelism, pool=shard_pool)
                algorithm_used = plan.algorithm.name
            except PlanInvalidatedError:
                # A monitor tick landed between the cache fetch and the
                # execute; degrade to the one-shot path against the live
                # model instead of surfacing the internal staleness signal.
                plan = None
        if plan is None:
            algorithm = self._instantiate(info, spec)
            result = algorithm.request(request, pool=shard_pool)
            algorithm_used = algorithm.name

        reservation_id = None
        if spec.reserve and result.found:
            # The ticket carries the embedding problem (coerced constraint
            # objects from the request), so it can be re-validated and
            # repaired against the drifting model later.
            reservation = self.reservations.reserve(
                hosting, network_name, result.first,
                query=spec.query, constraint=request.constraint,
                node_constraint=request.node_constraint)
            reservation_id = reservation.reservation_id

        return EmbeddingResponse(
            spec=spec,
            result=result,
            network_name=network_name,
            algorithm_used=algorithm_used,
            reservation_id=reservation_id,
        )

    def prepare(self, spec: QuerySpec) -> EmbeddingPlan:
        """Compile (or fetch from the plan cache) the plan for *spec*.

        Lets callers warm the cache ahead of traffic, or hold a plan and
        drive :meth:`~repro.core.plan.EmbeddingPlan.execute` themselves with
        per-run budgets.  Algorithms without a separable prepare stage still
        return a working plan — it just re-runs the full search per execute
        and is not cached.  A spec carrying a seed gets a private plan bound
        to a seeded instance (not cached — cached plans are seed-agnostic;
        their per-request seeds arrive via ``execute(rng=...)``), so
        ``prepare(spec).execute()`` reproduces ``submit(spec)``.
        """
        network_name, hosting, version = self._resolve_network(spec.network)
        info = self._algorithm_info(spec, hosting)
        request = spec.to_request(hosting, default_timeout=self._default_timeout)
        if spec.seed is None or not info.has(Capability.SEEDABLE):
            plan = self._cached_plan(network_name, version, info, request,
                                     bounded=False)
            if plan is not None:
                return plan
        return self._instantiate(info, spec).prepare(request)

    def embed(self, query: QueryNetwork,
              constraint: Optional[Union[str, ConstraintExpression]] = None,
              node_constraint: Optional[Union[str, ConstraintExpression]] = None,
              algorithm: str = "auto", timeout: Optional[float] = None,
              max_results: Optional[int] = None, network: Optional[str] = None,
              reserve: bool = False, seed: Optional[int] = None,
              parallelism: Optional[int] = None) -> EmbeddingResponse:
        """Keyword-style convenience wrapper around :meth:`submit`."""
        spec = QuerySpec(query=query, constraint=constraint,
                         node_constraint=node_constraint, algorithm=algorithm,
                         timeout=timeout, max_results=max_results,
                         network=network, reserve=reserve, seed=seed,
                         parallelism=parallelism)
        return self.submit(spec)

    def stream(self, spec: QuerySpec, buffer_size: int = 1) -> Iterator[Mapping]:
        """Lazily yield the embeddings for *spec* as the search finds them.

        Unlike :meth:`submit` this never materialises the full result list;
        closing the generator aborts the underlying search.  Reservations are
        not supported in streaming mode (there is no "final" result to
        reserve against).
        """
        if spec.reserve:
            raise ValueError("streaming does not support reserve=True; "
                             "use submit() and reserve the response instead")
        network_name, hosting, version = self._resolve_network(spec.network)
        info = self._algorithm_info(spec, hosting)
        request = spec.to_request(hosting, default_timeout=self._default_timeout)
        parallelism, shard_pool = self._shard_plan_for(spec)
        plan = (self._cached_plan(network_name, version, info, request)
                if spec.cache else None)
        if plan is not None:
            return self._stream_plan_with_fallback(plan, request, info, spec,
                                                   buffer_size, parallelism,
                                                   shard_pool)
        algorithm = self._instantiate(info, spec)
        return algorithm.stream(request, buffer_size=buffer_size,
                                pool=shard_pool)

    def _stream_plan_with_fallback(self, plan: EmbeddingPlan,
                                   request: SearchRequest, info: AlgorithmInfo,
                                   spec: QuerySpec, buffer_size: int,
                                   parallelism: Optional[int],
                                   shard_pool) -> Iterator[Mapping]:
        """Stream from *plan*, degrading to the one-shot path on staleness.

        The staleness check runs when the lazily-started search begins, which
        may be long after the generator was created — a monitor tick in that
        window must not surface :class:`PlanInvalidatedError` to the
        consumer.  The check fires before any mapping is produced, so the
        fallback never duplicates output.
        """
        try:
            yield from plan.stream(budget=request.budget,
                                   buffer_size=buffer_size,
                                   rng=self._execution_rng(info, spec),
                                   parallelism=parallelism, pool=shard_pool)
            return
        except PlanInvalidatedError:
            pass    # raced a mutation: stream one-shot against the live model
        algorithm = self._instantiate(info, spec)
        yield from algorithm.stream(request, buffer_size=buffer_size,
                                    pool=shard_pool)

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #

    def submit_batch(self, specs: Iterable[QuerySpec],
                     return_exceptions: bool = False
                     ) -> List[Union[EmbeddingResponse, BaseException]]:
        """Process many specs concurrently; responses come back in input order.

        Each spec keeps its own deadline (its ``timeout`` or the service
        default, counted from when its search *starts*), so one
        slow or infeasible request cannot eat the budget of the others.

        Parameters
        ----------
        specs:
            The query specs to process.
        return_exceptions:
            ``False`` (default): the first failing spec re-raises after all
            submitted work finishes.  ``True``: failures are returned in
            their spec's slot instead (like ``asyncio.gather``), so one bad
            spec — e.g. naming an unregistered network — cannot void the
            whole batch.
        """
        specs = list(specs)
        futures: List[Future] = [self._ensure_executor().submit(self.submit, spec)
                                 for spec in specs]
        results: List[Union[EmbeddingResponse, BaseException]] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:        # noqa: BLE001 — collected per-slot
                if not return_exceptions and first_error is None:
                    first_error = exc
                results.append(exc)
        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    @property
    def executor(self) -> Optional[ThreadPoolExecutor]:
        """The batch thread pool, if one has been created yet."""
        return self._executor

    @property
    def process_pool(self):
        """The shared shard process pool, if one has been created yet."""
        return self._process_pool

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="netembed-batch")
            return self._executor

    def _ensure_process_pool(self):
        """The shared shard pool, created lazily on the first parallel spec.

        A pool whose worker died (OOM-killed, crashed) is unusable forever —
        every submit raises ``BrokenProcessPool`` — so it is discarded and
        replaced here: the spec that witnessed the breakage degrades to
        serial inside the parallel engine, and the next parallel spec gets
        a fresh pool instead of a permanently dead one.
        """
        from repro.core.parallel import make_pool

        with self._process_pool_lock:
            pool = self._process_pool
            if pool is not None and getattr(pool, "_broken", False):
                pool.shutdown(wait=False)
                pool = self._process_pool = None
            if pool is None:
                pool = self._process_pool = make_pool(self._parallel_workers)
            return pool

    def _shard_plan_for(self, spec: QuerySpec):
        """``(parallelism, pool)`` for one spec's search stage.

        Serial specs get ``(1, None)`` — an explicit ``1`` so a cached plan
        prepared from some *other* spec's parallel request cannot leak its
        setting into this run.  Parallel specs share the service's one
        bounded pool: concurrent batch workers queue their shards onto the
        same processes instead of each spawning their own.
        """
        if spec.parallelism is None or spec.parallelism <= 1:
            return 1, None
        return spec.parallelism, self._ensure_process_pool()

    def shutdown(self, wait: bool = True) -> None:
        """Tear down the batch thread pool and the shard process pool."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)
        with self._process_pool_lock:
            process_pool, self._process_pool = self._process_pool, None
        if process_pool is not None:
            process_pool.shutdown(wait=wait)
        wal = self.reservations.wal
        if wal is not None:
            wal.close()

    def __enter__(self) -> "NetEmbedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """One JSON-serialisable snapshot of every service-level counter.

        Folds together the statistics that previously had to be collected
        from four places — the plan cache, the reservation ledger, each
        registered model's mutation journal, and the execution pools — so a
        metrics endpoint (or ``repro plan --json``) can serve a single
        consistent document.  Values are plain ints/strings/bools; the
        snapshot never holds references into live service state.
        """
        networks = {}
        for name in self.registry.names():
            entry = self.registry.entry(name)
            network = entry.network
            journal = network.mutation_journal
            monitor = self._monitors.get(name)
            networks[name] = {
                "version": entry.version,
                "nodes": network.num_nodes,
                "edges": network.num_edges,
                "mutation_epoch": network.mutation_count,
                "journal": {
                    "entries": len(journal),
                    "capacity": journal.capacity,
                    "floor_epoch": journal.floor_epoch,
                },
                "monitor_ticks": monitor.ticks if monitor is not None else None,
            }
        executor = self._executor
        process_pool = self._process_pool
        from repro.core.parallel import default_supervisor
        wal = self.reservations.wal
        injector = faults.active()
        return {
            "default_timeout": self._default_timeout,
            "plan_cache": self.plans.stats(),
            "reservations": self.reservations.stats(),
            "networks": networks,
            "pools": {
                "batch_threads": {
                    "created": executor is not None,
                    "max_workers": getattr(executor, "_max_workers", None),
                },
                "shard_processes": {
                    "created": process_pool is not None,
                    "max_workers": getattr(process_pool, "_max_workers", None),
                },
                "supervisor": default_supervisor().stats(),
            },
            "wal": ({"path": str(wal.path), "fsync_batch": wal.fsync_batch}
                    if wal is not None else None),
            "faults": injector.stats() if injector is not None else None,
        }

    # ------------------------------------------------------------------ #

    def release(self, reservation_id: str) -> None:
        """Release a reservation made by an earlier embed(reserve=True) call."""
        reservation = self.reservations.get(reservation_id)
        network = self.registry.get(reservation.network_name)
        self.reservations.release(reservation_id, network)

    def repair(self, reservation_id: str,
               timeout: Optional[float] = None) -> RepairResponse:
        """Re-validate a reserved embedding and heal it against the live model.

        The self-healing counterpart to monitor churn: the reservation's
        mapping is checked against the *current* network attributes, and if
        anything broke — a link left its delay window, a host went down or
        failed the node constraint — only the violated assignments are
        released and re-placed by the LNS-style local search of
        :mod:`repro.core.repair`, with every still-valid placement pinned.
        On success the reservation is atomically rebound: capacity moves
        from the abandoned hosts to the newly acquired ones (hosts the
        repair keeps transfer nothing).

        New hosts are only considered while they have spare reservation
        capacity for the moving node's demand, so concurrent reservations
        stay consistent.

        Parameters
        ----------
        reservation_id:
            A ticket from an earlier ``submit(reserve=True)``.  Tickets
            reserved without their query context (direct
            :meth:`ReservationManager.reserve` calls) cannot be repaired.
        timeout:
            Wall-clock budget in seconds for the repair search (``None`` =
            the service default).

        Returns
        -------
        RepairResponse
            ``status`` is ``intact`` / ``repaired`` / ``failed`` /
            ``timeout``; on ``repaired`` the reservation already holds the
            new mapping.
        """
        reservation = self.reservations.get(reservation_id)
        if not reservation.active:
            raise ReservationError(
                f"reservation {reservation_id!r} is no longer active")
        if reservation.query is None:
            raise ReservationError(
                f"reservation {reservation_id!r} carries no query context; "
                f"reserve through NetEmbedService.submit to enable repair")
        network = self.registry.get(reservation.network_name)
        demands = reservation.demands
        attribute = reservation.capacity_attribute
        #: Demand currently charged on each held host by this reservation;
        #: a rebind frees it if the occupant moves away, so it counts toward
        #: what another query node could net out on that host.
        charged = {}
        for query_node, host in reservation.mapping.items():
            charged[host] = charged.get(host, 0.0) + demands.get(query_node, 1.0)

        def has_spare_capacity(query_node, host) -> bool:
            demand = demands.get(query_node, 1.0)
            # An active reservation implies every held host declared
            # capacity (reserve() enforces it), so a newly acquired host
            # must declare — and have — enough spare to be chargeable.
            available = network.available_capacity(host, attribute)
            if available is None:
                return False
            # Optimistic upper bound for held hosts (their occupant may or
            # may not move); rebind's exact net check is the backstop.
            return available + charged.get(host, 0.0) + 1e-12 >= demand

        result = repair_mapping(
            reservation.query, network, reservation.mapping,
            constraint=reservation.constraint,
            node_constraint=reservation.node_constraint,
            timeout=timeout if timeout is not None else self._default_timeout,
            candidate_ok=has_spare_capacity)

        error = None
        if result.status == "repaired" and result.moved:
            try:
                self.reservations.rebind(reservation_id, network, result.mapping)
            except ReservationError as exc:
                # Lost a capacity race between the search and the rebind;
                # the reservation keeps its original (broken) mapping and
                # the caller sees why.
                error = str(exc)
        return RepairResponse(reservation_id=reservation_id,
                              network_name=reservation.network_name,
                              result=result, error=error)

    # ------------------------------------------------------------------ #
    # Resolution helpers
    # ------------------------------------------------------------------ #

    def _resolve_network(self, name: Optional[str]) -> tuple:
        """Resolve a spec's network name to ``(name, HostingNetwork, version)``.

        Raises :class:`UnknownNetworkError` (a LookupError, never a bare
        KeyError) whose message lists the registered names.

        The version is read *before* the network object, from one registry
        entry.  If a concurrent re-register replaces the entry between the
        two reads, the new network pairs with the old version — the plan
        compiled from it lands under a key no future lookup uses (they read
        the bumped version) and is merely recompiled, instead of the reverse
        anomaly where the *old* network's plan is cached under the *new*
        version key and served forever.
        """
        network_name = name or self.registry.default_name
        if network_name is None:
            raise ValueError("no hosting network registered; call register_network first")
        entry = self.registry.entry(network_name)
        version = entry.version
        return network_name, entry.network, version

    def _algorithm_info(self, spec: QuerySpec, hosting: HostingNetwork
                        ) -> AlgorithmInfo:
        """The registry entry for *spec* (auto-selection or by name)."""
        if spec.algorithm.lower() == "auto":
            return self.selection_policy.select(
                spec.query, hosting, max_results=spec.max_results,
                registry=self.algorithms)
        return self.algorithms.get(spec.algorithm)

    def _instantiate(self, info: AlgorithmInfo, spec: QuerySpec
                     ) -> EmbeddingAlgorithm:
        """Build an algorithm instance for the direct (non-plan) path."""
        kwargs = {}
        if info.has(Capability.SEEDABLE):
            kwargs["rng"] = spec.seed if spec.seed is not None else self._rng
        return info.create(**kwargs)

    def _execution_rng(self, info: AlgorithmInfo, spec: QuerySpec):
        """The per-run randomness source threaded into a plan execute."""
        if not info.has(Capability.SEEDABLE):
            return None
        return spec.seed if spec.seed is not None else self._rng

    def _cached_plan(self, network_name: str, version: int,
                     info: AlgorithmInfo, request: SearchRequest,
                     bounded: bool = True) -> Optional[EmbeddingPlan]:
        """The cached (or freshly compiled and cached) plan for *request*.

        Returns ``None`` for algorithms without a separable prepare stage —
        caching their plans would only pin memory without amortising
        anything.  Seedable-but-preparable algorithms (RWB) are cached
        seedless: the plan's artifacts are seed-independent and the random
        stream arrives per execute.

        With *bounded* (the submit/stream path) a cold compile runs under
        the request's own timeout; if it expires, ``None`` is returned and
        the caller falls back to the one-shot ``request()`` path, which
        re-runs under a fresh deadline and classifies the timeout properly
        (worst case one spec costs two timeout budgets, never unbounded).
        ``bounded=False`` (explicit cache warming) compiles to completion.

        On a miss caused by model churn (a monitor tick bumped the version,
        stranding the previous plan under the old key), the superseded plan
        is pulled back via :meth:`~repro.core.plan.PlanCache.pop_predecessor`
        and offered to the incremental patch path first: an attribute-only
        delta is replayed onto the compiled artifacts instead of recompiling
        them, and the cache counts the outcome under its ``patched`` /
        ``recompiled`` statistics.

        Two racing workers may both miss and compile the same plan; the
        second ``put`` simply replaces the first — both plans are valid for
        the key, so the race is benign.
        """
        algorithm = self._plan_algorithms.get(info.name)
        if algorithm is None:
            algorithm = self._plan_algorithms.setdefault(info.name,
                                                         info.create())
        if not algorithm.supports_prepare:
            return None
        key = (network_name, version,
               algorithm.plan_signature(), request.fingerprint())
        plan = self.plans.get(key)
        if plan is not None:
            return plan
        refresh_mode = None
        predecessor = self.plans.pop_predecessor(key)
        if predecessor is not None:
            refresh_mode = "recompiled"
            # A predecessor compiled from a *replaced* network object (a
            # re-register) must not be patched — its artifacts describe the
            # old infrastructure; only same-object (monitor-churn) plans are.
            if predecessor.request.hosting is request.hosting:
                patched = predecessor.try_patch()
                if patched is not None and not patched.stale:
                    self.plans.put(key, patched, refresh_mode="patched")
                    return patched
        try:
            plan = algorithm.prepare(
                request,
                deadline=Deadline(request.budget.timeout) if bounded
                else None)
        except TimeoutExpired:
            return None
        self.plans.put(key, plan, refresh_mode=refresh_mode)
        return plan
