"""The NETEMBED service facade (§III component 2).

:class:`NetEmbedService` ties the pieces together: the network model registry
(fed by monitors), the algorithm registry and its selection policy, the
timeout / result classification policy, and the optional reservation system.
Applications interact with it through :class:`~repro.service.spec.QuerySpec`
/ :class:`~repro.service.spec.EmbeddingResponse`, the convenience
:meth:`NetEmbedService.embed` keyword interface, the streaming
:meth:`NetEmbedService.stream`, or — for many queries at once —
:meth:`NetEmbedService.submit_batch`, which fans specs out over a reusable
thread pool with independent per-request deadlines.

Algorithm auto-selection is delegated to a pluggable
:class:`~repro.api.selection.SelectionPolicy`; the default
:class:`~repro.api.selection.PaperSelectionPolicy` encodes the paper's own
guidance (§VII-E, §VIII) over the capabilities algorithms declare in the
:mod:`repro.api` registry, instead of an isinstance/if-chain.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

import repro.baselines  # noqa: F401 — registers the baselines for by-name use
from repro.api.registry import AlgorithmRegistry, Capability, default_registry
from repro.api.selection import PaperSelectionPolicy, SelectionPolicy
from repro.constraints import ConstraintExpression
from repro.core import EmbeddingAlgorithm
from repro.core.mapping import Mapping
from repro.core.result import EmbeddingResult
from repro.graphs.graphml import read_graphml
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork
from repro.service.model import NetworkModelRegistry, UnknownNetworkError
from repro.service.monitor import MonitorConfig, SimulatedMonitor
from repro.service.reservation import ReservationManager
from repro.service.spec import EmbeddingResponse, QuerySpec
from repro.utils.rng import RandomSource


class NetEmbedService:
    """A complete, in-process NETEMBED service instance.

    Parameters
    ----------
    default_timeout:
        Timeout (seconds) applied to queries that do not set their own; the
        paper's service always bounds searches so it can classify results as
        complete / partial / inconclusive.
    rng:
        Randomness source handed to seedable algorithms created by the
        service when a spec carries no per-request seed.
    selection_policy:
        How ``algorithm="auto"`` requests pick an algorithm; defaults to
        :class:`~repro.api.selection.PaperSelectionPolicy`.
    algorithms:
        The algorithm registry to resolve names against; defaults to the
        process-wide registry with all seven built-in algorithms.
    max_workers:
        Thread-pool size for :meth:`submit_batch` (``None`` = the
        :class:`~concurrent.futures.ThreadPoolExecutor` default).  The pool
        is created lazily on the first batch and reused afterwards.
    """

    def __init__(self, default_timeout: float = 30.0, rng: RandomSource = None,
                 selection_policy: Optional[SelectionPolicy] = None,
                 algorithms: Optional[AlgorithmRegistry] = None,
                 max_workers: Optional[int] = None) -> None:
        if default_timeout <= 0:
            raise ValueError(f"default_timeout must be positive, got {default_timeout}")
        self.registry = NetworkModelRegistry()
        self.reservations = ReservationManager()
        self.algorithms = algorithms if algorithms is not None else default_registry()
        self.selection_policy = (selection_policy if selection_policy is not None
                                 else PaperSelectionPolicy())
        self._default_timeout = default_timeout
        self._rng = rng
        self._monitors: Dict[str, SimulatedMonitor] = {}
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Model management
    # ------------------------------------------------------------------ #

    def register_network(self, network: HostingNetwork, name: Optional[str] = None,
                         description: str = "", default: bool = False) -> str:
        """Register a hosting network model; returns the name it is stored under."""
        return self.registry.register(network, name=name, description=description,
                                      default=default)

    def register_network_from_graphml(self, path, name: Optional[str] = None,
                                      default: bool = False) -> str:
        """Load a hosting network from a GraphML file and register it."""
        network = read_graphml(path, cls=HostingNetwork, name=name)
        return self.register_network(network, name=name, default=default)

    def attach_monitor(self, network_name: Optional[str] = None,
                       config: Optional[MonitorConfig] = None,
                       rng: RandomSource = None) -> SimulatedMonitor:
        """Attach a simulated monitoring service to a registered network."""
        key = network_name or self.registry.default_name
        if key is None:
            raise ValueError("no hosting network registered yet")
        monitor = SimulatedMonitor(self.registry, network_name=key, config=config,
                                   rng=rng if rng is not None else self._rng)
        self._monitors[key] = monitor
        return monitor

    def monitor(self, network_name: Optional[str] = None) -> Optional[SimulatedMonitor]:
        """The monitor attached to a network, if any."""
        key = network_name or self.registry.default_name
        return self._monitors.get(key) if key else None

    # ------------------------------------------------------------------ #
    # Embedding
    # ------------------------------------------------------------------ #

    def submit(self, spec: QuerySpec) -> EmbeddingResponse:
        """Process a full :class:`QuerySpec` and return the response."""
        network_name, hosting = self._resolve_network(spec.network)
        algorithm = self._select_algorithm(spec, hosting)
        request = spec.to_request(hosting, default_timeout=self._default_timeout)

        result = algorithm.request(request)

        reservation_id = None
        if spec.reserve and result.found:
            reservation = self.reservations.reserve(hosting, network_name, result.first)
            reservation_id = reservation.reservation_id

        return EmbeddingResponse(
            spec=spec,
            result=result,
            network_name=network_name,
            algorithm_used=algorithm.name,
            reservation_id=reservation_id,
        )

    def embed(self, query: QueryNetwork,
              constraint: Optional[Union[str, ConstraintExpression]] = None,
              node_constraint: Optional[Union[str, ConstraintExpression]] = None,
              algorithm: str = "auto", timeout: Optional[float] = None,
              max_results: Optional[int] = None, network: Optional[str] = None,
              reserve: bool = False, seed: Optional[int] = None) -> EmbeddingResponse:
        """Keyword-style convenience wrapper around :meth:`submit`."""
        spec = QuerySpec(query=query, constraint=constraint,
                         node_constraint=node_constraint, algorithm=algorithm,
                         timeout=timeout, max_results=max_results,
                         network=network, reserve=reserve, seed=seed)
        return self.submit(spec)

    def stream(self, spec: QuerySpec, buffer_size: int = 1) -> Iterator[Mapping]:
        """Lazily yield the embeddings for *spec* as the search finds them.

        Unlike :meth:`submit` this never materialises the full result list;
        closing the generator aborts the underlying search.  Reservations are
        not supported in streaming mode (there is no "final" result to
        reserve against).
        """
        if spec.reserve:
            raise ValueError("streaming does not support reserve=True; "
                             "use submit() and reserve the response instead")
        _name, hosting = self._resolve_network(spec.network)
        algorithm = self._select_algorithm(spec, hosting)
        request = spec.to_request(hosting, default_timeout=self._default_timeout)
        return algorithm.stream(request, buffer_size=buffer_size)

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #

    def submit_batch(self, specs: Iterable[QuerySpec],
                     return_exceptions: bool = False
                     ) -> List[Union[EmbeddingResponse, BaseException]]:
        """Process many specs concurrently; responses come back in input order.

        Each spec keeps its own deadline (its ``timeout`` or the service
        default, counted from when its search *starts*), so one
        slow or infeasible request cannot eat the budget of the others.

        Parameters
        ----------
        specs:
            The query specs to process.
        return_exceptions:
            ``False`` (default): the first failing spec re-raises after all
            submitted work finishes.  ``True``: failures are returned in
            their spec's slot instead (like ``asyncio.gather``), so one bad
            spec — e.g. naming an unregistered network — cannot void the
            whole batch.
        """
        specs = list(specs)
        futures: List[Future] = [self._ensure_executor().submit(self.submit, spec)
                                 for spec in specs]
        results: List[Union[EmbeddingResponse, BaseException]] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:        # noqa: BLE001 — collected per-slot
                if not return_exceptions and first_error is None:
                    first_error = exc
                results.append(exc)
        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    @property
    def executor(self) -> Optional[ThreadPoolExecutor]:
        """The batch thread pool, if one has been created yet."""
        return self._executor

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="netembed-batch")
            return self._executor

    def shutdown(self, wait: bool = True) -> None:
        """Tear down the batch thread pool (no-op if none was created)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "NetEmbedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #

    def release(self, reservation_id: str) -> None:
        """Release a reservation made by an earlier embed(reserve=True) call."""
        reservation = self.reservations.get(reservation_id)
        network = self.registry.get(reservation.network_name)
        self.reservations.release(reservation_id, network)

    # ------------------------------------------------------------------ #
    # Resolution helpers
    # ------------------------------------------------------------------ #

    def _resolve_network(self, name: Optional[str]) -> tuple:
        """Resolve a spec's network name to ``(name, HostingNetwork)``.

        Raises :class:`UnknownNetworkError` (a LookupError, never a bare
        KeyError) whose message lists the registered names.
        """
        network_name = name or self.registry.default_name
        if network_name is None:
            raise ValueError("no hosting network registered; call register_network first")
        return network_name, self.registry.get(network_name)

    def _select_algorithm(self, spec: QuerySpec, hosting: HostingNetwork
                          ) -> EmbeddingAlgorithm:
        """Instantiate the algorithm for *spec* via the registry/policy."""
        if spec.algorithm.lower() == "auto":
            info = self.selection_policy.select(
                spec.query, hosting, max_results=spec.max_results,
                registry=self.algorithms)
        else:
            info = self.algorithms.get(spec.algorithm)
        kwargs = {}
        if info.has(Capability.SEEDABLE):
            kwargs["rng"] = spec.seed if spec.seed is not None else self._rng
        return info.create(**kwargs)
