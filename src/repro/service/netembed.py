"""The NETEMBED service facade (§III component 2).

:class:`NetEmbedService` ties the pieces together: the network model registry
(fed by monitors), the three mapping algorithms, the timeout / result
classification policy, and the optional reservation system.  Applications
interact with it through :class:`~repro.service.spec.QuerySpec` /
:class:`~repro.service.spec.EmbeddingResponse`, or through the convenience
:meth:`NetEmbedService.embed` keyword interface.

Algorithm auto-selection follows the paper's own guidance (§VII-E, §VIII):
ECF/RWB "perform well in situations where the query is tightly constrained
and when the network density is low", whereas LNS "performs much better with
less constrained queries and higher density networks" and is the best choice
for regular structures when only the first match is needed.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.constraints import ConstraintExpression
from repro.core import ECF, LNS, RWB, EmbeddingAlgorithm
from repro.core.result import EmbeddingResult
from repro.graphs.graphml import read_graphml
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork
from repro.service.model import NetworkModelRegistry
from repro.service.monitor import MonitorConfig, SimulatedMonitor
from repro.service.reservation import ReservationManager
from repro.service.spec import EmbeddingResponse, QuerySpec
from repro.utils.rng import RandomSource


class NetEmbedService:
    """A complete, in-process NETEMBED service instance.

    Parameters
    ----------
    default_timeout:
        Timeout (seconds) applied to queries that do not set their own; the
        paper's service always bounds searches so it can classify results as
        complete / partial / inconclusive.
    rng:
        Randomness source handed to RWB instances created by the service.
    """

    def __init__(self, default_timeout: float = 30.0, rng: RandomSource = None) -> None:
        if default_timeout <= 0:
            raise ValueError(f"default_timeout must be positive, got {default_timeout}")
        self.registry = NetworkModelRegistry()
        self.reservations = ReservationManager()
        self._default_timeout = default_timeout
        self._rng = rng
        self._monitors: Dict[str, SimulatedMonitor] = {}

    # ------------------------------------------------------------------ #
    # Model management
    # ------------------------------------------------------------------ #

    def register_network(self, network: HostingNetwork, name: Optional[str] = None,
                         description: str = "", default: bool = False) -> str:
        """Register a hosting network model; returns the name it is stored under."""
        return self.registry.register(network, name=name, description=description,
                                      default=default)

    def register_network_from_graphml(self, path, name: Optional[str] = None,
                                      default: bool = False) -> str:
        """Load a hosting network from a GraphML file and register it."""
        network = read_graphml(path, cls=HostingNetwork, name=name)
        return self.register_network(network, name=name, default=default)

    def attach_monitor(self, network_name: Optional[str] = None,
                       config: Optional[MonitorConfig] = None,
                       rng: RandomSource = None) -> SimulatedMonitor:
        """Attach a simulated monitoring service to a registered network."""
        key = network_name or self.registry.default_name
        if key is None:
            raise ValueError("no hosting network registered yet")
        monitor = SimulatedMonitor(self.registry, network_name=key, config=config,
                                   rng=rng if rng is not None else self._rng)
        self._monitors[key] = monitor
        return monitor

    def monitor(self, network_name: Optional[str] = None) -> Optional[SimulatedMonitor]:
        """The monitor attached to a network, if any."""
        key = network_name or self.registry.default_name
        return self._monitors.get(key) if key else None

    # ------------------------------------------------------------------ #
    # Embedding
    # ------------------------------------------------------------------ #

    def submit(self, spec: QuerySpec) -> EmbeddingResponse:
        """Process a full :class:`QuerySpec` and return the response."""
        network_name = spec.network or self.registry.default_name
        if network_name is None:
            raise ValueError("no hosting network registered; call register_network first")
        hosting = self.registry.get(network_name)

        algorithm = self._select_algorithm(spec, hosting)
        timeout = spec.timeout if spec.timeout is not None else self._default_timeout

        result = algorithm.search(
            spec.query, hosting,
            constraint=spec.constraint,
            node_constraint=spec.node_constraint,
            timeout=timeout,
            max_results=spec.max_results,
        )

        reservation_id = None
        if spec.reserve and result.found:
            reservation = self.reservations.reserve(hosting, network_name, result.first)
            reservation_id = reservation.reservation_id

        return EmbeddingResponse(
            spec=spec,
            result=result,
            network_name=network_name,
            algorithm_used=algorithm.name,
            reservation_id=reservation_id,
        )

    def embed(self, query: QueryNetwork,
              constraint: Optional[Union[str, ConstraintExpression]] = None,
              node_constraint: Optional[Union[str, ConstraintExpression]] = None,
              algorithm: str = "auto", timeout: Optional[float] = None,
              max_results: Optional[int] = None, network: Optional[str] = None,
              reserve: bool = False) -> EmbeddingResponse:
        """Keyword-style convenience wrapper around :meth:`submit`."""
        spec = QuerySpec(query=query, constraint=constraint,
                         node_constraint=node_constraint, algorithm=algorithm,
                         timeout=timeout, max_results=max_results,
                         network=network, reserve=reserve)
        return self.submit(spec)

    def release(self, reservation_id: str) -> None:
        """Release a reservation made by an earlier embed(reserve=True) call."""
        reservation = self.reservations.get(reservation_id)
        network = self.registry.get(reservation.network_name)
        self.reservations.release(reservation_id, network)

    # ------------------------------------------------------------------ #
    # Algorithm selection
    # ------------------------------------------------------------------ #

    def _select_algorithm(self, spec: QuerySpec, hosting: HostingNetwork
                          ) -> EmbeddingAlgorithm:
        choice = spec.algorithm.lower()
        if choice == "ecf":
            return ECF()
        if choice == "rwb":
            return RWB(rng=self._rng)
        if choice == "lns":
            return LNS()
        return self._auto_algorithm(spec, hosting)

    def _auto_algorithm(self, spec: QuerySpec, hosting: HostingNetwork
                        ) -> EmbeddingAlgorithm:
        """Pick an algorithm following the paper's conclusions.

        * Only the first match wanted, on a dense hosting network or a regular
          query → LNS (its strength per Figs. 13–14).
        * All matches wanted → ECF (complete enumeration is its purpose).
        * Otherwise → RWB for a single match on sparse, constrained problems.
        """
        wants_single = spec.max_results == 1
        density = hosting.density()
        regular_query = _looks_regular(spec.query)

        if wants_single and (density > 0.3 or regular_query):
            return LNS()
        if spec.max_results is None:
            return ECF()
        if wants_single:
            return RWB(rng=self._rng)
        return ECF()


def _looks_regular(query: QueryNetwork) -> bool:
    """Heuristic regularity check: all node degrees equal (ring/clique/torus-like)."""
    if query.num_nodes <= 2:
        return True
    degrees = {query.degree(node) for node in query.nodes()}
    return len(degrees) == 1
