"""Resource reservations over accepted embeddings (§III component 3).

"Optionally, if a resource reservation system is in place, applications would
allocate the selected mapping and the network model would be adjusted
accordingly."  This module implements that optional component:

* each hosting node may declare a capacity (``capacity`` /
  ``available_capacity`` attributes, see
  :meth:`~repro.graphs.hosting.HostingNetwork.set_capacity`);
* reserving an embedding consumes one unit (or an explicit per-query-node
  demand) of each mapped hosting node's capacity and records a ticket;
* releasing the ticket returns the capacity;
* a node-level constraint (:data:`CAPACITY_NODE_CONSTRAINT`) lets subsequent
  queries restrict themselves to hosts with spare capacity, which is how the
  reservation system "adjusts the network model".
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.constraints import ConstraintExpression
from repro.core.mapping import Mapping
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import NodeId
from repro.graphs.query import QueryNetwork

#: Node constraint restricting candidates to hosts with at least the demanded
#: capacity left.  Query nodes declare their demand in a ``demand`` attribute
#: (defaulting to 1 via isBoundTo-free arithmetic is not possible, so queries
#: without a demand attribute should use `with_default_demand`).
CAPACITY_NODE_CONSTRAINT = ConstraintExpression(
    "rNode.available_capacity >= vNode.demand")


class ReservationError(Exception):
    """Raised when a reservation cannot be made or released."""


@dataclass
class Reservation:
    """A granted reservation: which embedding holds which capacity.

    When the reserving caller supplies the originating *query* and its
    constraint expressions, the ticket carries enough context to be
    re-validated — and repaired — against a drifting network model later
    (see :meth:`NetEmbedService.repair <repro.service.netembed.NetEmbedService.repair>`).
    """

    reservation_id: str
    network_name: str
    mapping: Mapping
    demands: Dict[NodeId, float]
    active: bool = True
    #: The embedding problem this reservation answers (optional; required
    #: for repair).
    query: Optional["QueryNetwork"] = None
    constraint: Optional[ConstraintExpression] = None
    node_constraint: Optional[ConstraintExpression] = None
    #: Which capacity attribute the demands were charged against.
    capacity_attribute: str = "capacity"
    #: How many times :meth:`ReservationManager.rebind` moved this ticket.
    rebinds: int = 0


class ReservationManager:
    """Tracks capacity consumption of accepted embeddings on hosting networks.

    Thread-safe: the batch service's worker threads reserve concurrently
    (and repairs rebind concurrently with them), so every check-then-apply
    capacity transaction runs under one lock.
    """

    def __init__(self, wal=None) -> None:
        self._reservations: Dict[str, Reservation] = {}
        self._counter = itertools.count(1)
        self._lock = threading.RLock()
        #: Optional :class:`~repro.service.wal.ReservationWAL`; when set,
        #: every grant/rebind/release is journalled inside this lock so the
        #: log order equals the ledger order.
        self._wal = wal

    def attach_wal(self, wal) -> None:
        """Journal all future mutations to *wal* (see :mod:`repro.service.wal`)."""
        with self._lock:
            self._wal = wal

    @property
    def wal(self):
        return self._wal

    # ------------------------------------------------------------------ #

    def reserve(self, network: HostingNetwork, network_name: str, mapping: Mapping,
                demands: Optional[Dict[NodeId, float]] = None,
                default_demand: float = 1.0,
                capacity_attribute: str = "capacity",
                query: Optional[QueryNetwork] = None,
                constraint: Optional[ConstraintExpression] = None,
                node_constraint: Optional[ConstraintExpression] = None
                ) -> Reservation:
        """Consume capacity for *mapping* and return the reservation ticket.

        Parameters
        ----------
        network, network_name:
            The hosting network (live object) and its registry name.
        mapping:
            The embedding to reserve.
        demands:
            Per-query-node capacity demand; missing entries use *default_demand*.
        default_demand:
            Demand for query nodes not listed in *demands*.
        capacity_attribute:
            Which capacity attribute to consume.
        query, constraint, node_constraint:
            The embedding problem *mapping* answers.  Optional, but without
            them the ticket cannot be re-validated or repaired under churn.

        Raises
        ------
        ReservationError
            If any mapped hosting node lacks sufficient remaining capacity.
            The operation is atomic: either all nodes are charged or none.
        """
        demands = dict(demands or {})
        with self._lock:
            return self._grant(network, network_name, mapping, demands,
                               default_demand, capacity_attribute,
                               query, constraint, node_constraint,
                               reservation_id=None, journal=True)

    def _grant(self, network: HostingNetwork, network_name: str,
               mapping: Mapping, demands: Dict[NodeId, float],
               default_demand: float, capacity_attribute: str,
               query: Optional[QueryNetwork],
               constraint: Optional[ConstraintExpression],
               node_constraint: Optional[ConstraintExpression],
               reservation_id: Optional[str], journal: bool) -> Reservation:
        """Validate, charge, record and (optionally) journal one grant.

        Callers hold ``self._lock``.  ``reservation_id`` is forced during
        WAL replay so recovered tickets keep their original ids;
        ``journal=False`` suppresses re-logging replayed records.
        """
        resolved: Dict[NodeId, float] = {}
        for query_node, hosting_node in mapping.items():
            demand = float(demands.get(query_node, default_demand))
            if demand < 0:
                raise ReservationError(
                    f"demand for {query_node!r} must be non-negative, got {demand}")
            resolved[query_node] = demand
            available = network.available_capacity(hosting_node, capacity_attribute)
            if available is None:
                raise ReservationError(
                    f"hosting node {hosting_node!r} declares no "
                    f"{capacity_attribute!r} capacity")
            if demand > available + 1e-12:
                raise ReservationError(
                    f"hosting node {hosting_node!r} has {available} "
                    f"{capacity_attribute!r} left but {query_node!r} demands {demand}")

        # All checks passed: apply the charges.
        for query_node, hosting_node in mapping.items():
            network.consume_capacity(hosting_node, resolved[query_node],
                                     capacity_attribute)

        reservation = Reservation(
            reservation_id=(reservation_id if reservation_id is not None
                            else f"rsv-{next(self._counter):06d}"),
            network_name=network_name,
            mapping=mapping,
            demands=resolved,
            query=query,
            constraint=constraint,
            node_constraint=node_constraint,
            capacity_attribute=capacity_attribute,
        )
        if journal and self._wal is not None:
            from repro.service.wal import reserve_record
            try:
                self._wal.append(reserve_record(reservation))
            except BaseException:
                # The grant is not durable: undo the charges so a journal
                # failure cannot leak capacity that no log record explains.
                for query_node, hosting_node in mapping.items():
                    network.release_capacity(hosting_node,
                                             resolved[query_node],
                                             capacity_attribute)
                raise
        self._reservations[reservation.reservation_id] = reservation
        return reservation

    def rebind(self, reservation_id: str, network: HostingNetwork,
               new_mapping: Mapping) -> Reservation:
        """Move an active reservation onto *new_mapping*, transferring capacity.

        The net per-host capacity change is computed first and checked
        atomically — a repair that shuffles assignments among hosts the
        reservation already holds transfers nothing — then positive deltas
        are consumed and negative deltas released.  Raises
        :class:`ReservationError` (without touching any capacity) when a
        newly-acquired host lacks the spare capacity, or when *new_mapping*
        covers different query nodes than the original grant.

        Returns the updated ticket.
        """
        with self._lock:
            reservation = self._reservations.get(reservation_id)
            if reservation is None or not reservation.active:
                raise ReservationError(
                    f"unknown or already-released reservation {reservation_id!r}")
            demands = reservation.demands
            if set(new_mapping.query_nodes()) != set(demands):
                raise ReservationError(
                    f"rebind of {reservation_id!r} must cover exactly the "
                    f"originally granted query nodes")
            attribute = reservation.capacity_attribute
            deltas: Dict[NodeId, float] = {}
            for query_node, host in reservation.mapping.items():
                deltas[host] = deltas.get(host, 0.0) - demands[query_node]
            for query_node, host in new_mapping.items():
                deltas[host] = deltas.get(host, 0.0) + demands[query_node]
            for host, delta in deltas.items():
                if delta <= 1e-12:
                    continue
                available = network.available_capacity(host, attribute)
                if available is None:
                    raise ReservationError(
                        f"hosting node {host!r} declares no {attribute!r} capacity")
                if delta > available + 1e-12:
                    raise ReservationError(
                        f"hosting node {host!r} has {available} {attribute!r} left "
                        f"but the rebind needs {delta}")
            # Consumes first (the only step that can fail), with rollback, so
            # the ledger is all-or-nothing even if capacity moved between the
            # pre-check and here through a path outside this manager's lock.
            consumed: List[NodeId] = []
            try:
                for host, delta in deltas.items():
                    if delta > 1e-12:
                        network.consume_capacity(host, delta, attribute)
                        consumed.append(host)
            except ValueError as exc:
                for host in consumed:
                    network.release_capacity(host, deltas[host], attribute)
                raise ReservationError(str(exc)) from exc
            for host, delta in deltas.items():
                if delta < -1e-12 and network.has_node(host):
                    # A host the repair is leaving may have disappeared with
                    # the churn that triggered it; its capacity vanished too.
                    network.release_capacity(host, -delta, attribute)
            reservation.mapping = new_mapping
            reservation.rebinds += 1
            if self._wal is not None:
                from repro.service.wal import rebind_record
                self._wal.append(rebind_record(reservation))
            return reservation

    def release(self, reservation_id: str, network: HostingNetwork,
                capacity_attribute: str = "capacity") -> None:
        """Return the capacity held by a reservation."""
        with self._lock:
            reservation = self._reservations.get(reservation_id)
            if reservation is None or not reservation.active:
                raise ReservationError(
                    f"unknown or already-released reservation {reservation_id!r}")
            for query_node, hosting_node in reservation.mapping.items():
                network.release_capacity(hosting_node,
                                         reservation.demands[query_node],
                                         capacity_attribute)
            reservation.active = False
            if self._wal is not None:
                from repro.service.wal import release_record
                self._wal.append(release_record(reservation_id,
                                                capacity_attribute))

    # ------------------------------------------------------------------ #
    # WAL replay / snapshot / compaction
    # ------------------------------------------------------------------ #

    def replay(self, records: Sequence[Dict[str, object]],
               resolve_network: Callable[[str], HostingNetwork]
               ) -> Dict[str, object]:
        """Rebuild the ledger from WAL *records* (see :mod:`repro.service.wal`).

        Must be called on a fresh manager; every record is applied through
        the same validation paths as the original mutation (charging the
        resolved hosting networks), so the recovered state — ticket ids,
        mappings, demands, rebind counts, remaining capacity — matches the
        pre-crash state byte-for-byte.  Journalling is suspended for the
        duration so replayed records are not re-logged.

        Returns a report: total records, per-op applied counts, active
        tickets after replay.
        """
        from repro.server.protocol import query_from_payload

        applied = {"reserve": 0, "rebind": 0, "release": 0}
        with self._lock:
            if self._reservations:
                raise ReservationError(
                    "WAL replay requires an empty reservation ledger")
            wal, self._wal = self._wal, None
            try:
                max_id = 0
                next_counter = 1
                for record in records:
                    op = record.get("op")
                    if op in ("wal-header",):
                        continue
                    if op == "counter":
                        next_counter = max(next_counter, int(record["next"]))
                        continue
                    reservation_id = str(record["id"])
                    if op == "reserve":
                        network_name = str(record["network"])
                        network = resolve_network(network_name)
                        mapping = Mapping(dict(
                            (q, h) for q, h in record["mapping"]))
                        demands = {q: float(d) for q, d in record["demands"]}
                        query_payload = record.get("query")
                        constraint = record.get("constraint")
                        node_constraint = record.get("node_constraint")
                        self._grant(
                            network, network_name, mapping, demands,
                            default_demand=1.0,
                            capacity_attribute=str(
                                record.get("capacity_attribute", "capacity")),
                            query=(query_from_payload(query_payload)
                                   if query_payload is not None else None),
                            constraint=(ConstraintExpression(constraint)
                                        if constraint is not None else None),
                            node_constraint=(
                                ConstraintExpression(node_constraint)
                                if node_constraint is not None else None),
                            reservation_id=reservation_id, journal=False)
                        applied["reserve"] += 1
                    elif op == "rebind":
                        reservation = self.get(reservation_id)
                        network = resolve_network(reservation.network_name)
                        self.rebind(reservation_id, network, Mapping(dict(
                            (q, h) for q, h in record["mapping"])))
                        applied["rebind"] += 1
                    elif op == "release":
                        reservation = self.get(reservation_id)
                        network = resolve_network(reservation.network_name)
                        self.release(reservation_id, network,
                                     str(record.get("capacity_attribute",
                                                    "capacity")))
                        applied["release"] += 1
                    else:
                        raise ReservationError(
                            f"unknown WAL record op {op!r}")
                    try:
                        max_id = max(max_id, int(reservation_id.split("-")[-1]))
                    except ValueError:
                        pass
                self._counter = itertools.count(max(max_id + 1, next_counter))
            finally:
                self._wal = wal
            return {
                "records": len(records),
                "applied": applied,
                "active": sum(1 for r in self._reservations.values()
                              if r.active),
            }

    def snapshot(self) -> List[Dict[str, object]]:
        """A canonical, JSON-ready dump of the whole ledger.

        Sorted by ticket id with deterministic inner ordering, so two
        managers hold identical state iff their snapshots serialise to
        identical bytes (the kill-and-restart acceptance check).
        """
        with self._lock:
            reservations = sorted(self._reservations.values(),
                                  key=lambda r: r.reservation_id)
            return [{
                "id": r.reservation_id,
                "network": r.network_name,
                "active": r.active,
                "mapping": sorted(([str(q), str(h)]
                                   for q, h in r.mapping.items())),
                "demands": sorted(([str(q), float(d)]
                                   for q, d in r.demands.items())),
                "capacity_attribute": r.capacity_attribute,
                "rebinds": r.rebinds,
                "constraint": (r.constraint.source
                               if r.constraint is not None else None),
                "node_constraint": (r.node_constraint.source
                                    if r.node_constraint is not None
                                    else None),
                "query": (r.query.name if r.query is not None else None),
            } for r in reservations]

    def compact_wal(self) -> int:
        """Rewrite the attached WAL as the current *active* state.

        Rebind chains collapse into the final mapping and released tickets
        drop out of the log (their lifetime counters are traded for a
        bounded file); the id counter is preserved so post-compaction
        grants never reuse a ticket id.  Returns the number of state
        records written.  Requires an attached WAL.
        """
        from repro.service.wal import reserve_record

        with self._lock:
            if self._wal is None:
                raise ReservationError("no WAL attached to compact")
            # Peek the counter without consuming a value.
            next_value = next(self._counter)
            self._counter = itertools.count(next_value)
            records = [reserve_record(r)
                       for r in sorted(self._reservations.values(),
                                       key=lambda r: r.reservation_id)
                       if r.active]
            return self._wal.compact(records, next_value)

    # ------------------------------------------------------------------ #

    def get(self, reservation_id: str) -> Reservation:
        """Look up a reservation ticket."""
        if reservation_id not in self._reservations:
            raise ReservationError(f"unknown reservation {reservation_id!r}")
        return self._reservations[reservation_id]

    def active_reservations(self, network_name: Optional[str] = None) -> List[Reservation]:
        """All active reservations, optionally filtered by hosting network."""
        return [r for r in self._reservations.values()
                if r.active and (network_name is None or r.network_name == network_name)]

    def __len__(self) -> int:
        return len(self.active_reservations())

    def stats(self) -> Dict[str, int]:
        """Lifetime reservation counters (a snapshot, safe to serialise).

        ``granted`` counts every ticket ever issued, ``active`` the ones
        still holding capacity, ``released`` the returned ones, and
        ``rebinds`` how many times repairs moved capacity between hosts.
        """
        with self._lock:
            reservations = list(self._reservations.values())
            active = sum(1 for r in reservations if r.active)
            return {
                "granted": len(reservations),
                "active": active,
                "released": len(reservations) - active,
                "rebinds": sum(r.rebinds for r in reservations),
            }


def with_default_demand(query, demand: float = 1.0, attribute: str = "demand"):
    """Ensure every query node declares a capacity demand (in place); returns the query.

    Convenience for using :data:`CAPACITY_NODE_CONSTRAINT`, whose expression
    requires the ``demand`` attribute to exist on every query node.
    """
    for node in query.nodes():
        if query.get_node_attr(node, attribute) is None:
            query.update_node(node, **{attribute: float(demand)})
    return query
