"""Resource reservations over accepted embeddings (§III component 3).

"Optionally, if a resource reservation system is in place, applications would
allocate the selected mapping and the network model would be adjusted
accordingly."  This module implements that optional component:

* each hosting node may declare a capacity (``capacity`` /
  ``available_capacity`` attributes, see
  :meth:`~repro.graphs.hosting.HostingNetwork.set_capacity`);
* reserving an embedding consumes one unit (or an explicit per-query-node
  demand) of each mapped hosting node's capacity and records a ticket;
* releasing the ticket returns the capacity;
* a node-level constraint (:data:`CAPACITY_NODE_CONSTRAINT`) lets subsequent
  queries restrict themselves to hosts with spare capacity, which is how the
  reservation system "adjusts the network model".
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.constraints import ConstraintExpression
from repro.core.mapping import Mapping
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import NodeId
from repro.graphs.query import QueryNetwork

#: Node constraint restricting candidates to hosts with at least the demanded
#: capacity left.  Query nodes declare their demand in a ``demand`` attribute
#: (defaulting to 1 via isBoundTo-free arithmetic is not possible, so queries
#: without a demand attribute should use `with_default_demand`).
CAPACITY_NODE_CONSTRAINT = ConstraintExpression(
    "rNode.available_capacity >= vNode.demand")


class ReservationError(Exception):
    """Raised when a reservation cannot be made or released."""


@dataclass
class Reservation:
    """A granted reservation: which embedding holds which capacity.

    When the reserving caller supplies the originating *query* and its
    constraint expressions, the ticket carries enough context to be
    re-validated — and repaired — against a drifting network model later
    (see :meth:`NetEmbedService.repair <repro.service.netembed.NetEmbedService.repair>`).
    """

    reservation_id: str
    network_name: str
    mapping: Mapping
    demands: Dict[NodeId, float]
    active: bool = True
    #: The embedding problem this reservation answers (optional; required
    #: for repair).
    query: Optional["QueryNetwork"] = None
    constraint: Optional[ConstraintExpression] = None
    node_constraint: Optional[ConstraintExpression] = None
    #: Which capacity attribute the demands were charged against.
    capacity_attribute: str = "capacity"
    #: How many times :meth:`ReservationManager.rebind` moved this ticket.
    rebinds: int = 0


class ReservationManager:
    """Tracks capacity consumption of accepted embeddings on hosting networks.

    Thread-safe: the batch service's worker threads reserve concurrently
    (and repairs rebind concurrently with them), so every check-then-apply
    capacity transaction runs under one lock.
    """

    def __init__(self) -> None:
        self._reservations: Dict[str, Reservation] = {}
        self._counter = itertools.count(1)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #

    def reserve(self, network: HostingNetwork, network_name: str, mapping: Mapping,
                demands: Optional[Dict[NodeId, float]] = None,
                default_demand: float = 1.0,
                capacity_attribute: str = "capacity",
                query: Optional[QueryNetwork] = None,
                constraint: Optional[ConstraintExpression] = None,
                node_constraint: Optional[ConstraintExpression] = None
                ) -> Reservation:
        """Consume capacity for *mapping* and return the reservation ticket.

        Parameters
        ----------
        network, network_name:
            The hosting network (live object) and its registry name.
        mapping:
            The embedding to reserve.
        demands:
            Per-query-node capacity demand; missing entries use *default_demand*.
        default_demand:
            Demand for query nodes not listed in *demands*.
        capacity_attribute:
            Which capacity attribute to consume.
        query, constraint, node_constraint:
            The embedding problem *mapping* answers.  Optional, but without
            them the ticket cannot be re-validated or repaired under churn.

        Raises
        ------
        ReservationError
            If any mapped hosting node lacks sufficient remaining capacity.
            The operation is atomic: either all nodes are charged or none.
        """
        demands = dict(demands or {})
        with self._lock:
            resolved: Dict[NodeId, float] = {}
            for query_node, hosting_node in mapping.items():
                demand = float(demands.get(query_node, default_demand))
                if demand < 0:
                    raise ReservationError(
                        f"demand for {query_node!r} must be non-negative, got {demand}")
                resolved[query_node] = demand
                available = network.available_capacity(hosting_node, capacity_attribute)
                if available is None:
                    raise ReservationError(
                        f"hosting node {hosting_node!r} declares no "
                        f"{capacity_attribute!r} capacity")
                if demand > available + 1e-12:
                    raise ReservationError(
                        f"hosting node {hosting_node!r} has {available} "
                        f"{capacity_attribute!r} left but {query_node!r} demands {demand}")

            # All checks passed: apply the charges.
            for query_node, hosting_node in mapping.items():
                network.consume_capacity(hosting_node, resolved[query_node],
                                         capacity_attribute)

            reservation = Reservation(
                reservation_id=f"rsv-{next(self._counter):06d}",
                network_name=network_name,
                mapping=mapping,
                demands=resolved,
                query=query,
                constraint=constraint,
                node_constraint=node_constraint,
                capacity_attribute=capacity_attribute,
            )
            self._reservations[reservation.reservation_id] = reservation
            return reservation

    def rebind(self, reservation_id: str, network: HostingNetwork,
               new_mapping: Mapping) -> Reservation:
        """Move an active reservation onto *new_mapping*, transferring capacity.

        The net per-host capacity change is computed first and checked
        atomically — a repair that shuffles assignments among hosts the
        reservation already holds transfers nothing — then positive deltas
        are consumed and negative deltas released.  Raises
        :class:`ReservationError` (without touching any capacity) when a
        newly-acquired host lacks the spare capacity, or when *new_mapping*
        covers different query nodes than the original grant.

        Returns the updated ticket.
        """
        with self._lock:
            reservation = self._reservations.get(reservation_id)
            if reservation is None or not reservation.active:
                raise ReservationError(
                    f"unknown or already-released reservation {reservation_id!r}")
            demands = reservation.demands
            if set(new_mapping.query_nodes()) != set(demands):
                raise ReservationError(
                    f"rebind of {reservation_id!r} must cover exactly the "
                    f"originally granted query nodes")
            attribute = reservation.capacity_attribute
            deltas: Dict[NodeId, float] = {}
            for query_node, host in reservation.mapping.items():
                deltas[host] = deltas.get(host, 0.0) - demands[query_node]
            for query_node, host in new_mapping.items():
                deltas[host] = deltas.get(host, 0.0) + demands[query_node]
            for host, delta in deltas.items():
                if delta <= 1e-12:
                    continue
                available = network.available_capacity(host, attribute)
                if available is None:
                    raise ReservationError(
                        f"hosting node {host!r} declares no {attribute!r} capacity")
                if delta > available + 1e-12:
                    raise ReservationError(
                        f"hosting node {host!r} has {available} {attribute!r} left "
                        f"but the rebind needs {delta}")
            # Consumes first (the only step that can fail), with rollback, so
            # the ledger is all-or-nothing even if capacity moved between the
            # pre-check and here through a path outside this manager's lock.
            consumed: List[NodeId] = []
            try:
                for host, delta in deltas.items():
                    if delta > 1e-12:
                        network.consume_capacity(host, delta, attribute)
                        consumed.append(host)
            except ValueError as exc:
                for host in consumed:
                    network.release_capacity(host, deltas[host], attribute)
                raise ReservationError(str(exc)) from exc
            for host, delta in deltas.items():
                if delta < -1e-12 and network.has_node(host):
                    # A host the repair is leaving may have disappeared with
                    # the churn that triggered it; its capacity vanished too.
                    network.release_capacity(host, -delta, attribute)
            reservation.mapping = new_mapping
            reservation.rebinds += 1
            return reservation

    def release(self, reservation_id: str, network: HostingNetwork,
                capacity_attribute: str = "capacity") -> None:
        """Return the capacity held by a reservation."""
        with self._lock:
            reservation = self._reservations.get(reservation_id)
            if reservation is None or not reservation.active:
                raise ReservationError(
                    f"unknown or already-released reservation {reservation_id!r}")
            for query_node, hosting_node in reservation.mapping.items():
                network.release_capacity(hosting_node,
                                         reservation.demands[query_node],
                                         capacity_attribute)
            reservation.active = False

    # ------------------------------------------------------------------ #

    def get(self, reservation_id: str) -> Reservation:
        """Look up a reservation ticket."""
        if reservation_id not in self._reservations:
            raise ReservationError(f"unknown reservation {reservation_id!r}")
        return self._reservations[reservation_id]

    def active_reservations(self, network_name: Optional[str] = None) -> List[Reservation]:
        """All active reservations, optionally filtered by hosting network."""
        return [r for r in self._reservations.values()
                if r.active and (network_name is None or r.network_name == network_name)]

    def __len__(self) -> int:
        return len(self.active_reservations())

    def stats(self) -> Dict[str, int]:
        """Lifetime reservation counters (a snapshot, safe to serialise).

        ``granted`` counts every ticket ever issued, ``active`` the ones
        still holding capacity, ``released`` the returned ones, and
        ``rebinds`` how many times repairs moved capacity between hosts.
        """
        with self._lock:
            reservations = list(self._reservations.values())
            active = sum(1 for r in reservations if r.active)
            return {
                "granted": len(reservations),
                "active": active,
                "released": len(reservations) - active,
                "rebinds": sum(r.rebinds for r in reservations),
            }


def with_default_demand(query, demand: float = 1.0, attribute: str = "demand"):
    """Ensure every query node declares a capacity demand (in place); returns the query.

    Convenience for using :data:`CAPACITY_NODE_CONSTRAINT`, whose expression
    requires the ``demand`` attribute to exist on every query node.
    """
    for node in query.nodes():
        if query.get_node_attr(node, attribute) is None:
            query.update_node(node, **{attribute: float(demand)})
    return query
