"""Interactive negotiation sessions (§III: "an interactive service would
facilitate the adjustment (negotiation) of the requirements if the query
cannot be satisfied").

A :class:`NegotiationSession` wraps a :class:`~repro.service.netembed.NetEmbedService`
and a query whose edges carry ``minDelay``/``maxDelay`` windows.  When the
query cannot be embedded, the session *relaxes* the windows by a configurable
factor and retries, up to a maximum number of rounds — mirroring the §VI-B
remark that a user "may wish to begin with more stringent constraints and
relax them if there is no compliant mapping".  The session records every
round so applications (and tests) can inspect how much relaxation was needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.constraints import ConstraintExpression
from repro.graphs.query import QueryNetwork
from repro.service.netembed import NetEmbedService
from repro.service.spec import EmbeddingResponse


@dataclass
class NegotiationRound:
    """One attempt within a negotiation session."""

    round_index: int
    relaxation: float          #: total widening factor applied to the windows so far
    response: EmbeddingResponse

    @property
    def succeeded(self) -> bool:
        """Whether this round found at least one embedding."""
        return self.response.found


@dataclass
class NegotiationOutcome:
    """Final result of a negotiation: the winning response (if any) and the history."""

    response: Optional[EmbeddingResponse]
    rounds: List[NegotiationRound] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """Whether any round found an embedding."""
        return self.response is not None

    @property
    def relaxation_used(self) -> float:
        """The widening factor of the successful round (0 when the first try worked)."""
        for round_ in self.rounds:
            if round_.succeeded:
                return round_.relaxation
        return self.rounds[-1].relaxation if self.rounds else 0.0


class NegotiationSession:
    """Iterative constraint-relaxation over delay-window queries.

    Parameters
    ----------
    service:
        The NETEMBED service to query.
    relaxation_step:
        Fractional widening applied to every delay window per failed round
        (0.25 widens each window by 25 % of its width on both sides).
    max_rounds:
        Total number of attempts (including the initial, unrelaxed one).
    """

    def __init__(self, service: NetEmbedService, relaxation_step: float = 0.25,
                 max_rounds: int = 4) -> None:
        if relaxation_step <= 0:
            raise ValueError(f"relaxation_step must be positive, got {relaxation_step}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self._service = service
        self._relaxation_step = relaxation_step
        self._max_rounds = max_rounds

    def negotiate(self, query: QueryNetwork,
                  constraint: Optional[Union[str, ConstraintExpression]] = None,
                  node_constraint: Optional[Union[str, ConstraintExpression]] = None,
                  algorithm: str = "auto", timeout: Optional[float] = None,
                  max_results: Optional[int] = 1,
                  network: Optional[str] = None) -> NegotiationOutcome:
        """Try to embed *query*, relaxing its delay windows on failure.

        The query passed in is never modified; each round works on a widened
        copy.  Returns the outcome with the full round history.
        """
        rounds: List[NegotiationRound] = []
        for round_index in range(self._max_rounds):
            relaxation = self._relaxation_step * round_index
            candidate = _widen_windows(query, relaxation)
            response = self._service.embed(
                candidate, constraint=constraint, node_constraint=node_constraint,
                algorithm=algorithm, timeout=timeout, max_results=max_results,
                network=network)
            record = NegotiationRound(round_index=round_index, relaxation=relaxation,
                                      response=response)
            rounds.append(record)
            if record.succeeded:
                return NegotiationOutcome(response=response, rounds=rounds)
        return NegotiationOutcome(response=None, rounds=rounds)


def _widen_windows(query: QueryNetwork, relaxation: float,
                   low_attr: str = "minDelay", high_attr: str = "maxDelay"
                   ) -> QueryNetwork:
    """A copy of *query* whose delay windows are widened by *relaxation* of their width."""
    widened = query.copy(name=f"{query.name}-relaxed{relaxation:g}")
    if relaxation <= 0:
        return widened
    for u, v in widened.edges():
        low = widened.get_edge_attr(u, v, low_attr)
        high = widened.get_edge_attr(u, v, high_attr)
        if low is None or high is None:
            continue
        width = max(high - low, 1e-9)
        margin = width * relaxation
        widened.update_edge(u, v, **{
            low_attr: round(max(0.0, low - margin), 6),
            high_attr: round(high + margin, 6),
        })
    return widened
