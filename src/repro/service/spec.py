"""Request/response data types of the NETEMBED service interface.

The service model of §III is request/response: an application submits a
*query specification* — the virtual topology plus its constraints and
service-level knobs (timeout, how many embeddings it wants, which algorithm
to use) — and receives a *response* containing the embeddings found, the
result classification and timing/diagnostic information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.constraints import ConstraintExpression
from repro.core.mapping import Mapping
from repro.core.result import EmbeddingResult, ResultStatus
from repro.graphs.query import QueryNetwork


@dataclass
class QuerySpec:
    """A complete embedding request.

    Attributes
    ----------
    query:
        The virtual network to embed.
    constraint:
        Edge constraint expression (source text or parsed); ``None`` means
        topology-only.
    node_constraint:
        Optional node-level constraint expression over ``vNode``/``rNode``.
    algorithm:
        ``"ECF"``, ``"RWB"``, ``"LNS"`` or ``"auto"`` (the service picks based
        on the query's characteristics, §VIII's guidance).
    timeout:
        Wall-clock budget in seconds (``None`` = the service default).
    max_results:
        Stop after this many embeddings (``None`` = all the algorithm finds).
    reserve:
        Whether the service should immediately reserve the first returned
        embedding through its reservation manager.
    network:
        Name of the registered hosting network to embed into (``None`` = the
        service's default network).
    """

    query: QueryNetwork
    constraint: Optional[Union[str, ConstraintExpression]] = None
    node_constraint: Optional[Union[str, ConstraintExpression]] = None
    algorithm: str = "auto"
    timeout: Optional[float] = None
    max_results: Optional[int] = None
    reserve: bool = False
    network: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.query, QueryNetwork):
            raise TypeError(
                f"query must be a QueryNetwork, got {type(self.query).__name__}")
        if self.algorithm.lower() not in ("auto", "ecf", "rwb", "lns"):
            raise ValueError(
                f"algorithm must be one of 'auto', 'ECF', 'RWB', 'LNS'; got {self.algorithm!r}")


@dataclass
class EmbeddingResponse:
    """What the service returns for a :class:`QuerySpec`.

    Wraps the raw :class:`~repro.core.result.EmbeddingResult` with
    service-level context: which hosting network and algorithm were used, and
    the reservation ticket if one was made.
    """

    spec: QuerySpec
    result: EmbeddingResult
    network_name: str
    algorithm_used: str
    reservation_id: Optional[str] = None

    # -- pass-throughs for ergonomic access ------------------------------ #

    @property
    def status(self) -> ResultStatus:
        """The complete/partial/inconclusive classification."""
        return self.result.status

    @property
    def mappings(self) -> List[Mapping]:
        """The embeddings found."""
        return self.result.mappings

    @property
    def found(self) -> bool:
        """Whether at least one embedding was found."""
        return self.result.found

    @property
    def first(self) -> Optional[Mapping]:
        """The first embedding found, or ``None``."""
        return self.result.first

    @property
    def elapsed_seconds(self) -> float:
        """Total service-side search time."""
        return self.result.elapsed_seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EmbeddingResponse {self.algorithm_used} on {self.network_name}: "
                f"{self.status.value}, {len(self.mappings)} mapping(s)>")
