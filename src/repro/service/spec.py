"""Request/response data types of the NETEMBED service interface.

The service model of §III is request/response: an application submits a
*query specification* — the virtual topology plus its constraints and
service-level knobs (timeout, how many embeddings it wants, which algorithm
to use) — and receives a *response* containing the embeddings found, the
result classification and timing/diagnostic information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.api.registry import AlgorithmRegistry, default_registry
from repro.api.request import Budget, SearchRequest, validate_parallelism
from repro.constraints import ConstraintExpression
from repro.core.mapping import Mapping
from repro.core.repair import RepairResult
from repro.core.result import EmbeddingResult, ResultStatus
from repro.graphs.network import Network
from repro.graphs.query import QueryNetwork


@dataclass
class QuerySpec:
    """A complete embedding request.

    Attributes
    ----------
    query:
        The virtual network to embed.
    constraint:
        Edge constraint expression (source text or parsed); ``None`` means
        topology-only.
    node_constraint:
        Optional node-level constraint expression over ``vNode``/``rNode``.
    algorithm:
        ``"auto"`` (the service's selection policy picks based on the query's
        characteristics, §VIII's guidance) or any name registered in the
        algorithm registry — the three NETEMBED algorithms and the four
        baselines by default.
    timeout:
        Wall-clock budget in seconds (``None`` = the service default).
    max_results:
        Stop after this many embeddings (``None`` = all the algorithm finds).
    reserve:
        Whether the service should immediately reserve the first returned
        embedding through its reservation manager.
    network:
        Name of the registered hosting network to embed into (``None`` = the
        service's default network).
    seed:
        Per-request random seed handed to seedable algorithms (RWB, the
        metaheuristic baselines) so batch runs are reproducible per request.
    parallelism:
        Shard the search stage across this many workers of the service's
        shared process pool (``None``/``1`` = serial).  The mapping stream
        is identical to a serial run, so this is purely a latency knob for
        large enumerations.
    registry:
        Algorithm registry the ``algorithm`` name is validated against
        (``None`` = the process-wide default registry).  Pass the same custom
        registry the target :class:`NetEmbedService` was built with when its
        algorithms are not in the default registry.
    cache:
        Whether this request may consult (and populate) the service's plan
        cache.  ``False`` forces the one-shot prepare-and-search path; the
        serving tier uses it to enforce per-tenant cache quotas without
        refusing the request outright.
    """

    query: QueryNetwork
    constraint: Optional[Union[str, ConstraintExpression]] = None
    node_constraint: Optional[Union[str, ConstraintExpression]] = None
    algorithm: str = "auto"
    timeout: Optional[float] = None
    max_results: Optional[int] = None
    reserve: bool = False
    network: Optional[str] = None
    seed: Optional[int] = None
    registry: Optional[AlgorithmRegistry] = None
    parallelism: Optional[int] = None
    cache: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.query, QueryNetwork):
            raise TypeError(
                f"query must be a QueryNetwork, got {type(self.query).__name__}")
        if not isinstance(self.algorithm, str):
            raise TypeError(
                f"algorithm must be a string, got {type(self.algorithm).__name__}")
        registry = self.registry if self.registry is not None else default_registry()
        if self.algorithm.lower() != "auto" and self.algorithm not in registry:
            raise ValueError(
                f"algorithm must be 'auto' or one of {registry.names()}; "
                f"got {self.algorithm!r}")
        if self.seed is not None and (not isinstance(self.seed, int)
                                      or isinstance(self.seed, bool)):
            raise TypeError(f"seed must be an int or None, got {type(self.seed).__name__}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {self.timeout}")
        if self.max_results is not None and self.max_results < 1:
            raise ValueError(
                f"max_results must be >= 1 or None, got {self.max_results}")
        validate_parallelism(self.parallelism)

    def to_request(self, hosting: Network,
                   default_timeout: Optional[float] = None) -> SearchRequest:
        """Lower this spec onto *hosting* as a validated :class:`SearchRequest`."""
        timeout = self.timeout if self.timeout is not None else default_timeout
        return SearchRequest.build(
            self.query, hosting, constraint=self.constraint,
            node_constraint=self.node_constraint,
            budget=Budget(timeout=timeout, max_results=self.max_results),
            parallelism=self.parallelism)


@dataclass
class EmbeddingResponse:
    """What the service returns for a :class:`QuerySpec`.

    Wraps the raw :class:`~repro.core.result.EmbeddingResult` with
    service-level context: which hosting network and algorithm were used, and
    the reservation ticket if one was made.
    """

    spec: QuerySpec
    result: EmbeddingResult
    network_name: str
    algorithm_used: str
    reservation_id: Optional[str] = None

    # -- pass-throughs for ergonomic access ------------------------------ #

    @property
    def status(self) -> ResultStatus:
        """The complete/partial/inconclusive classification."""
        return self.result.status

    @property
    def mappings(self) -> List[Mapping]:
        """The embeddings found."""
        return self.result.mappings

    @property
    def found(self) -> bool:
        """Whether at least one embedding was found."""
        return self.result.found

    @property
    def first(self) -> Optional[Mapping]:
        """The first embedding found, or ``None``."""
        return self.result.first

    @property
    def elapsed_seconds(self) -> float:
        """Total service-side search time."""
        return self.result.elapsed_seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EmbeddingResponse {self.algorithm_used} on {self.network_name}: "
                f"{self.status.value}, {len(self.mappings)} mapping(s)>")


@dataclass
class RepairResponse:
    """What :meth:`NetEmbedService.repair` returns for a reservation.

    Wraps the :class:`~repro.core.repair.RepairResult` with service-level
    context: which reservation and network were involved, and whether the
    repaired mapping could actually be rebound (capacity transferred).
    """

    reservation_id: str
    network_name: str
    result: RepairResult
    #: Set when a repaired mapping could not hold its capacity at rebind
    #: time; the reservation then still holds its (broken) original mapping.
    error: Optional[str] = None

    # -- pass-throughs for ergonomic access ------------------------------ #

    @property
    def status(self) -> str:
        """intact / repaired / failed / timeout (see RepairResult)."""
        return self.result.status

    @property
    def ok(self) -> bool:
        """Whether the reservation now holds a valid mapping."""
        return self.error is None and self.result.ok

    @property
    def mapping(self) -> Optional[Mapping]:
        """The valid mapping in hand, if any."""
        return self.result.mapping

    @property
    def moved(self):
        """Query nodes whose host changed: ``{q: (old, new)}``."""
        return self.result.moved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RepairResponse {self.reservation_id} on {self.network_name}: "
                f"{self.status}, {len(self.moved)} moved>")
