"""Crash-safe write-ahead log for :class:`ReservationManager` state.

Reservations are the one piece of serving-tier state that outlives a
request: capacity charged against the hosting network on behalf of a tenant
must survive a server crash, or a restart silently double-books hosts.
This module makes the reservation ledger durable with the smallest possible
machinery — an append-only JSONL file:

* one JSON object per line, appended *inside* the manager's lock at
  commit/rebind/release time, so the log order equals the ledger order;
* ``fsync`` batched every ``fsync_batch`` appends (1 = every commit is
  durable before the caller learns it succeeded) and forced on close;
* a torn final line — the classic crash artefact of an append that died
  mid-write — is detected and skipped on replay, never propagated;
* :meth:`ReservationWAL.compact` rewrites the log as the live state plus a
  counter record (atomic via temp file + ``os.replace``), collapsing long
  rebind chains and dropping released tickets.

Record shapes (all node ids ride as ``[query_node, value]`` pairs, not
object keys, so integer ids survive the JSON round trip)::

    {"op": "wal-header", "version": 1}
    {"op": "reserve", "id": "rsv-000001", "network": "...",
     "mapping": [[q, h], ...], "demands": [[q, d], ...],
     "capacity_attribute": "capacity", "query": {...}|null,
     "constraint": "..."|null, "node_constraint": "..."|null}
    {"op": "rebind", "id": "rsv-000001", "mapping": [[q, h], ...]}
    {"op": "release", "id": "rsv-000001", "capacity_attribute": "capacity"}
    {"op": "counter", "next": 7}

Replay applies these through the manager's own validation paths (see
:meth:`ReservationManager.replay`), so a recovered server reconstructs the
ledger — mappings, demands, rebind counts, ticket ids — byte-identically.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

WAL_VERSION = 1


class WALError(Exception):
    """Raised on unreadable/corrupt WAL files or misuse of the log."""


class ReservationWAL:
    """Append-only JSONL journal of reservation mutations.

    Not thread-safe by itself: callers (the :class:`ReservationManager`)
    append under their own lock, which also guarantees that log order
    matches ledger order.
    """

    def __init__(self, path: Union[str, Path], fsync_batch: int = 1) -> None:
        if fsync_batch < 1:
            raise WALError(f"fsync_batch must be >= 1, got {fsync_batch}")
        self.path = Path(path)
        self.fsync_batch = fsync_batch
        self._pending_sync = 0
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._file = open(self.path, "ab")
        if fresh:
            self._write({"op": "wal-header", "version": WAL_VERSION})
            self.sync()

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def _write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True) + "\n"
        self._file.write(line.encode("utf-8"))
        self._file.flush()
        self._pending_sync += 1

    def append(self, record: Dict[str, object]) -> None:
        """Append one record; fsync when the batch threshold is reached."""
        if self._file.closed:
            raise WALError(f"WAL {self.path} is closed")
        self._write(record)
        if self._pending_sync >= self.fsync_batch:
            self.sync()

    def sync(self) -> None:
        """Force the journal to stable storage."""
        if self._file.closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._pending_sync = 0

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.close()

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #

    def compact(self, records: Iterable[Dict[str, object]],
                next_counter: int) -> int:
        """Atomically rewrite the log as ``records`` + a counter record.

        ``records`` is the live state (typically one ``reserve`` record per
        active reservation, rebind chains already collapsed); released
        tickets are dropped — compaction trades their lifetime counters for
        a bounded log.  Returns the number of state records written.
        """
        directory = self.path.parent
        fd, temp_path = tempfile.mkstemp(prefix=self.path.name + ".compact-",
                                         dir=directory)
        written = 0
        try:
            with os.fdopen(fd, "wb") as handle:
                def emit(record: Dict[str, object]) -> None:
                    handle.write(json.dumps(
                        record, separators=(",", ":"),
                        sort_keys=True).encode("utf-8") + b"\n")
                emit({"op": "wal-header", "version": WAL_VERSION,
                      "compacted": True})
                for record in records:
                    emit(record)
                    written += 1
                emit({"op": "counter", "next": int(next_counter)})
                handle.flush()
                os.fsync(handle.fileno())
            self.close()
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self._file = open(self.path, "ab")
        self._pending_sync = 0
        return written

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @staticmethod
    def read(path: Union[str, Path]) -> Tuple[List[Dict[str, object]], int]:
        """Read all records of a WAL file; tolerates a torn final line.

        Returns ``(records, skipped)`` where ``skipped`` is the number of
        trailing unparseable lines dropped (0 or 1 for a genuine crash; a
        corrupt line *followed by valid ones* is real corruption and raises
        :class:`WALError`).
        """
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise WALError(f"cannot read WAL {path}: {exc}") from exc
        records: List[Dict[str, object]] = []
        bad: List[int] = []
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for lineno, line in enumerate(lines, start=1):
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict) or "op" not in record:
                    raise ValueError("record is not an op object")
            except (ValueError, UnicodeDecodeError):
                bad.append(lineno)
                continue
            if bad:
                raise WALError(
                    f"WAL {path} is corrupt: unparseable line(s) "
                    f"{bad} followed by valid records")
            records.append(record)
        if len(bad) > 1:
            raise WALError(
                f"WAL {path} is corrupt: {len(bad)} unparseable lines")
        if records and records[0].get("op") == "wal-header":
            version = records[0].get("version")
            if version != WAL_VERSION:
                raise WALError(
                    f"WAL {path} has unsupported version {version!r}")
        return records, len(bad)


# --------------------------------------------------------------------------- #
# Record builders (shared by the manager's logging and compaction)
# --------------------------------------------------------------------------- #

def reserve_record(reservation) -> Dict[str, object]:
    """Encode a :class:`~repro.service.reservation.Reservation` grant."""
    from repro.server.protocol import network_payload

    return {
        "op": "reserve",
        "id": reservation.reservation_id,
        "network": reservation.network_name,
        "mapping": [[q, h] for q, h in reservation.mapping.items()],
        "demands": [[q, d] for q, d in sorted(
            reservation.demands.items(), key=lambda item: str(item[0]))],
        "capacity_attribute": reservation.capacity_attribute,
        "query": (network_payload(reservation.query)
                  if reservation.query is not None else None),
        "constraint": (reservation.constraint.source
                       if reservation.constraint is not None else None),
        "node_constraint": (reservation.node_constraint.source
                            if reservation.node_constraint is not None
                            else None),
    }


def rebind_record(reservation) -> Dict[str, object]:
    return {
        "op": "rebind",
        "id": reservation.reservation_id,
        "mapping": [[q, h] for q, h in reservation.mapping.items()],
    }


def release_record(reservation_id: str,
                   capacity_attribute: str) -> Dict[str, object]:
    return {
        "op": "release",
        "id": reservation_id,
        "capacity_attribute": capacity_attribute,
    }
