"""Topology generators for hosting and query networks.

The paper's evaluation (§VII) draws its networks from three sources, all of
which this subpackage can produce:

* a PlanetLab-like all-pairs delay trace (:mod:`~repro.topology.planetlab`,
  simulated — see DESIGN.md);
* BRITE-like power-law Internet topologies (:mod:`~repro.topology.brite`);
* regular and two-level composite structures used as query workloads
  (:mod:`~repro.topology.regular`, :mod:`~repro.topology.composite`).

A GT-ITM-style transit-stub generator and small random-graph helpers round
out the family for examples and tests.
"""

from repro.topology import delays
from repro.topology.brite import barabasi_albert, paper_hosting_networks, waxman
from repro.topology.composite import (
    LEVEL_ATTR,
    CompositeSpec,
    composite,
    composite_series,
    level_edges,
)
from repro.topology.gtitm import transit_stub
from repro.topology.planetlab import (
    DEFAULT_REGIONS,
    Region,
    delay_band_summary,
    synthetic_planetlab_trace,
)
from repro.topology.random_graphs import (
    annotate_uniform_delays,
    connected_gnp,
    connected_graph_with_edges,
    random_tree,
)
from repro.topology.regular import (
    REGULAR_SHAPES,
    balanced_tree,
    clique,
    grid,
    hypercube,
    line,
    regular_by_name,
    ring,
    star,
)

__all__ = [
    "delays",
    "barabasi_albert",
    "waxman",
    "paper_hosting_networks",
    "CompositeSpec",
    "composite",
    "composite_series",
    "level_edges",
    "LEVEL_ATTR",
    "transit_stub",
    "synthetic_planetlab_trace",
    "delay_band_summary",
    "Region",
    "DEFAULT_REGIONS",
    "random_tree",
    "connected_gnp",
    "connected_graph_with_edges",
    "annotate_uniform_delays",
    "REGULAR_SHAPES",
    "ring",
    "star",
    "clique",
    "line",
    "balanced_tree",
    "grid",
    "hypercube",
    "regular_by_name",
]
