"""BRITE-like Internet topology generation (paper §VII-C).

The paper's larger hosting networks are produced with the BRITE topology
generator "based on the power-law models of node connectivity of the
Internet", with sizes N=1500/E=3030, N=2000/E=4040 and N=2500/E=5020 — i.e.
roughly two edges per node.  This module reimplements the two BRITE models
that matter for those experiments:

* :func:`barabasi_albert` — incremental growth with preferential attachment
  (power-law degree distribution), BRITE's ``BA`` model;
* :func:`waxman` — random geometric attachment with the Waxman probability
  ``P(u,v) = alpha * exp(-d(u,v) / (beta * L))``, BRITE's ``Waxman`` model.

As in BRITE, nodes are placed on a square plane divided into high-level (HS)
squares and low-level (LS) squares; link delays are derived from Euclidean
distance so they are metrically consistent (triangle-inequality-respecting),
and every edge carries the usual ``minDelay``/``avgDelay``/``maxDelay``
triple.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Type

from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Network
from repro.topology.delays import (
    delay_from_distance,
    delay_triple,
    euclidean_distance,
)
from repro.utils.rng import RandomSource, as_rng


def _place_nodes(network: Network, num_nodes: int, plane_size: float, rand,
                 prefix: str) -> List[str]:
    """Place nodes uniformly at random on a plane_size × plane_size plane."""
    nodes = []
    for index in range(num_nodes):
        node = f"{prefix}{index}"
        network.add_node(node,
                         name=node,
                         x=round(rand.uniform(0.0, plane_size), 3),
                         y=round(rand.uniform(0.0, plane_size), 3))
        nodes.append(node)
    return nodes


def _annotate_delay(network: Network, u: str, v: str, ms_per_unit: float, rand) -> None:
    a = (network.get_node_attr(u, "x"), network.get_node_attr(u, "y"))
    b = (network.get_node_attr(v, "x"), network.get_node_attr(v, "y"))
    base = delay_from_distance(euclidean_distance(a, b), ms_per_unit)
    network.update_edge(u, v, **delay_triple(base, rand))


def barabasi_albert(num_nodes: int, edges_per_node: int = 2,
                    plane_size: float = 100.0, ms_per_unit: float = 0.5,
                    rng: RandomSource = None,
                    cls: Type[Network] = HostingNetwork,
                    prefix: str = "b", name: Optional[str] = None) -> Network:
    """BRITE's BA model: incremental growth with preferential attachment.

    Parameters
    ----------
    num_nodes:
        Total number of nodes.
    edges_per_node:
        Links added by each new node (``m``); the paper's hosting networks use
        the equivalent of ``m = 2`` (E ≈ 2·N).
    plane_size, ms_per_unit:
        Geometry of the coordinate plane and its delay scale.
    rng:
        Randomness source.
    cls, prefix, name:
        Output network class, node-id prefix and network name.

    Returns
    -------
    Network
        A connected power-law network with delay-annotated edges.
    """
    if num_nodes < edges_per_node + 1:
        raise ValueError(
            f"num_nodes ({num_nodes}) must exceed edges_per_node ({edges_per_node})")
    if edges_per_node < 1:
        raise ValueError(f"edges_per_node must be >= 1, got {edges_per_node}")
    rand = as_rng(rng)
    network = cls(name=name or f"brite-ba-{num_nodes}")
    nodes = _place_nodes(network, num_nodes, plane_size, rand, prefix)

    # Seed: a small clique of the first m+1 nodes so the attachment pool has
    # non-zero degrees.
    seed_count = edges_per_node + 1
    for i in range(seed_count):
        for j in range(i + 1, seed_count):
            network.add_edge(nodes[i], nodes[j])
            _annotate_delay(network, nodes[i], nodes[j], ms_per_unit, rand)

    # repeated-endpoints list: picking uniformly from it is degree-proportional.
    attachment_pool: List[str] = []
    for i in range(seed_count):
        attachment_pool.extend([nodes[i]] * network.degree(nodes[i]))

    for index in range(seed_count, num_nodes):
        new_node = nodes[index]
        targets = set()
        # Guard against the (tiny) possibility of repeatedly sampling the same
        # target in small graphs.
        attempts = 0
        while len(targets) < edges_per_node and attempts < 50 * edges_per_node:
            targets.add(rand.choice(attachment_pool))
            attempts += 1
        for target in targets:
            network.add_edge(new_node, target)
            _annotate_delay(network, new_node, target, ms_per_unit, rand)
            attachment_pool.append(target)
        attachment_pool.extend([new_node] * len(targets))

    return network


def waxman(num_nodes: int, alpha: float = 0.15, beta: float = 0.2,
           plane_size: float = 100.0, ms_per_unit: float = 0.5,
           rng: RandomSource = None, cls: Type[Network] = HostingNetwork,
           prefix: str = "w", name: Optional[str] = None,
           ensure_connected: bool = True) -> Network:
    """BRITE's Waxman model: distance-dependent random attachment.

    Each node pair ``(u, v)`` is connected with probability
    ``alpha * exp(-d(u, v) / (beta * L))`` where ``L`` is the plane diagonal.
    With ``ensure_connected`` (default) a minimal set of extra nearest-
    neighbour links joins any disconnected components, so the result is
    always usable as a hosting network.
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    rand = as_rng(rng)
    network = cls(name=name or f"brite-waxman-{num_nodes}")
    nodes = _place_nodes(network, num_nodes, plane_size, rand, prefix)
    diagonal = plane_size * (2 ** 0.5)

    import math
    coords = {node: (network.get_node_attr(node, "x"), network.get_node_attr(node, "y"))
              for node in nodes}
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            u, v = nodes[i], nodes[j]
            distance = euclidean_distance(coords[u], coords[v])
            probability = alpha * math.exp(-distance / (beta * diagonal))
            if rand.random() < probability:
                network.add_edge(u, v)
                _annotate_delay(network, u, v, ms_per_unit, rand)

    if ensure_connected:
        _connect_components(network, coords, ms_per_unit, rand)
    return network


def _connect_components(network: Network, coords, ms_per_unit: float, rand) -> None:
    """Join disconnected components with nearest-neighbour bridge links."""
    import networkx as nx

    graph = network.graph
    components = [sorted(c, key=str) for c in nx.connected_components(graph)]
    while len(components) > 1:
        base = components[0]
        other = components[1]
        # Bridge the closest pair of nodes between the two components.
        best: Optional[Tuple[float, str, str]] = None
        for u in base:
            for v in other:
                distance = euclidean_distance(coords[u], coords[v])
                if best is None or distance < best[0]:
                    best = (distance, u, v)
        assert best is not None
        _, u, v = best
        network.add_edge(u, v)
        _annotate_delay(network, u, v, ms_per_unit, rand)
        components = [sorted(c, key=str) for c in nx.connected_components(graph)]


def paper_hosting_networks(rng: RandomSource = None, scale: float = 1.0):
    """The three BRITE hosting networks of §VII-C, optionally scaled down.

    Returns a list of :class:`HostingNetwork` with (approximately) the node
    counts 1500, 2000 and 2500 multiplied by *scale*.  The benchmark harness
    uses ``scale < 1`` to keep the runs laptop-sized while preserving the
    N/E ratio of the paper.
    """
    rand = as_rng(rng)
    sizes = [max(10, int(round(n * scale))) for n in (1500, 2000, 2500)]
    return [barabasi_albert(n, edges_per_node=2, rng=rand,
                            name=f"brite-{n}") for n in sizes]
