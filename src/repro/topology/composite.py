"""Two-level composite topologies (paper §VII-D, Fig. 14).

A *composite query* is a two-level hierarchical topology where both levels
are regular structures: the root level (e.g. a ring, star or clique of
groups) models wide-area, inter-site connectivity, and each group (again a
ring, star or clique) models a local, intra-site structure.  The paper notes
that many practical applications — multicast trees, distributed hash tables,
replication rings — follow exactly this shape.

Every edge is tagged with a ``level`` attribute: ``0`` for root-level
(inter-group) links and ``1`` for intra-group links, so a single constraint
expression can impose different delay windows per level (see
:func:`repro.constraints.builder.per_level_delay_windows`) or the workload
generator can attach explicit per-edge delay windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Type

from repro.graphs.network import Network
from repro.graphs.query import QueryNetwork
from repro.topology.regular import REGULAR_SHAPES

#: Edge attribute holding the hierarchy level (0 = root/wide-area, 1 = group/local).
LEVEL_ATTR = "level"


@dataclass(frozen=True)
class CompositeSpec:
    """Shape specification of a two-level composite topology.

    Attributes
    ----------
    root_shape:
        Shape of the root level: ``"ring"``, ``"star"``, ``"clique"`` or ``"line"``.
    num_groups:
        Number of groups (root-level vertices).
    group_shape:
        Shape of each group.
    group_size:
        Number of nodes per group.
    """

    root_shape: str = "ring"
    num_groups: int = 4
    group_shape: str = "star"
    group_size: int = 4

    def __post_init__(self) -> None:
        for shape, label in ((self.root_shape, "root_shape"), (self.group_shape, "group_shape")):
            if shape not in REGULAR_SHAPES:
                raise ValueError(
                    f"{label} must be one of {sorted(REGULAR_SHAPES)}, got {shape!r}")
        if self.num_groups < 2:
            raise ValueError(f"num_groups must be >= 2, got {self.num_groups}")
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")

    @property
    def total_nodes(self) -> int:
        """Total node count of the generated topology."""
        return self.num_groups * self.group_size


def composite(spec: CompositeSpec, cls: Type[Network] = QueryNetwork,
              name: Optional[str] = None) -> Network:
    """Build the two-level composite topology described by *spec*.

    Nodes are labelled ``g{group}_{index}``; node ``g{k}_0`` is the group's
    *gateway* and carries the root-level links.  Every node is annotated with
    ``group`` (its group index) and ``gateway`` (boolean); every edge carries
    the ``level`` attribute.
    """
    network = cls(name=name or
                  f"composite-{spec.root_shape}{spec.num_groups}-{spec.group_shape}{spec.group_size}")

    # Intra-group structures.
    gateways: List[str] = []
    for group in range(spec.num_groups):
        prefix = f"g{group}_"
        group_net = REGULAR_SHAPES[spec.group_shape](spec.group_size, prefix=prefix) \
            if spec.group_size > 1 else None
        if spec.group_size == 1:
            node = f"{prefix}0"
            network.add_node(node, group=group, gateway=True)
            gateways.append(node)
            continue
        for node in group_net.nodes():
            network.add_node(node, group=group, gateway=(node == f"{prefix}0"))
        for u, v in group_net.edges():
            network.add_edge(u, v, **{LEVEL_ATTR: 1})
        gateways.append(f"{prefix}0")

    # Root-level structure over the gateways.  A ring of two groups degenerates
    # to a single inter-gateway link, i.e. a line.
    root_shape = spec.root_shape
    if root_shape == "ring" and spec.num_groups == 2:
        root_shape = "line"
    root_net = REGULAR_SHAPES[root_shape](spec.num_groups, prefix="r")
    root_nodes = root_net.nodes()
    index_of = {node: position for position, node in enumerate(root_nodes)}
    for u, v in root_net.edges():
        gu, gv = gateways[index_of[u]], gateways[index_of[v]]
        if network.has_edge(gu, gv):
            # A tiny root structure over a tiny group structure can duplicate
            # an intra-group edge only if both endpoints are in the same
            # group, which cannot happen: gateways are in distinct groups.
            continue
        network.add_edge(gu, gv, **{LEVEL_ATTR: 0})

    return network


def composite_series(total_sizes: List[int], root_shape: str = "ring",
                     group_shape: str = "star", group_size: int = 4,
                     cls: Type[Network] = QueryNetwork) -> List[Network]:
    """A series of composite topologies with (approximately) the given total sizes.

    Used by the Fig. 14 experiment: the number of groups is derived from each
    requested total size while the group size stays fixed, mirroring how the
    paper grows its composite queries.
    """
    networks = []
    for total in total_sizes:
        num_groups = max(2, round(total / group_size))
        spec = CompositeSpec(root_shape=root_shape, num_groups=num_groups,
                             group_shape=group_shape, group_size=group_size)
        networks.append(composite(spec, cls=cls))
    return networks


def level_edges(network: Network, level: int) -> List:
    """All edges of *network* tagged with the given hierarchy level."""
    return [(u, v) for u, v in network.edges()
            if network.get_edge_attr(u, v, LEVEL_ATTR) == level]
