"""Link-delay models shared by the topology generators.

All generators in this package describe link latency the same way the
PlanetLab all-pairs-ping trace does (paper §VI-A, §VII-B): each edge carries
``minDelay``, ``avgDelay`` and ``maxDelay`` attributes in milliseconds.  The
helpers here derive those three values either from Euclidean distance between
node coordinates (BRITE-style generators) or from explicit base values
(regular/composite topologies), adding a controlled amount of jitter so the
three values are ordered and realistic.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.utils.rng import RandomSource, as_rng

#: Milliseconds of propagation delay per coordinate-space distance unit.
DEFAULT_MS_PER_UNIT = 1.0
#: Floor on any delay value, in milliseconds.
MIN_DELAY_MS = 0.1


def euclidean_distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Plain 2-D Euclidean distance between two coordinate pairs."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def delay_from_distance(distance: float, ms_per_unit: float = DEFAULT_MS_PER_UNIT,
                        base_ms: float = 0.5) -> float:
    """Propagation delay (ms) for a link spanning *distance* coordinate units."""
    return max(MIN_DELAY_MS, base_ms + distance * ms_per_unit)


def delay_triple(base_delay: float, rng: RandomSource = None,
                 jitter_fraction: float = 0.15,
                 queueing_fraction: float = 0.35) -> Dict[str, float]:
    """Build a ``{minDelay, avgDelay, maxDelay}`` record around *base_delay*.

    Parameters
    ----------
    base_delay:
        The propagation (minimum) delay of the link in milliseconds.
    rng:
        Randomness source; the jitter is sampled so repeated calls with the
        same seed are reproducible.
    jitter_fraction:
        Relative spread of the average above the minimum.
    queueing_fraction:
        Relative spread of the maximum above the average (bursty queueing).

    Returns
    -------
    dict
        ``minDelay <= avgDelay <= maxDelay`` always holds.
    """
    if base_delay <= 0:
        raise ValueError(f"base_delay must be positive, got {base_delay}")
    rand = as_rng(rng)
    min_delay = max(MIN_DELAY_MS, base_delay)
    avg_delay = min_delay * (1.0 + jitter_fraction * rand.random())
    max_delay = avg_delay * (1.0 + queueing_fraction * rand.random()) + 0.5
    return {
        "minDelay": round(min_delay, 3),
        "avgDelay": round(avg_delay, 3),
        "maxDelay": round(max_delay, 3),
    }


def annotate_edge_delay(network, u, v, base_delay: float, rng: RandomSource = None,
                        **extra) -> None:
    """Attach a delay triple (plus any extra attributes) to edge ``(u, v)``."""
    attrs = delay_triple(base_delay, rng)
    attrs.update(extra)
    network.update_edge(u, v, **attrs)


def delay_between_coordinates(network, u, v, ms_per_unit: float = DEFAULT_MS_PER_UNIT,
                              x_attr: str = "x", y_attr: str = "y") -> float:
    """Base delay implied by the coordinates stored on two nodes."""
    ax = network.get_node_attr(u, x_attr)
    ay = network.get_node_attr(u, y_attr)
    bx = network.get_node_attr(v, x_attr)
    by = network.get_node_attr(v, y_attr)
    if None in (ax, ay, bx, by):
        raise ValueError(
            f"nodes {u!r} and {v!r} must both carry {x_attr!r}/{y_attr!r} coordinates")
    return delay_from_distance(euclidean_distance((ax, ay), (bx, by)), ms_per_unit)
