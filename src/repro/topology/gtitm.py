"""GT-ITM-style transit-stub hierarchical topologies.

GT-ITM [19] is the other classic Internet topology generator the paper cites
(§VI-A).  Its transit-stub model produces hierarchical graphs: a small core of
*transit* domains, each transit node sponsoring several *stub* domains of
leaf-ish nodes.  NETEMBED's evaluation uses BRITE rather than GT-ITM, but the
transit-stub structure is a useful additional hosting-network family for the
examples and for stress-testing the algorithms on strongly clustered
infrastructure, so the reproduction includes it.

Delay conventions match the rest of :mod:`repro.topology`: transit-transit
links are slow (wide-area), transit-stub links intermediate, intra-stub links
fast, and each edge carries the ``minDelay``/``avgDelay``/``maxDelay`` triple.
"""

from __future__ import annotations

from typing import List, Optional, Type

from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Network
from repro.topology.delays import delay_triple
from repro.utils.rng import RandomSource, as_rng


def transit_stub(num_transit_domains: int = 2, transit_size: int = 4,
                 stubs_per_transit_node: int = 2, stub_size: int = 4,
                 stub_edge_probability: float = 0.5,
                 transit_edge_probability: float = 0.6,
                 rng: RandomSource = None,
                 cls: Type[Network] = HostingNetwork,
                 name: Optional[str] = None) -> Network:
    """Generate a transit-stub hosting network.

    Parameters
    ----------
    num_transit_domains:
        Number of transit (core) domains.
    transit_size:
        Nodes per transit domain.
    stubs_per_transit_node:
        Stub domains attached to each transit node.
    stub_size:
        Nodes per stub domain.
    stub_edge_probability, transit_edge_probability:
        Extra-edge densities inside stub and transit domains (a spanning ring
        is always present so every domain is connected).
    rng:
        Randomness source.

    Returns
    -------
    Network
        A connected hierarchical hosting network.  Nodes carry ``tier``
        (``"transit"`` or ``"stub"``), ``domain`` and ``name`` attributes.
    """
    if num_transit_domains < 1 or transit_size < 1 or stub_size < 1:
        raise ValueError("domain counts and sizes must all be >= 1")
    rand = as_rng(rng)
    network = cls(name=name or "transit-stub")

    def add_domain(prefix: str, size: int, tier: str, domain: str,
                   extra_probability: float, base_delay: float) -> List[str]:
        """A connected domain: ring backbone plus random chords."""
        nodes = []
        for index in range(size):
            node = f"{prefix}{index}"
            network.add_node(node, name=node, tier=tier, domain=domain)
            nodes.append(node)
        if size == 1:
            return nodes
        for index in range(size):
            u, v = nodes[index], nodes[(index + 1) % size]
            if not network.has_edge(u, v) and u != v:
                network.add_edge(u, v, **delay_triple(base_delay * rand.uniform(0.6, 1.4), rand))
        for i in range(size):
            for j in range(i + 2, size):
                if (i == 0 and j == size - 1) or network.has_edge(nodes[i], nodes[j]):
                    continue
                if rand.random() < extra_probability:
                    network.add_edge(nodes[i], nodes[j],
                                     **delay_triple(base_delay * rand.uniform(0.6, 1.4), rand))
        return nodes

    # Transit domains.
    transit_nodes_by_domain: List[List[str]] = []
    for t in range(num_transit_domains):
        domain_nodes = add_domain(f"t{t}_", transit_size, "transit", f"transit{t}",
                                  transit_edge_probability, base_delay=35.0)
        transit_nodes_by_domain.append(domain_nodes)

    # Inter-transit-domain links: connect consecutive domains (ring of domains)
    # through their first nodes, plus one random cross link per pair.
    for t in range(num_transit_domains):
        if num_transit_domains == 1:
            break
        u = transit_nodes_by_domain[t][0]
        v = transit_nodes_by_domain[(t + 1) % num_transit_domains][0]
        if not network.has_edge(u, v) and u != v:
            network.add_edge(u, v, **delay_triple(rand.uniform(60.0, 180.0), rand))

    # Stub domains.
    stub_counter = 0
    for t, transit_domain in enumerate(transit_nodes_by_domain):
        for transit_node in transit_domain:
            for _ in range(stubs_per_transit_node):
                domain_nodes = add_domain(f"s{stub_counter}_", stub_size, "stub",
                                          f"stub{stub_counter}",
                                          stub_edge_probability, base_delay=4.0)
                # Uplink from the stub's first node to its transit node.
                network.add_edge(domain_nodes[0], transit_node,
                                 **delay_triple(rand.uniform(8.0, 25.0), rand))
                stub_counter += 1

    return network
