"""A synthetic PlanetLab-like all-pairs delay trace (paper §VII-B).

The paper's PlanetLab experiments use the "all-sites-pings" trace [21]: an
all-pairs characterisation of ~296 PlanetLab sites giving the minimum,
average and maximum ping delay between every pair of responding sites, for a
total of 28,996 measured edges (about two thirds of the full clique — some
sites were down or not running the measurement daemon).

That trace is not redistributable / not available offline, so this module
*simulates* it (see DESIGN.md, "Substitutions").  The generator reproduces
the structural properties the paper's experiments actually rely on:

* **scale** — ≈296 sites and ≈29k measured edges (a dense near-clique);
* **delay structure** — sites grouped into geographic regions; intra-region
  delays are small (a few to a few tens of ms), inter-region delays grow with
  the region distance (tens to hundreds of ms);
* **delay-band occupancy** — a substantial fraction of links falls in the
  10–100 ms band used by the clique experiment (§VII-D) and the bulk of links
  falls in the 25–175 ms band used by the irregular composite experiment,
  with both intra-site (1–75 ms) and wide-area (75–350 ms) links abundant for
  the regular composite experiment.

Each node carries ``name``, ``region``, ``x``/``y`` coordinates and an
``osType``; each edge carries ``minDelay``/``avgDelay``/``maxDelay``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.graphs.hosting import HostingNetwork
from repro.topology.delays import delay_triple, euclidean_distance
from repro.utils.rng import RandomSource, as_rng


@dataclass(frozen=True)
class Region:
    """A geographic region of PlanetLab sites.

    Coordinates are in "millisecond units": the Euclidean distance between two
    region centres approximates the propagation delay between their sites.
    """

    name: str
    center: Tuple[float, float]
    weight: float          #: fraction of all sites located in this region
    spread: float          #: intra-region coordinate spread (ms units)


#: Default region layout.  Inter-centre distances span ≈45–230 ms, which
#: produces the wide-area delay mix the paper's composite experiments rely on.
DEFAULT_REGIONS: Sequence[Region] = (
    Region("us-east", (0.0, 0.0), 0.28, 9.0),
    Region("us-west", (48.0, 8.0), 0.17, 9.0),
    Region("europe", (65.0, -48.0), 0.27, 11.0),
    Region("asia", (150.0, -10.0), 0.16, 13.0),
    Region("south-america", (55.0, 75.0), 0.07, 10.0),
    Region("australia", (175.0, 65.0), 0.05, 9.0),
)

#: Operating systems observed on PlanetLab nodes, with sampling weights.
OS_CHOICES: Sequence[Tuple[str, float]] = (
    ("linux-2.6", 0.7),
    ("linux-2.4", 0.2),
    ("bsd", 0.1),
)


def synthetic_planetlab_trace(num_sites: int = 296,
                              edge_probability: float = 0.665,
                              regions: Sequence[Region] = DEFAULT_REGIONS,
                              rng: RandomSource = None,
                              name: str = "planetlab") -> HostingNetwork:
    """Generate the synthetic PlanetLab-like hosting network.

    Parameters
    ----------
    num_sites:
        Number of sites (the paper's trace lists 296).
    edge_probability:
        Probability that the delay between a given pair of sites was measured
        (the real trace covers ≈66.5 % of all pairs: 28,996 of 43,660).
    regions:
        Geographic layout; the default matches the documented delay bands.
    rng:
        Randomness source (seed for reproducible hosting networks).
    name:
        Network name.

    Returns
    -------
    HostingNetwork
        A connected, dense, delay-annotated hosting network.
    """
    if num_sites < 2:
        raise ValueError(f"num_sites must be >= 2, got {num_sites}")
    if not 0 < edge_probability <= 1:
        raise ValueError(f"edge_probability must be in (0, 1], got {edge_probability}")
    total_weight = sum(region.weight for region in regions)
    if total_weight <= 0:
        raise ValueError("region weights must sum to a positive value")

    rand = as_rng(rng)
    network = HostingNetwork(name=name)

    # --- place sites ---------------------------------------------------- #
    site_regions: List[Region] = []
    counts = _apportion_sites(num_sites, regions, total_weight)
    site_index = 0
    for region, count in zip(regions, counts):
        for _ in range(count):
            node = f"site{site_index:03d}"
            x = rand.gauss(region.center[0], region.spread)
            y = rand.gauss(region.center[1], region.spread)
            network.add_node(
                node,
                name=node,
                region=region.name,
                x=round(x, 3),
                y=round(y, 3),
                osType=_weighted_choice(rand, OS_CHOICES),
                cpuLoad=round(rand.uniform(0.05, 0.95), 3),
                memMB=rand.choice([512, 1024, 2048, 4096]),
            )
            site_regions.append(region)
            site_index += 1

    nodes = network.nodes()
    coords = {node: (network.get_node_attr(node, "x"), network.get_node_attr(node, "y"))
              for node in nodes}

    # --- all-pairs measurements ------------------------------------------ #
    for i in range(len(nodes)):
        for j in range(i + 1, len(nodes)):
            if rand.random() > edge_probability:
                continue   # pair not measured (site down / daemon missing)
            u, v = nodes[i], nodes[j]
            base = max(0.8, euclidean_distance(coords[u], coords[v]))
            network.add_edge(u, v, **delay_triple(base, rand))

    _ensure_connected(network, coords, rand)
    return network


def _apportion_sites(num_sites: int, regions: Sequence[Region], total_weight: float
                     ) -> List[int]:
    """Split *num_sites* across regions proportionally to their weights."""
    counts = [int(num_sites * region.weight / total_weight) for region in regions]
    # Distribute the rounding remainder to the largest regions first.
    remainder = num_sites - sum(counts)
    order = sorted(range(len(regions)), key=lambda k: -regions[k].weight)
    for k in range(remainder):
        counts[order[k % len(order)]] += 1
    return counts


def _weighted_choice(rand, choices: Sequence[Tuple[str, float]]) -> str:
    total = sum(weight for _, weight in choices)
    pick = rand.uniform(0, total)
    cumulative = 0.0
    for value, weight in choices:
        cumulative += weight
        if pick <= cumulative:
            return value
    return choices[-1][0]


def _ensure_connected(network: HostingNetwork, coords, rand) -> None:
    """Bridge any disconnected components (extremely rare at default density)."""
    import networkx as nx

    graph = network.graph
    components = [sorted(c, key=str) for c in nx.connected_components(graph)]
    while len(components) > 1:
        u = components[0][0]
        v = min(components[1], key=lambda n: euclidean_distance(coords[u], coords[n]))
        base = max(0.8, euclidean_distance(coords[u], coords[v]))
        network.add_edge(u, v, **delay_triple(base, rand))
        components = [sorted(c, key=str) for c in nx.connected_components(graph)]


def delay_band_summary(network: HostingNetwork,
                       bands: Sequence[Tuple[float, float]] = ((10, 100), (25, 175),
                                                               (1, 75), (75, 350)),
                       attr: str = "avgDelay") -> Dict[str, float]:
    """Fraction of edges in each delay band (diagnostics for the substitution).

    The paper quotes ≈6,700 PlanetLab edges in 10–100 ms and ≈70 % of edges in
    25–175 ms; this helper lets tests and EXPERIMENTS.md verify that the
    synthetic trace occupies the same bands to a reasonable degree.
    """
    summary = {}
    for low, high in bands:
        summary[f"{low:g}-{high:g}ms"] = network.fraction_of_edges_in_range(attr, low, high)
    return summary
