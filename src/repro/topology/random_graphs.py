"""Small random-graph helpers used by tests and property-based generators.

These are deliberately simple (Erdős–Rényi with a connectivity repair pass,
random trees, random connected graphs with an exact edge budget) — they exist
so the test suite and hypothesis strategies do not depend on the heavier
domain generators in :mod:`repro.topology.brite` and friends.
"""

from __future__ import annotations

from typing import Type

from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Network
from repro.utils.rng import RandomSource, as_rng


def random_tree(num_nodes: int, rng: RandomSource = None,
                cls: Type[Network] = Network, prefix: str = "n") -> Network:
    """A uniformly random labelled tree (random attachment construction)."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    rand = as_rng(rng)
    network = cls(name=f"tree{num_nodes}")
    nodes = [f"{prefix}{i}" for i in range(num_nodes)]
    for node in nodes:
        network.add_node(node)
    for index in range(1, num_nodes):
        parent = nodes[rand.randrange(index)]
        network.add_edge(parent, nodes[index])
    return network


def connected_gnp(num_nodes: int, probability: float, rng: RandomSource = None,
                  cls: Type[Network] = HostingNetwork, prefix: str = "n") -> Network:
    """An Erdős–Rényi G(n, p) graph made connected by adding a random spanning tree.

    The spanning tree is added first, then every remaining pair is linked with
    probability *probability*, so the result is connected for every parameter
    choice while remaining G(n, p)-like for p well above the connectivity
    threshold.
    """
    if not 0 <= probability <= 1:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    rand = as_rng(rng)
    network = random_tree(num_nodes, rand, cls=cls, prefix=prefix)
    network.name = f"gnp{num_nodes}-{probability:g}"
    nodes = network.nodes()
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            u, v = nodes[i], nodes[j]
            if not network.has_edge(u, v) and rand.random() < probability:
                network.add_edge(u, v)
    return network


def connected_graph_with_edges(num_nodes: int, num_edges: int,
                               rng: RandomSource = None,
                               cls: Type[Network] = HostingNetwork,
                               prefix: str = "n") -> Network:
    """A connected graph with exactly *num_edges* edges (>= num_nodes - 1)."""
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges < num_nodes - 1 or num_edges > max_edges:
        raise ValueError(
            f"num_edges must be in [{num_nodes - 1}, {max_edges}], got {num_edges}")
    rand = as_rng(rng)
    network = random_tree(num_nodes, rand, cls=cls, prefix=prefix)
    network.name = f"connected{num_nodes}-{num_edges}"
    nodes = network.nodes()
    candidates = [(nodes[i], nodes[j])
                  for i in range(num_nodes) for j in range(i + 1, num_nodes)
                  if not network.has_edge(nodes[i], nodes[j])]
    rand.shuffle(candidates)
    for u, v in candidates[: num_edges - network.num_edges]:
        network.add_edge(u, v)
    return network


def annotate_uniform_delays(network: Network, low: float = 1.0, high: float = 100.0,
                            rng: RandomSource = None) -> Network:
    """Attach uniform-random delay triples to every edge of *network* (in place)."""
    if low <= 0 or high < low:
        raise ValueError(f"need 0 < low <= high, got low={low}, high={high}")
    from repro.topology.delays import delay_triple

    rand = as_rng(rng)
    for u, v in network.edges():
        network.update_edge(u, v, **delay_triple(rand.uniform(low, high), rand))
    return network
