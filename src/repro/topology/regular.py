"""Regular topologies: rings, stars, cliques, lines, trees, grids, hypercubes.

Paper §VII-A (second approach) uses synthetically generated regular
topologies as query networks — "typical for applications that exhibit a
regular communication structure, as would be the case in high-performance
grid applications".  §VII-D uses cliques and two-level composites of regular
structures as the hard, under-constrained workloads.

Every generator returns a network of the requested class (default
:class:`~repro.graphs.query.QueryNetwork`) whose nodes are labelled
``f"{prefix}{i}"``.  Edge/node attributes are *not* attached here; the
workload generators in :mod:`repro.workloads` layer the delay windows and
other constraints on top.
"""

from __future__ import annotations

from typing import Callable, Dict, Type

from repro.graphs.network import Network
from repro.graphs.query import QueryNetwork


def _make(cls: Type[Network], name: str, num_nodes: int, prefix: str) -> Network:
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    network = cls(name=name)
    for index in range(num_nodes):
        network.add_node(f"{prefix}{index}")
    return network


def _node(prefix: str, index: int) -> str:
    return f"{prefix}{index}"


def ring(num_nodes: int, cls: Type[Network] = QueryNetwork, prefix: str = "n") -> Network:
    """A cycle of *num_nodes* nodes (at least 3)."""
    if num_nodes < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {num_nodes}")
    network = _make(cls, f"ring{num_nodes}", num_nodes, prefix)
    for index in range(num_nodes):
        network.add_edge(_node(prefix, index), _node(prefix, (index + 1) % num_nodes))
    return network


def line(num_nodes: int, cls: Type[Network] = QueryNetwork, prefix: str = "n") -> Network:
    """A simple path of *num_nodes* nodes."""
    if num_nodes < 2:
        raise ValueError(f"a line needs at least 2 nodes, got {num_nodes}")
    network = _make(cls, f"line{num_nodes}", num_nodes, prefix)
    for index in range(num_nodes - 1):
        network.add_edge(_node(prefix, index), _node(prefix, index + 1))
    return network


def star(num_leaves: int, cls: Type[Network] = QueryNetwork, prefix: str = "n") -> Network:
    """A hub node connected to *num_leaves* leaves (node 0 is the hub)."""
    if num_leaves < 1:
        raise ValueError(f"a star needs at least 1 leaf, got {num_leaves}")
    network = _make(cls, f"star{num_leaves}", num_leaves + 1, prefix)
    hub = _node(prefix, 0)
    for index in range(1, num_leaves + 1):
        network.add_edge(hub, _node(prefix, index))
    return network


def clique(num_nodes: int, cls: Type[Network] = QueryNetwork, prefix: str = "n") -> Network:
    """A complete graph on *num_nodes* nodes (the §VII-D worst-case query)."""
    if num_nodes < 2:
        raise ValueError(f"a clique needs at least 2 nodes, got {num_nodes}")
    network = _make(cls, f"clique{num_nodes}", num_nodes, prefix)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            network.add_edge(_node(prefix, i), _node(prefix, j))
    return network


def balanced_tree(branching: int, depth: int, cls: Type[Network] = QueryNetwork,
                  prefix: str = "n") -> Network:
    """A balanced tree with the given branching factor and depth (root at index 0)."""
    if branching < 1 or depth < 1:
        raise ValueError("branching and depth must both be >= 1")
    num_nodes = sum(branching ** level for level in range(depth + 1))
    network = _make(cls, f"tree{branching}x{depth}", num_nodes, prefix)
    for index in range(1, num_nodes):
        parent = (index - 1) // branching
        network.add_edge(_node(prefix, parent), _node(prefix, index))
    return network


def grid(rows: int, cols: int, cls: Type[Network] = QueryNetwork,
         prefix: str = "n") -> Network:
    """A rows×cols mesh with 4-neighbour connectivity."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must both be >= 1")
    network = _make(cls, f"grid{rows}x{cols}", rows * cols, prefix)

    def index(r, c):
        return _node(prefix, r * cols + c)

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                network.add_edge(index(r, c), index(r, c + 1))
            if r + 1 < rows:
                network.add_edge(index(r, c), index(r + 1, c))
    return network


def hypercube(dimension: int, cls: Type[Network] = QueryNetwork,
              prefix: str = "n") -> Network:
    """A *dimension*-dimensional hypercube (2**dimension nodes)."""
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    num_nodes = 2 ** dimension
    network = _make(cls, f"hypercube{dimension}", num_nodes, prefix)
    for node in range(num_nodes):
        for bit in range(dimension):
            other = node ^ (1 << bit)
            if other > node:
                network.add_edge(_node(prefix, node), _node(prefix, other))
    return network


#: Named constructors for the regular shapes used by composite topologies.
REGULAR_SHAPES: Dict[str, Callable[..., Network]] = {
    "ring": ring,
    "line": line,
    "star": lambda n, **kw: star(max(1, n - 1), **kw),   # n total nodes
    "clique": clique,
}


def regular_by_name(shape: str, num_nodes: int, cls: Type[Network] = QueryNetwork,
                    prefix: str = "n") -> Network:
    """Build one of the named regular shapes with *num_nodes* total nodes."""
    if shape not in REGULAR_SHAPES:
        raise ValueError(f"unknown shape {shape!r}; expected one of {sorted(REGULAR_SHAPES)}")
    return REGULAR_SHAPES[shape](num_nodes, cls=cls, prefix=prefix)
