"""Small shared utilities used across the NETEMBED reproduction.

The helpers here deliberately stay free of any domain knowledge so they can be
used by every subpackage (graphs, constraints, core algorithms, service layer,
benchmark harness) without creating import cycles.
"""

from repro.utils.rng import RandomSource, as_rng, spawn_rngs
from repro.utils.timing import Deadline, Stopwatch, TimeoutExpired
from repro.utils.validation import (
    require,
    require_positive,
    require_non_negative,
    require_in_range,
    require_type,
)

__all__ = [
    "RandomSource",
    "as_rng",
    "spawn_rngs",
    "Deadline",
    "Stopwatch",
    "TimeoutExpired",
    "require",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_type",
]
