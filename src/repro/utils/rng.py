"""Deterministic random-number handling.

Every stochastic component of the reproduction (topology generators, query
samplers, the RWB algorithm, the metaheuristic baselines) accepts either an
integer seed, a :class:`random.Random` instance, a :class:`numpy.random.Generator`
or ``None``.  The :func:`as_rng` helper normalises all of those into a
``random.Random`` so experiments are reproducible end to end when a seed is
threaded through the experiment harness.

We use :mod:`random` rather than numpy generators for the search algorithms
because the candidate sets being sampled are small Python collections; numpy
is reserved for the bulk numeric work in the topology generators.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Union

import numpy as np

#: Types accepted wherever a source of randomness is expected.
RandomSource = Union[None, int, random.Random, np.random.Generator]


def as_rng(source: RandomSource = None) -> random.Random:
    """Normalise *source* into a :class:`random.Random` instance.

    Parameters
    ----------
    source:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, an
        existing ``random.Random`` (returned as-is), or a
        ``numpy.random.Generator`` (a derived ``random.Random`` seeded from
        it is returned).

    Returns
    -------
    random.Random
        A generator usable by the pure-Python search code.
    """
    if source is None:
        return random.Random()
    if isinstance(source, random.Random):
        return source
    if isinstance(source, (int, np.integer)):
        return random.Random(int(source))
    if isinstance(source, np.random.Generator):
        # Derive a stable 64-bit seed from the numpy generator's stream.
        return random.Random(int(source.integers(0, 2**63 - 1)))
    raise TypeError(f"Cannot interpret {type(source)!r} as a random source")


def as_numpy_rng(source: RandomSource = None) -> np.random.Generator:
    """Normalise *source* into a :class:`numpy.random.Generator`."""
    if source is None:
        return np.random.default_rng()
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    if isinstance(source, random.Random):
        return np.random.default_rng(source.getrandbits(63))
    raise TypeError(f"Cannot interpret {type(source)!r} as a random source")


def spawn_rngs(source: RandomSource, count: int) -> List[random.Random]:
    """Create *count* independent generators derived from *source*.

    Used by the experiment harness to give every repetition of an experiment
    its own stream while remaining reproducible from a single top-level seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    base = as_rng(source)
    return [random.Random(base.getrandbits(63)) for _ in range(count)]


def sample_without_replacement(rng: random.Random, items: Iterable, k: int) -> list:
    """Sample *k* distinct elements from *items* (which may be any iterable)."""
    pool = list(items)
    if k > len(pool):
        raise ValueError(f"cannot sample {k} items from a pool of {len(pool)}")
    return rng.sample(pool, k)


def shuffled(rng: random.Random, items: Iterable) -> list:
    """Return a new list with the elements of *items* in random order."""
    pool = list(items)
    rng.shuffle(pool)
    return pool
