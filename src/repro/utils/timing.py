"""Wall-clock timing primitives: stopwatches and search deadlines.

The NETEMBED service trades completeness for timely convergence via timeouts
(paper §II point (2) and §VII-E).  The search algorithms poll a
:class:`Deadline` object at every node expansion; when it expires the search
raises or returns early with whatever embeddings were found so far, and the
service classifies the result as *partial* or *inconclusive*.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional


class TimeoutExpired(Exception):
    """Raised internally when a search exceeds its deadline.

    The search drivers catch this and convert it into a partial or
    inconclusive :class:`~repro.core.result.EmbeddingResult`; it never
    escapes to users of the public API.
    """


@dataclass
class Deadline:
    """A wall-clock budget for a single embedding search.

    Parameters
    ----------
    seconds:
        Budget in seconds.  ``None`` or ``inf`` means "no deadline".
    """

    seconds: Optional[float] = None
    _start: float = field(default_factory=time.perf_counter, repr=False)
    #: Absolute perf_counter value at which the budget runs out (``inf`` for
    #: unlimited deadlines).  Precomputed so the hot-path :meth:`check` —
    #: called at every search-tree expansion — is a single comparison
    #: instead of a subtraction chain through three properties.
    _expires_at: float = field(default=math.inf, init=False, repr=False)

    def __post_init__(self) -> None:
        self._recompute()

    def _recompute(self) -> None:
        if self.seconds is None or math.isinf(self.seconds):
            self._expires_at = math.inf
        else:
            self._expires_at = self._start + self.seconds

    @classmethod
    def unlimited(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(seconds=None)

    def restart(self) -> None:
        """Reset the reference start time to now."""
        self._start = time.perf_counter()
        self._recompute()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed since the deadline was created or restarted."""
        return time.perf_counter() - self._start

    @property
    def remaining(self) -> float:
        """Seconds remaining; ``inf`` for unlimited deadlines."""
        if self.seconds is None or math.isinf(self.seconds):
            return math.inf
        return self.seconds - self.elapsed

    def expired(self) -> bool:
        """Whether the budget has been exhausted."""
        return time.perf_counter() >= self._expires_at

    def check(self) -> None:
        """Raise :class:`TimeoutExpired` if the budget has been exhausted."""
        if time.perf_counter() >= self._expires_at:
            raise TimeoutExpired(
                f"search exceeded its {self.seconds:.3f}s budget"
            )


class Stopwatch:
    """Minimal perf_counter stopwatch used for per-phase timing statistics."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def reset(self) -> None:
        self._start = None
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (including the running segment)."""
        running = 0.0
        if self._start is not None:
            running = time.perf_counter() - self._start
        return self._elapsed + running

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
