"""Lightweight argument-validation helpers.

These keep the public API's error messages consistent ("got ..." style) and
avoid repeating boilerplate ``if not ...: raise ValueError`` blocks in every
constructor across the package.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def require_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> None:
    """Raise ``TypeError`` unless *value* is an instance of *types*."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = ", ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be of type {expected}, got {type(value).__name__}")


def require_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
