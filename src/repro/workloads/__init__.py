"""Workload (query) generators mirroring the paper's evaluation (§VII)."""

from repro.workloads.arrivals import (
    Arrival,
    arrival_schedule,
    diurnal_rate,
    inhomogeneous_poisson_arrivals,
    poisson_arrivals,
)
from repro.workloads.churn import (
    ChurnConfig,
    ChurnProcess,
    ChurnTick,
    churn_embedding_suite,
)
from repro.workloads.infeasible import make_globally_infeasible, tighten_random_edges
from repro.workloads.queries import (
    DELAY_WINDOW_CONSTRAINT,
    Workload,
    clique_query,
    clique_query_series,
    composite_query,
    composite_query_series,
    cross_partition_query,
    subgraph_query,
    subgraph_query_series,
)
from repro.workloads.suites import (
    SUITES,
    ExperimentSuite,
    SuiteScale,
    brite_host,
    build_clique_suite,
    build_composite_suite,
    build_subgraph_suite,
    federated_planetlab,
    planetlab_host,
)

__all__ = [
    "Arrival",
    "arrival_schedule",
    "diurnal_rate",
    "inhomogeneous_poisson_arrivals",
    "poisson_arrivals",
    "ChurnConfig",
    "ChurnProcess",
    "ChurnTick",
    "churn_embedding_suite",
    "DELAY_WINDOW_CONSTRAINT",
    "Workload",
    "subgraph_query",
    "subgraph_query_series",
    "clique_query",
    "clique_query_series",
    "composite_query",
    "composite_query_series",
    "cross_partition_query",
    "make_globally_infeasible",
    "tighten_random_edges",
    "SUITES",
    "ExperimentSuite",
    "SuiteScale",
    "planetlab_host",
    "brite_host",
    "federated_planetlab",
    "build_subgraph_suite",
    "build_clique_suite",
    "build_composite_suite",
]
