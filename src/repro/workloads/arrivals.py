"""Open-loop request arrival processes for load-testing the serving tier.

The serving tier is judged under *open-loop* traffic: requests arrive on a
schedule fixed in advance (a Poisson process), regardless of whether the
server has kept up — exactly the regime in which an unbounded queue melts
down and admission control earns its keep.  Two generators are provided:

* :func:`poisson_arrivals` — a homogeneous Poisson process with rate λ
  (exponential inter-arrival gaps);
* :func:`inhomogeneous_poisson_arrivals` — a time-varying rate λ(t)
  simulated by Lewis & Shedler thinning: candidate arrivals are drawn from
  a homogeneous process at the envelope rate ``rate_max`` and accepted with
  probability ``λ(t)/rate_max``, which reproduces the target process
  exactly as long as ``λ(t) <= rate_max`` everywhere (checked at runtime).

:func:`diurnal_rate` builds the classic day/night rate curve used by the
trace-harness scenarios, so benchmarks can ask for "PlanetLab under a
morning ramp" in one line.

All generators are deterministic under a seeded rng and yield absolute
arrival *offsets* (seconds since the start of the run) in increasing order,
which is what an open-loop driver replays against a wall clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from repro.utils.rng import RandomSource, as_rng


@dataclass(frozen=True)
class Arrival:
    """One scheduled request arrival of an open-loop trace.

    Attributes
    ----------
    offset:
        Seconds after the start of the run at which the request fires.
    index:
        Position in the trace (0-based, increasing with ``offset``).
    tenant:
        The tenant issuing the request (round-robined over the generator's
        ``tenants`` sequence; ``"default"`` when none was given).
    """

    offset: float
    index: int
    tenant: str = "default"


def poisson_arrivals(rate: float, horizon: float,
                     tenants: Optional[Sequence[str]] = None,
                     rng: RandomSource = None) -> Iterator[Arrival]:
    """Yield a homogeneous Poisson arrival trace.

    Parameters
    ----------
    rate:
        Mean arrival rate λ in requests/second (must be positive).
    horizon:
        Length of the trace in seconds; arrivals beyond it are not emitted.
    tenants:
        Tenant names assigned round-robin; ``None`` = all ``"default"``.
    rng:
        Seed or generator for reproducible traces.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    generator = as_rng(rng)
    names = list(tenants) if tenants else ["default"]
    now = 0.0
    index = 0
    while True:
        now += generator.expovariate(rate)
        if now >= horizon:
            return
        yield Arrival(offset=now, index=index, tenant=names[index % len(names)])
        index += 1


def inhomogeneous_poisson_arrivals(rate_fn: Callable[[float], float],
                                   horizon: float, rate_max: float,
                                   tenants: Optional[Sequence[str]] = None,
                                   rng: RandomSource = None) -> Iterator[Arrival]:
    """Yield an inhomogeneous Poisson trace with rate ``λ(t) = rate_fn(t)``.

    Uses Lewis–Shedler thinning against the constant envelope ``rate_max``;
    a ``rate_fn`` value above the envelope (or below zero) raises, since the
    thinned process would silently stop being Poisson.
    """
    if rate_max <= 0:
        raise ValueError(f"rate_max must be positive, got {rate_max}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    generator = as_rng(rng)
    names = list(tenants) if tenants else ["default"]
    now = 0.0
    index = 0
    while True:
        now += generator.expovariate(rate_max)
        if now >= horizon:
            return
        rate = rate_fn(now)
        if rate < 0 or rate > rate_max * (1 + 1e-9):
            raise ValueError(
                f"rate_fn({now:.3f}) = {rate} outside [0, rate_max={rate_max}]; "
                f"thinning requires 0 <= λ(t) <= rate_max")
        if generator.random() * rate_max < rate:
            yield Arrival(offset=now, index=index,
                          tenant=names[index % len(names)])
            index += 1


def diurnal_rate(base: float, peak: float,
                 period: float = 86400.0) -> Callable[[float], float]:
    """A smooth day/night rate curve oscillating between *base* and *peak*.

    ``λ(t) = base + (peak - base) * (1 - cos(2πt/period)) / 2`` — the curve
    starts at *base* (t=0 is "night"), crests at *peak* half a period in,
    and is bounded by ``peak``, so it can be thinned with
    ``rate_max=peak``.
    """
    if base < 0 or peak < base:
        raise ValueError(
            f"need 0 <= base <= peak, got base={base}, peak={peak}")
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    span = peak - base

    def rate(t: float) -> float:
        return base + span * (1.0 - math.cos(2.0 * math.pi * t / period)) / 2.0

    return rate


def arrival_schedule(arrivals: Iterator[Arrival]) -> List[Arrival]:
    """Materialise an arrival iterator (convenience for replay/inspection)."""
    return list(arrivals)
