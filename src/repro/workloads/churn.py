"""Network-churn workload generation: sparse, journal-replayable model drift.

The :class:`~repro.service.monitor.SimulatedMonitor` refreshes the *whole*
model every tick — every link jitters, every node's load moves — which is the
right stand-in for a full monitoring sweep but the worst case for incremental
recompilation (the delta *is* the network).  Real monitoring feeds are
incremental: between two polls only a small fraction of links and nodes
report changed values.  This module generates that regime:

* :class:`ChurnConfig` — how much of the network moves per tick, and how;
* :class:`ChurnProcess` — applies sparse perturbations through the
  :class:`~repro.graphs.network.Network` mutators (so every tick lands in
  the mutation journal and is replayable by the incremental patch paths),
  with delay jitter anchored to first-observed baselines exactly like the
  monitor (no unbounded drift);
* :func:`churn_embedding_suite` — feasible-by-construction subgraph queries
  sampled *before* any churn, the embed half of an embed→tick→repair loop.

Structural churn (link failures that remove edges outright) is available
behind :attr:`ChurnConfig.edge_failure_probability` for exercising the
full-rebuild fallback; the default configuration is attribute-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Edge, NodeId
from repro.utils.rng import RandomSource, as_rng
from repro.workloads.queries import Workload, subgraph_query

#: Availability flag, same attribute the service's SimulatedMonitor uses
#: (kept literal here so the workload layer does not depend on the service).
UP_ATTR = "up"


@dataclass
class ChurnConfig:
    """How much of the network one churn tick perturbs.

    Fractions are of the current edge/node population; every tick touches at
    least one link (and one node when ``node_fraction > 0``) so a tick is
    never a silent no-op.
    """

    #: Fraction of links whose delay jitters per tick.
    link_fraction: float = 0.05
    #: Fraction of nodes whose load jitters (and up/down process runs) per tick.
    node_fraction: float = 0.05
    #: Maximum relative delay change around the *baseline* (first observed).
    delay_jitter: float = 0.15
    #: Relative cpuLoad change per touched node.
    load_jitter: float = 0.2
    #: Probability a touched up node goes down (``up=False``; attribute-only).
    failure_probability: float = 0.0
    #: Probability a touched down node comes back up.
    recovery_probability: float = 0.5
    #: Probability per tick that one link is *removed* (structural churn;
    #: previously failed links may be restored by later ticks instead).
    edge_failure_probability: float = 0.0
    #: Probability per tick that one previously removed link is restored.
    edge_recovery_probability: float = 0.5

    def __post_init__(self) -> None:
        for name in ("link_fraction", "node_fraction", "delay_jitter",
                     "load_jitter", "failure_probability",
                     "recovery_probability", "edge_failure_probability",
                     "edge_recovery_probability"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class ChurnTick:
    """What one tick changed (the generator-side view of the journal)."""

    index: int
    touched_edges: List[Edge] = field(default_factory=list)
    touched_nodes: List[NodeId] = field(default_factory=list)
    went_down: List[NodeId] = field(default_factory=list)
    came_up: List[NodeId] = field(default_factory=list)
    removed_edges: List[Edge] = field(default_factory=list)
    restored_edges: List[Edge] = field(default_factory=list)

    @property
    def structural(self) -> bool:
        """Whether this tick changed the topology."""
        return bool(self.removed_edges or self.restored_edges)


class ChurnProcess:
    """Applies sparse churn ticks to a hosting network.

    Parameters
    ----------
    network:
        The live hosting network (mutated in place through its mutators, so
        the mutation journal records every touch).
    config:
        Churn intensity knobs.
    rng:
        Randomness source; seed it for reproducible churn traces.
    """

    def __init__(self, network: HostingNetwork,
                 config: Optional[ChurnConfig] = None,
                 rng: RandomSource = None) -> None:
        self._network = network
        self._config = config or ChurnConfig()
        self._rng = as_rng(rng)
        self._baseline_delays: Dict[Tuple[NodeId, NodeId], float] = {}
        #: Links taken down by structural churn, with their attributes, so a
        #: later tick can restore them verbatim.
        self._failed_edges: List[Tuple[Edge, Dict]] = []
        self._ticks = 0

    @property
    def ticks(self) -> int:
        """Number of churn ticks applied so far."""
        return self._ticks

    @property
    def network(self) -> HostingNetwork:
        """The hosting network this process perturbs."""
        return self._network

    # ------------------------------------------------------------------ #

    def _baseline(self, u: NodeId, v: NodeId) -> Optional[float]:
        key = (u, v) if str(u) <= str(v) else (v, u)
        baseline = self._baseline_delays.get(key)
        if baseline is None:
            baseline = self._network.get_edge_attr(u, v, "avgDelay")
            if baseline is not None:
                self._baseline_delays[key] = baseline
        return baseline

    def tick(self) -> ChurnTick:
        """Apply one sparse churn tick and report what moved.

        Delay jitter is multiplicative around the first-observed baseline
        (repeated ticks do not drift), load jitter is multiplicative and
        clamped to ``[0, 1]``, and the up/down process flags availability
        with the monitor's ``up`` attribute rather than removing nodes.
        """
        network = self._network
        config = self._config
        rand = self._rng
        self._ticks += 1
        record = ChurnTick(index=self._ticks)

        edges = network.edges()
        if edges and config.link_fraction > 0:
            count = max(1, round(config.link_fraction * len(edges)))
            for u, v in rand.sample(edges, min(count, len(edges))):
                baseline = self._baseline(u, v)
                if baseline is None:
                    continue
                factor = 1.0 + rand.uniform(-config.delay_jitter,
                                            config.delay_jitter)
                new_avg = max(0.1, baseline * factor)
                min_delay = network.get_edge_attr(u, v, "minDelay", new_avg)
                max_delay = network.get_edge_attr(u, v, "maxDelay", new_avg)
                network.update_edge(u, v,
                                    avgDelay=round(new_avg, 3),
                                    minDelay=round(min(min_delay, new_avg), 3),
                                    maxDelay=round(max(max_delay, new_avg), 3))
                record.touched_edges.append((u, v))

        nodes = network.nodes()
        if nodes and config.node_fraction > 0:
            count = max(1, round(config.node_fraction * len(nodes)))
            for node in rand.sample(nodes, min(count, len(nodes))):
                attrs = network.node_attrs(node)
                updates: Dict[str, object] = {}
                is_up = attrs.get(UP_ATTR, True)
                if is_up and rand.random() < config.failure_probability:
                    updates[UP_ATTR] = False
                    record.went_down.append(node)
                elif not is_up and rand.random() < config.recovery_probability:
                    updates[UP_ATTR] = True
                    record.came_up.append(node)
                load = attrs.get("cpuLoad")
                if load is not None:
                    factor = 1.0 + rand.uniform(-config.load_jitter,
                                                config.load_jitter)
                    updates["cpuLoad"] = round(min(1.0, max(0.0, load * factor)), 3)
                if updates:
                    network.update_node(node, **updates)
                    record.touched_nodes.append(node)

        if config.edge_failure_probability > 0:
            if (self._failed_edges
                    and rand.random() < config.edge_recovery_probability):
                (u, v), attrs = self._failed_edges.pop(
                    rand.randrange(len(self._failed_edges)))
                if network.has_node(u) and network.has_node(v) \
                        and not network.has_edge(u, v):
                    network.add_edge(u, v, **attrs)
                    record.restored_edges.append((u, v))
            if rand.random() < config.edge_failure_probability:
                edges = network.edges()
                if edges:
                    u, v = rand.choice(edges)
                    self._failed_edges.append(
                        ((u, v), dict(network.edge_attrs(u, v))))
                    network.remove_edge(u, v)
                    record.removed_edges.append((u, v))

        return record

    def run(self, cycles: int) -> List[ChurnTick]:
        """Apply several ticks; returns their records."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return [self.tick() for _ in range(cycles)]


def churn_embedding_suite(hosting: HostingNetwork, num_queries: int = 4,
                          query_size: int = 8, slack: float = 0.35,
                          rng: RandomSource = None) -> List[Workload]:
    """Feasible-by-construction queries for an embed→tick→repair loop.

    Sampled as connected subgraphs *before* any churn, with *slack*-wide
    delay windows: wide enough that a sparse jitter tick breaks only some of
    them, which is precisely the regime where repairing beats re-embedding.
    """
    rand = as_rng(rng)
    return [subgraph_query(hosting, query_size, slack=slack, rng=rand)
            for _ in range(num_queries)]
