"""Infeasible-query generation (paper §VII-B, Fig. 10).

The paper measures how long each algorithm takes to *conclude that no
embedding exists*.  Its infeasible queries are "generated from the feasible
queries by changing some of their link attributes (e.g., delays) to some
infeasible values" — the topology is untouched, only the constraints become
unsatisfiable.

Two perturbations are provided:

* :func:`make_globally_infeasible` — rewrite a few edges' delay windows to a
  band that **no** hosting link occupies (below the global minimum delay),
  which guarantees infeasibility regardless of topology;
* :func:`tighten_random_edges` — shrink random windows by a large factor,
  which usually (but not provably) makes the query infeasible; useful for
  generating "hard but maybe feasible" instances.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork
from repro.utils.rng import RandomSource, as_rng
from repro.workloads.queries import Workload


def make_globally_infeasible(workload: Workload, hosting: HostingNetwork,
                             num_edges: Optional[int] = None,
                             delay_attr: str = "avgDelay",
                             rng: RandomSource = None) -> Workload:
    """Derive a provably infeasible variant of *workload*.

    ``num_edges`` edges (default: one) get a requested delay window strictly
    below the minimum delay of any hosting link, so no hosting edge can ever
    satisfy them and the query has no feasible embedding under
    :data:`~repro.workloads.queries.DELAY_WINDOW_CONSTRAINT`.

    The query topology is copied, not shared, so the original workload stays
    intact.
    """
    rand = as_rng(rng)
    delays = hosting.edge_attribute_values(delay_attr)
    if not delays:
        raise ValueError(f"hosting network defines no {delay_attr!r} values")
    global_min = min(delays)
    # A window entirely below every measured delay (and above zero).
    impossible_high = max(global_min * 0.5, global_min - 1.0, 1e-3)
    impossible_low = impossible_high * 0.5

    query: QueryNetwork = workload.query.copy(name=f"{workload.query.name}-infeasible")
    edges = query.edges()
    if not edges:
        raise ValueError("cannot make an edgeless query infeasible by edge perturbation")
    count = num_edges if num_edges is not None else 1
    count = max(1, min(count, len(edges)))
    rand.shuffle(edges)
    for u, v in edges[:count]:
        query.update_edge(u, v, minDelay=round(impossible_low, 6),
                          maxDelay=round(impossible_high, 6))
    return Workload(query=query, constraint=workload.constraint,
                    feasible_by_construction=False,
                    description=f"{workload.description} [infeasible x{count}]")


def tighten_random_edges(workload: Workload, factor: float = 0.02,
                         fraction: float = 0.3, rng: RandomSource = None) -> Workload:
    """Shrink a fraction of the query's delay windows to *factor* of their width.

    The result is usually infeasible on realistic hosting networks but is not
    guaranteed to be — use :func:`make_globally_infeasible` when a proof is
    needed (e.g. in tests).
    """
    if not 0 < factor <= 1:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rand = as_rng(rng)
    query: QueryNetwork = workload.query.copy(name=f"{workload.query.name}-tight")
    edges = query.edges()
    rand.shuffle(edges)
    count = max(1, int(round(fraction * len(edges))))
    for u, v in edges[:count]:
        low = query.get_edge_attr(u, v, "minDelay")
        high = query.get_edge_attr(u, v, "maxDelay")
        if low is None or high is None:
            continue
        center = (low + high) / 2.0
        half_width = (high - low) * factor / 2.0
        query.update_edge(u, v, minDelay=round(center - half_width, 6),
                          maxDelay=round(center + half_width, 6))
    return Workload(query=query, constraint=workload.constraint,
                    feasible_by_construction=False,
                    description=f"{workload.description} [tightened x{count}]")
