"""Query-network generators mirroring the paper's experimental workloads.

Three families of queries are used in §VII:

* **Subgraph queries** (§VII-B, §VII-C): a random connected subgraph of the
  hosting network whose edges request a delay window around the measured
  delay — by construction at least one feasible embedding exists.
* **Clique queries** (§VII-D, Fig. 13): cliques of increasing size whose only
  constraint is an absolute end-to-end delay window (10–100 ms on PlanetLab),
  i.e. regular, under-constrained, worst-case queries.
* **Composite queries** (§VII-D, Fig. 14): two-level regular hierarchies with
  either per-level delay windows ("regular constraints") or windows drawn at
  random from a band that covers most hosting links ("irregular constraints").

All generated queries encode their requirements as ``minDelay``/``maxDelay``
edge attributes, so a single constraint expression — the hosting delay must
fall inside the query's window, see :data:`DELAY_WINDOW_CONSTRAINT` — covers
every workload, exactly as the paper runs "the same constraint expression in
all cases".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.constraints import ConstraintExpression
from repro.constraints.builder import host_delay_within_query_window
from repro.graphs.hosting import HostingNetwork
from repro.graphs.ops import as_query, random_connected_subgraph, relabel_sequential
from repro.graphs.query import QueryNetwork
from repro.topology.composite import LEVEL_ATTR, CompositeSpec, composite
from repro.topology.regular import clique as make_clique
from repro.utils.rng import RandomSource, as_rng

#: The constraint expression shared by all paper workloads: the measured
#: hosting delay must lie inside the query edge's requested window.
DELAY_WINDOW_CONSTRAINT = ConstraintExpression(host_delay_within_query_window())


@dataclass
class Workload:
    """A ready-to-run embedding problem: query + constraint (+ provenance)."""

    query: QueryNetwork
    constraint: ConstraintExpression = field(default_factory=lambda: DELAY_WINDOW_CONSTRAINT)
    #: Whether a feasible embedding is guaranteed to exist by construction.
    feasible_by_construction: bool = False
    #: Free-form description used in experiment reports.
    description: str = ""

    @property
    def num_nodes(self) -> int:
        """Convenience: the query size (x axis of every figure)."""
        return self.query.num_nodes


# --------------------------------------------------------------------------- #
# Subgraph queries (Figs. 8–12)
# --------------------------------------------------------------------------- #

def subgraph_query(hosting: HostingNetwork, num_nodes: int,
                   num_edges: Optional[int] = None, slack: float = 0.25,
                   delay_attr: str = "avgDelay", rng: RandomSource = None,
                   relabel: bool = True) -> Workload:
    """Sample a feasible query as a random connected subgraph of *hosting*.

    Each sampled edge's measured delay ``d`` becomes the request window
    ``[d·(1-slack), d·(1+slack)]`` on the query edge, so the identity
    embedding of the sampled subgraph always satisfies
    :data:`DELAY_WINDOW_CONSTRAINT` and the query is feasible by construction.

    Parameters
    ----------
    hosting:
        The hosting network to sample from.
    num_nodes, num_edges:
        Size of the sampled subgraph (``num_edges=None`` keeps the full
        induced subgraph).
    slack:
        Relative width of the delay window around the measured delay.
    delay_attr:
        Which hosting edge attribute carries the measured delay.
    rng:
        Randomness source.
    relabel:
        Whether to rename query nodes ``q0, q1, ...`` (recommended; avoids
        accidental identifier overlap with hosting nodes).
    """
    if slack < 0:
        raise ValueError(f"slack must be non-negative, got {slack}")
    rand = as_rng(rng)
    sample = random_connected_subgraph(hosting, num_nodes, num_edges, rand)
    query = as_query(sample, name=f"{hosting.name}-subgraph{num_nodes}",
                     attribute_whitelist=())
    for u, v in sample.edges():
        measured = sample.get_edge_attr(u, v, delay_attr)
        if measured is None:
            raise ValueError(
                f"hosting edge ({u!r}, {v!r}) lacks the delay attribute {delay_attr!r}")
        query.update_edge(u, v,
                          minDelay=round(measured * (1.0 - slack), 3),
                          maxDelay=round(measured * (1.0 + slack), 3))
    if relabel:
        query, _ = relabel_sequential(query, prefix="q")
    return Workload(query=query, constraint=DELAY_WINDOW_CONSTRAINT,
                    feasible_by_construction=True,
                    description=f"subgraph N={query.num_nodes} E={query.num_edges} "
                                f"slack={slack}")


def subgraph_query_series(hosting: HostingNetwork, sizes: Sequence[int],
                          queries_per_size: int = 5, slack: float = 0.25,
                          edge_factor: Optional[float] = None,
                          rng: RandomSource = None) -> List[Workload]:
    """The Fig. 8/11 workload: *queries_per_size* subgraph queries per size.

    ``edge_factor`` (edges per node) optionally thins each sampled subgraph to
    roughly ``edge_factor * num_nodes`` edges, which is how the paper varies
    the number of edges per (N, E) pair.
    """
    rand = as_rng(rng)
    workloads: List[Workload] = []
    for size in sizes:
        for _ in range(queries_per_size):
            num_edges = None
            if edge_factor is not None:
                num_edges = max(size - 1, int(round(edge_factor * size)))
            workloads.append(subgraph_query(hosting, size, num_edges=num_edges,
                                            slack=slack, rng=rand))
    return workloads


# --------------------------------------------------------------------------- #
# Cross-partition queries (scale-out tier)
# --------------------------------------------------------------------------- #

def cross_partition_query(hosting: HostingNetwork, partitions,
                          num_nodes: int = 6, slack: float = 0.25,
                          delay_attr: str = "avgDelay",
                          rng: RandomSource = None,
                          relabel: bool = True) -> Workload:
    """A feasible-by-construction query that *must* span two partitions.

    Samples a simple path in the hosting network whose first half lies in one
    partition, whose second half lies in another, and whose middle edge is a
    real cut edge; delay windows wrap the measured delays exactly as
    :func:`subgraph_query` does, so the identity embedding is feasible — and
    any embedding into a single partition of the same size is impossible only
    when the partitions are smaller than the query, which the scale-out tests
    arrange.  Used by the differential oracle suite and ``bench_scaleout`` to
    exercise the coordinator's split-and-stitch stage.

    Parameters
    ----------
    partitions:
        Anything with an ``assignment`` mapping (hosting node → partition
        name), e.g. a :class:`repro.cluster.PartitionMap`, or such a mapping
        directly.  (Duck-typed to keep :mod:`repro.workloads` free of a
        :mod:`repro.cluster` dependency.)
    num_nodes:
        Total path length; must be an even number >= 4 so the halves are
        equal (equal halves are what the coordinator's balanced query split
        reproduces).
    """
    if num_nodes < 4 or num_nodes % 2:
        raise ValueError(
            f"num_nodes must be an even number >= 4, got {num_nodes}")
    if slack < 0:
        raise ValueError(f"slack must be non-negative, got {slack}")
    assignment = getattr(partitions, "assignment", partitions)
    rand = as_rng(rng)
    half = num_nodes // 2

    cut = [(u, v) for u, v in hosting.edges()
           if assignment.get(u) is not None and assignment.get(v) is not None
           and assignment[u] != assignment[v]]
    rand.shuffle(cut)
    for u, v in cut:
        left = _simple_path_within(hosting, u, assignment[u], assignment,
                                   half, rand, banned={v})
        if left is None:
            continue
        right = _simple_path_within(hosting, v, assignment[v], assignment,
                                    half, rand, banned=set(left))
        if right is None:
            continue
        hosts = list(reversed(left)) + right   # ... -> u -> v -> ...
        query = QueryNetwork(name=f"{hosting.name}-cross{num_nodes}")
        for node in hosts:
            query.add_node(node)
        for a, b in zip(hosts, hosts[1:]):
            measured = hosting.get_edge_attr(a, b, delay_attr)
            if measured is None:
                measured = hosting.get_edge_attr(b, a, delay_attr)
            query.add_edge(a, b,
                           minDelay=round(measured * (1.0 - slack), 3),
                           maxDelay=round(measured * (1.0 + slack), 3))
        if relabel:
            query, _ = relabel_sequential(query, prefix="q")
        return Workload(query=query, constraint=DELAY_WINDOW_CONSTRAINT,
                        feasible_by_construction=True,
                        description=f"cross-partition path N={num_nodes} "
                                    f"({assignment[u]}|{assignment[v]}) "
                                    f"slack={slack}")
    raise ValueError(
        f"no cut edge of {hosting.name!r} extends to a {half}+{half} "
        f"cross-partition path; partitions may be too small or disconnected")


def _simple_path_within(hosting: HostingNetwork, start, partition,
                        assignment, length: int, rand,
                        banned) -> Optional[List]:
    """DFS for a simple path of *length* nodes inside one partition."""
    path = [start]
    used = set(banned) | {start}

    def extend() -> bool:
        if len(path) == length:
            return True
        neighbors = [n for n in hosting.neighbors(path[-1])
                     if n not in used and assignment.get(n) == partition]
        rand.shuffle(neighbors)
        for node in neighbors:
            path.append(node)
            used.add(node)
            if extend():
                return True
            path.pop()
            used.discard(node)
        return False

    return path if extend() else None


# --------------------------------------------------------------------------- #
# Clique queries (Fig. 13)
# --------------------------------------------------------------------------- #

def clique_query(size: int, delay_low: float = 10.0, delay_high: float = 100.0
                 ) -> Workload:
    """A clique of *size* nodes whose every edge requests the same delay window.

    This is the §VII-D worst case: a regular topology with a single,
    under-constrained window (10–100 ms covers thousands of PlanetLab links).
    Feasibility is *not* guaranteed — whether a clique of that size exists in
    the chosen delay band depends on the hosting network.
    """
    if size < 2:
        raise ValueError(f"a clique query needs at least 2 nodes, got {size}")
    query = make_clique(size, prefix="c")
    for u, v in query.edges():
        query.update_edge(u, v, minDelay=float(delay_low), maxDelay=float(delay_high))
    return Workload(query=query, constraint=DELAY_WINDOW_CONSTRAINT,
                    feasible_by_construction=False,
                    description=f"clique N={size} window=[{delay_low},{delay_high}]ms")


def clique_query_series(sizes: Sequence[int], delay_low: float = 10.0,
                        delay_high: float = 100.0) -> List[Workload]:
    """The Fig. 13 workload: cliques of increasing size, one fixed delay window."""
    return [clique_query(size, delay_low, delay_high) for size in sizes]


# --------------------------------------------------------------------------- #
# Composite queries (Fig. 14)
# --------------------------------------------------------------------------- #

def composite_query(spec: CompositeSpec,
                    root_window: Tuple[float, float] = (75.0, 350.0),
                    group_window: Tuple[float, float] = (1.0, 75.0),
                    irregular_band: Optional[Tuple[float, float]] = None,
                    irregular_width: Tuple[float, float] = (20.0, 60.0),
                    rng: RandomSource = None) -> Workload:
    """A two-level composite query with per-level or randomised delay windows.

    With ``irregular_band=None`` (the "regular constraints" set of Fig. 14a)
    root-level edges request *root_window* and intra-group edges request
    *group_window* — wide-area versus intra-site delays.

    With ``irregular_band=(low, high)`` (the "irregular constraints" set of
    Fig. 14b) every edge requests a window of random width (drawn from
    *irregular_width*) positioned uniformly at random inside the band.
    """
    rand = as_rng(rng)
    query = composite(spec)
    for u, v in query.edges():
        if irregular_band is None:
            window = root_window if query.get_edge_attr(u, v, LEVEL_ATTR) == 0 else group_window
            low, high = float(window[0]), float(window[1])
        else:
            band_low, band_high = irregular_band
            width = rand.uniform(*irregular_width)
            width = min(width, band_high - band_low)
            start = rand.uniform(band_low, band_high - width)
            low, high = start, start + width
        query.update_edge(u, v, minDelay=round(low, 3), maxDelay=round(high, 3))
    kind = "regular" if irregular_band is None else "irregular"
    return Workload(query=query, constraint=DELAY_WINDOW_CONSTRAINT,
                    feasible_by_construction=False,
                    description=f"composite({kind}) N={query.num_nodes} "
                                f"{spec.root_shape}x{spec.num_groups}/"
                                f"{spec.group_shape}x{spec.group_size}")


def composite_query_series(total_sizes: Sequence[int], irregular: bool = False,
                           root_shape: str = "ring", group_shape: str = "star",
                           group_size: int = 4,
                           irregular_band: Tuple[float, float] = (25.0, 175.0),
                           rng: RandomSource = None) -> List[Workload]:
    """The Fig. 14 workload: composite queries of growing total size."""
    rand = as_rng(rng)
    workloads = []
    for total in total_sizes:
        num_groups = max(2, round(total / group_size))
        spec = CompositeSpec(root_shape=root_shape, num_groups=num_groups,
                             group_shape=group_shape, group_size=group_size)
        workloads.append(composite_query(
            spec,
            irregular_band=irregular_band if irregular else None,
            rng=rand))
    return workloads
