"""Named experiment suites: the exact workloads behind each figure of §VII.

Every entry pairs a hosting-network recipe with a query-workload recipe and
the scaled-down default sizes the benchmark harness uses.  Scaling down is
deliberate (see DESIGN.md): the paper's PlanetLab host has 296 nodes and its
largest BRITE host 2,500; running every algorithm to completion on those
sizes for every figure would take hours under pytest-benchmark, so each suite
exposes both the *paper* parameters and the *benchmark* parameters, and the
experiment harness accepts either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.graphs.hosting import HostingNetwork
from repro.topology.brite import barabasi_albert
from repro.topology.planetlab import synthetic_planetlab_trace
from repro.utils.rng import RandomSource
from repro.workloads.queries import (
    Workload,
    clique_query_series,
    composite_query_series,
    subgraph_query_series,
)


@dataclass(frozen=True)
class SuiteScale:
    """Size parameters for a suite at one scale (paper-faithful or benchmark)."""

    hosting_nodes: int
    query_sizes: Sequence[int]
    queries_per_size: int = 5


@dataclass(frozen=True)
class ExperimentSuite:
    """A named workload suite with paper-scale and benchmark-scale parameters."""

    name: str
    figure: str
    paper: SuiteScale
    benchmark: SuiteScale
    description: str = ""

    def scale(self, benchmark: bool = True) -> SuiteScale:
        """Pick the benchmark (default) or paper scale."""
        return self.benchmark if benchmark else self.paper


#: Suites indexed by figure, used by the experiment harness and EXPERIMENTS.md.
SUITES: Dict[str, ExperimentSuite] = {
    "fig8": ExperimentSuite(
        name="planetlab-subgraphs",
        figure="Fig. 8/9",
        paper=SuiteScale(hosting_nodes=296, query_sizes=tuple(range(20, 221, 20))),
        benchmark=SuiteScale(hosting_nodes=48, query_sizes=(6, 10, 14, 18, 22),
                             queries_per_size=2),
        description="Random connected PlanetLab subgraph queries with delay windows"),
    "fig10": ExperimentSuite(
        name="planetlab-infeasible",
        figure="Fig. 10",
        paper=SuiteScale(hosting_nodes=296, query_sizes=tuple(range(40, 201, 20))),
        benchmark=SuiteScale(hosting_nodes=48, query_sizes=(6, 10, 14),
                             queries_per_size=2),
        description="Feasible vs provably infeasible subgraph queries"),
    "fig11": ExperimentSuite(
        name="brite-subgraphs",
        figure="Fig. 11/12",
        paper=SuiteScale(hosting_nodes=1500, query_sizes=tuple(range(100, 1201, 100))),
        benchmark=SuiteScale(hosting_nodes=90, query_sizes=(10, 20, 30, 40),
                             queries_per_size=2),
        description="Subgraph queries over BRITE power-law hosting networks"),
    "fig13": ExperimentSuite(
        name="planetlab-cliques",
        figure="Fig. 13",
        paper=SuiteScale(hosting_nodes=296, query_sizes=tuple(range(2, 21, 2))),
        benchmark=SuiteScale(hosting_nodes=40, query_sizes=(2, 3, 4, 5),
                             queries_per_size=1),
        description="Clique queries with a single 10-100ms delay window"),
    "fig14": ExperimentSuite(
        name="planetlab-composites",
        figure="Fig. 14",
        paper=SuiteScale(hosting_nodes=296, query_sizes=(8, 16, 24, 32, 40, 48, 56, 64)),
        benchmark=SuiteScale(hosting_nodes=48, query_sizes=(8, 12, 16),
                             queries_per_size=1),
        description="Two-level composite queries, regular and irregular constraints"),
}


# --------------------------------------------------------------------------- #
# Hosting-network recipes
# --------------------------------------------------------------------------- #

def planetlab_host(num_sites: int, rng: RandomSource = None) -> HostingNetwork:
    """A PlanetLab-like hosting network with *num_sites* sites."""
    return synthetic_planetlab_trace(num_sites=num_sites, rng=rng)


def brite_host(num_nodes: int, rng: RandomSource = None) -> HostingNetwork:
    """A BRITE-like (Barabási–Albert, m=2) hosting network."""
    return barabasi_albert(num_nodes, edges_per_node=2, rng=rng)


# --------------------------------------------------------------------------- #
# Workload recipes
# --------------------------------------------------------------------------- #

def build_subgraph_suite(hosting: HostingNetwork, scale: SuiteScale,
                         slack: float = 0.25, rng: RandomSource = None
                         ) -> List[Workload]:
    """Subgraph-query workloads (Figs. 8, 9, 11, 12) at the given scale."""
    sizes = [s for s in scale.query_sizes if s <= hosting.num_nodes]
    return subgraph_query_series(hosting, sizes, queries_per_size=scale.queries_per_size,
                                 slack=slack, rng=rng)


def build_clique_suite(scale: SuiteScale, delay_low: float = 10.0,
                       delay_high: float = 100.0) -> List[Workload]:
    """Clique-query workloads (Fig. 13) at the given scale."""
    return clique_query_series(scale.query_sizes, delay_low, delay_high)


def build_composite_suite(scale: SuiteScale, irregular: bool,
                          rng: RandomSource = None) -> List[Workload]:
    """Composite-query workloads (Fig. 14) at the given scale."""
    return composite_query_series(scale.query_sizes, irregular=irregular, rng=rng)
