"""Named experiment suites: the exact workloads behind each figure of §VII.

Every entry pairs a hosting-network recipe with a query-workload recipe and
the scaled-down default sizes the benchmark harness uses.  Scaling down is
deliberate (see DESIGN.md): the paper's PlanetLab host has 296 nodes and its
largest BRITE host 2,500; running every algorithm to completion on those
sizes for every figure would take hours under pytest-benchmark, so each suite
exposes both the *paper* parameters and the *benchmark* parameters, and the
experiment harness accepts either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.graphs.hosting import HostingNetwork
from repro.topology.brite import barabasi_albert
from repro.topology.delays import delay_triple
from repro.topology.planetlab import Region, synthetic_planetlab_trace
from repro.utils.rng import RandomSource, as_rng
from repro.workloads.queries import (
    Workload,
    clique_query_series,
    composite_query_series,
    subgraph_query_series,
)


@dataclass(frozen=True)
class SuiteScale:
    """Size parameters for a suite at one scale (paper-faithful or benchmark)."""

    hosting_nodes: int
    query_sizes: Sequence[int]
    queries_per_size: int = 5


@dataclass(frozen=True)
class ExperimentSuite:
    """A named workload suite with paper-scale and benchmark-scale parameters."""

    name: str
    figure: str
    paper: SuiteScale
    benchmark: SuiteScale
    description: str = ""

    def scale(self, benchmark: bool = True) -> SuiteScale:
        """Pick the benchmark (default) or paper scale."""
        return self.benchmark if benchmark else self.paper


#: Suites indexed by figure, used by the experiment harness and EXPERIMENTS.md.
SUITES: Dict[str, ExperimentSuite] = {
    "fig8": ExperimentSuite(
        name="planetlab-subgraphs",
        figure="Fig. 8/9",
        paper=SuiteScale(hosting_nodes=296, query_sizes=tuple(range(20, 221, 20))),
        benchmark=SuiteScale(hosting_nodes=48, query_sizes=(6, 10, 14, 18, 22),
                             queries_per_size=2),
        description="Random connected PlanetLab subgraph queries with delay windows"),
    "fig10": ExperimentSuite(
        name="planetlab-infeasible",
        figure="Fig. 10",
        paper=SuiteScale(hosting_nodes=296, query_sizes=tuple(range(40, 201, 20))),
        benchmark=SuiteScale(hosting_nodes=48, query_sizes=(6, 10, 14),
                             queries_per_size=2),
        description="Feasible vs provably infeasible subgraph queries"),
    "fig11": ExperimentSuite(
        name="brite-subgraphs",
        figure="Fig. 11/12",
        paper=SuiteScale(hosting_nodes=1500, query_sizes=tuple(range(100, 1201, 100))),
        benchmark=SuiteScale(hosting_nodes=90, query_sizes=(10, 20, 30, 40),
                             queries_per_size=2),
        description="Subgraph queries over BRITE power-law hosting networks"),
    "fig13": ExperimentSuite(
        name="planetlab-cliques",
        figure="Fig. 13",
        paper=SuiteScale(hosting_nodes=296, query_sizes=tuple(range(2, 21, 2))),
        benchmark=SuiteScale(hosting_nodes=40, query_sizes=(2, 3, 4, 5),
                             queries_per_size=1),
        description="Clique queries with a single 10-100ms delay window"),
    "fig14": ExperimentSuite(
        name="planetlab-composites",
        figure="Fig. 14",
        paper=SuiteScale(hosting_nodes=296, query_sizes=(8, 16, 24, 32, 40, 48, 56, 64)),
        benchmark=SuiteScale(hosting_nodes=48, query_sizes=(8, 12, 16),
                             queries_per_size=1),
        description="Two-level composite queries, regular and irregular constraints"),
}


# --------------------------------------------------------------------------- #
# Hosting-network recipes
# --------------------------------------------------------------------------- #

def planetlab_host(num_sites: int, rng: RandomSource = None) -> HostingNetwork:
    """A PlanetLab-like hosting network with *num_sites* sites."""
    return synthetic_planetlab_trace(num_sites=num_sites, rng=rng)


def brite_host(num_nodes: int, rng: RandomSource = None) -> HostingNetwork:
    """A BRITE-like (Barabási–Albert, m=2) hosting network."""
    return barabasi_albert(num_nodes, edges_per_node=2, rng=rng)


def federated_planetlab(num_zones: int, sites_per_zone: int,
                        edge_probability: float = 0.15,
                        inter_links: int = 2, chord_stride: int = 0,
                        rng: RandomSource = None,
                        name: str = "federated-planetlab") -> HostingNetwork:
    """A federation of PlanetLab-like zones — the scale-out hosting recipe.

    The paper's trace is a dense ~296-site near-clique; at 9k+ sites that
    density (~27M edges) is neither realistic nor buildable.  What a
    continental-scale deployment actually looks like is many *zones* of
    PlanetLab-like density joined by a sparse wide-area backbone — which is
    also exactly the shape the cluster tier partitions along.  Each zone is
    an independent :func:`synthetic_planetlab_trace` (node ids prefixed
    ``z<zone>:``, a ``zone`` node attribute ready for
    ``PartitionMap.by_attribute``), and consecutive zones (a ring, plus
    optional chords every *chord_stride* zones) are joined by *inter_links*
    wide-area edges with ordinary ``minDelay``/``avgDelay``/``maxDelay``
    triples.

    ``num_zones * sites_per_zone`` nodes total; intra-zone edge count scales
    with ``edge_probability``, so a 64×150 federation stays ~100k edges.
    """
    if num_zones < 2:
        raise ValueError(f"num_zones must be >= 2, got {num_zones}")
    rand = as_rng(rng)
    network = HostingNetwork(name=name)
    zone_nodes: List[List[str]] = []
    for zone in range(num_zones):
        zone_name = f"zone{zone:03d}"
        # One *tight* geographic region per zone: intra-zone delays stay
        # tens of ms while the backbone below runs 80-200 ms, so wide-area
        # query edges genuinely cannot be absorbed into a single zone.
        trace = synthetic_planetlab_trace(
            num_sites=sites_per_zone, edge_probability=edge_probability,
            regions=(Region(zone_name, (0.0, 0.0), 1.0, 10.0),),
            rng=rand, name=zone_name)
        prefix = f"z{zone}:"
        members: List[str] = []
        for node in trace.nodes():
            attrs = dict(trace.graph.nodes[node])
            attrs["zone"] = zone_name
            attrs["name"] = prefix + str(node)
            network.add_node(prefix + str(node), **attrs)
            members.append(prefix + str(node))
        for u, v in trace.edges():
            network.add_edge(prefix + str(u), prefix + str(v),
                             **dict(trace.graph.edges[u, v]))
        zone_nodes.append(members)

    def join(a: int, b: int) -> None:
        for _ in range(max(1, inter_links)):
            u = rand.choice(zone_nodes[a])
            v = rand.choice(zone_nodes[b])
            if network.has_edge(u, v):
                continue
            base = rand.uniform(80.0, 200.0)
            network.add_edge(u, v, **delay_triple(base, rng=rand))

    for zone in range(num_zones):
        join(zone, (zone + 1) % num_zones)
    if chord_stride and chord_stride > 1:
        for zone in range(0, num_zones, chord_stride):
            join(zone, (zone + num_zones // 2) % num_zones)
    return network


# --------------------------------------------------------------------------- #
# Workload recipes
# --------------------------------------------------------------------------- #

def build_subgraph_suite(hosting: HostingNetwork, scale: SuiteScale,
                         slack: float = 0.25, rng: RandomSource = None
                         ) -> List[Workload]:
    """Subgraph-query workloads (Figs. 8, 9, 11, 12) at the given scale."""
    sizes = [s for s in scale.query_sizes if s <= hosting.num_nodes]
    return subgraph_query_series(hosting, sizes, queries_per_size=scale.queries_per_size,
                                 slack=slack, rng=rng)


def build_clique_suite(scale: SuiteScale, delay_low: float = 10.0,
                       delay_high: float = 100.0) -> List[Workload]:
    """Clique-query workloads (Fig. 13) at the given scale."""
    return clique_query_series(scale.query_sizes, delay_low, delay_high)


def build_composite_suite(scale: SuiteScale, irregular: bool,
                          rng: RandomSource = None) -> List[Workload]:
    """Composite-query workloads (Fig. 14) at the given scale."""
    return composite_query_series(scale.query_sizes, irregular=irregular, rng=rng)
