"""Replayable arrival traces: the artifact behind the load-test harness.

A :class:`Trace` is the recorded form of one open-loop load scenario —
every scheduled request arrival (offset, tenant, workload fingerprint,
whether it reserves, and its reservation lifetime) plus the reservation
*departure* events derived from those lifetimes.  Traces serialise to
JSONL with deterministic bytes: recording the same scenario from the same
seed twice produces byte-identical files, so a trace artifact can be
committed, diffed, and replayed across process boundaries with confidence
that the schedule is exactly the one that was measured.

File format (one JSON object per line, keys sorted, no extra whitespace)::

    {"kind":"header","schema":1,"scenario":…,"seed":…,"workloads":[…],…}
    {"kind":"arrival","index":0,"offset":0.031,"tenant":"open",
     "workload":0,"reserve":false,"lifetime":null}
    {"kind":"departure","offset":1.74,"request_index":0}
    ...

Arrivals appear in offset order, then departures in offset order; the
replay driver merges both streams by offset.  The header pins the scenario
parameters and the per-workload query fingerprints so a replay against a
regenerated scene can verify it is answering the *same* queries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

TRACE_SCHEMA_VERSION = 1

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceArrival",
    "TraceDeparture",
    "Trace",
    "workload_fingerprint",
    "read_trace",
    "write_trace",
]


@dataclass(frozen=True)
class TraceArrival:
    """One scheduled request of a recorded trace.

    Attributes
    ----------
    offset:
        Seconds after the start of the run at which the request fires.
    index:
        Position in the trace (0-based, increasing with ``offset``).
    tenant:
        Issuing tenant (drives per-tenant QoS on replay).
    workload:
        Index into the scenario's workload population (which query spec
        this request runs).
    reserve:
        Whether the request reserves capacity on success.
    lifetime:
        Reservation lifetime in seconds (``None`` = no departure recorded;
        the reservation lives to the end of the run).
    """

    offset: float
    index: int
    tenant: str = "default"
    workload: int = 0
    reserve: bool = False
    lifetime: Optional[float] = None


@dataclass(frozen=True)
class TraceDeparture:
    """A reservation release scheduled at ``offset`` for one arrival."""

    offset: float
    request_index: int


@dataclass
class Trace:
    """A replayable open-loop trace: header + arrivals + departures."""

    header: Dict = field(default_factory=dict)
    arrivals: List[TraceArrival] = field(default_factory=list)
    departures: List[TraceDeparture] = field(default_factory=list)

    @property
    def horizon(self) -> float:
        """The recorded horizon (falls back to the last scheduled offset)."""
        declared = self.header.get("horizon")
        if declared is not None:
            return float(declared)
        offsets = ([a.offset for a in self.arrivals]
                   + [d.offset for d in self.departures])
        return max(offsets) if offsets else 0.0

    def fingerprints(self) -> List[str]:
        """The per-workload query fingerprints pinned by the header."""
        return list(self.header.get("workloads", []))


def workload_fingerprint(workload) -> str:
    """A process-stable fingerprint of one workload's query spec.

    Hashes the query's name, size and edge list together with the
    constraint source text (``hash()`` is salted per process, so it cannot
    pin anything across a subprocess replay).  Two scenes built from the
    same seed produce the same fingerprints; a replay against a different
    scene fails loudly instead of silently measuring different queries.
    """
    query = workload.query
    edges = sorted((str(a), str(b)) for a, b in query.edges())
    digest = hashlib.sha256()
    digest.update(str(query.name).encode("utf-8"))
    digest.update(f"|{query.num_nodes}|{query.num_edges}|".encode("utf-8"))
    digest.update(json.dumps(edges).encode("utf-8"))
    constraint = getattr(workload, "constraint", None)
    digest.update(str(getattr(constraint, "source", constraint)).encode("utf-8"))
    return digest.hexdigest()[:16]


def _dump_line(record: Dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write *trace* as deterministic JSONL; returns the written path.

    Bytes are a pure function of the trace content: keys sorted, compact
    separators, ``repr``-exact floats, ``\\n`` line endings.  Same seed ⇒
    same trace ⇒ byte-identical file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [_dump_line({"kind": "header",
                         "schema": TRACE_SCHEMA_VERSION, **trace.header})]
    for arrival in trace.arrivals:
        lines.append(_dump_line({
            "kind": "arrival",
            "offset": arrival.offset,
            "index": arrival.index,
            "tenant": arrival.tenant,
            "workload": arrival.workload,
            "reserve": arrival.reserve,
            "lifetime": arrival.lifetime,
        }))
    for departure in trace.departures:
        lines.append(_dump_line({
            "kind": "departure",
            "offset": departure.offset,
            "request_index": departure.request_index,
        }))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_trace(path: Union[str, Path]) -> Trace:
    """Parse a JSONL trace written by :func:`write_trace`.

    Raises :class:`ValueError` on a missing/foreign header, an unsupported
    schema version, or an unknown record kind — a trace artifact is a
    contract, not a best-effort log.
    """
    trace = Trace()
    seen_header = False
    for line_number, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{line_number}: not valid JSON ({exc})") from exc
        kind = record.get("kind")
        if line_number == 1:
            if kind != "header":
                raise ValueError(
                    f"{path}: first record must be the trace header, "
                    f"got kind={kind!r}")
            if record.get("schema") != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}: unsupported trace schema "
                    f"{record.get('schema')!r} "
                    f"(this build reads {TRACE_SCHEMA_VERSION})")
            trace.header = {key: value for key, value in record.items()
                            if key not in ("kind", "schema")}
            seen_header = True
        elif kind == "arrival":
            trace.arrivals.append(TraceArrival(
                offset=float(record["offset"]),
                index=int(record["index"]),
                tenant=str(record.get("tenant", "default")),
                workload=int(record.get("workload", 0)),
                reserve=bool(record.get("reserve", False)),
                lifetime=(None if record.get("lifetime") is None
                          else float(record["lifetime"])),
            ))
        elif kind == "departure":
            trace.departures.append(TraceDeparture(
                offset=float(record["offset"]),
                request_index=int(record["request_index"]),
            ))
        else:
            raise ValueError(
                f"{path}:{line_number}: unknown record kind {kind!r}")
    if not seen_header:
        raise ValueError(f"{path}: empty trace (no header record)")
    trace.arrivals.sort(key=lambda a: (a.offset, a.index))
    trace.departures.sort(key=lambda d: (d.offset, d.request_index))
    return trace
