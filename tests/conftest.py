"""Shared fixtures for the NETEMBED reproduction test suite."""

from __future__ import annotations

import pytest

from repro.constraints import ConstraintExpression
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork


@pytest.fixture
def small_hosting() -> HostingNetwork:
    """A 6-node hosting network with delay-annotated edges and node attributes.

    Topology (delays in ms on avgDelay)::

        a --10-- b --50-- c
        |        |        |
        30       20       15
        |        |        |
        d --40-- e --25-- f
    """
    hosting = HostingNetwork("small-host")
    attrs = {
        "a": {"osType": "linux", "cpuLoad": 0.2, "region": "east"},
        "b": {"osType": "linux", "cpuLoad": 0.5, "region": "east"},
        "c": {"osType": "bsd", "cpuLoad": 0.8, "region": "west"},
        "d": {"osType": "linux", "cpuLoad": 0.1, "region": "east"},
        "e": {"osType": "bsd", "cpuLoad": 0.4, "region": "west"},
        "f": {"osType": "linux", "cpuLoad": 0.6, "region": "west"},
    }
    for node, data in attrs.items():
        hosting.add_node(node, name=node, **data)
    edges = [
        ("a", "b", 10.0), ("b", "c", 50.0), ("a", "d", 30.0),
        ("b", "e", 20.0), ("c", "f", 15.0), ("d", "e", 40.0), ("e", "f", 25.0),
    ]
    for u, v, delay in edges:
        hosting.add_edge(u, v, avgDelay=delay, minDelay=delay * 0.9,
                         maxDelay=delay * 1.2)
    return hosting


@pytest.fixture
def path_query() -> QueryNetwork:
    """A 3-node path query with delay windows that several embeddings satisfy."""
    query = QueryNetwork("path-query")
    for node in ("x", "y", "z"):
        query.add_node(node)
    query.add_edge("x", "y", minDelay=5.0, maxDelay=35.0)
    query.add_edge("y", "z", minDelay=10.0, maxDelay=60.0)
    return query


@pytest.fixture
def triangle_query() -> QueryNetwork:
    """A triangle query (no attribute constraints) — needs a hosting triangle."""
    query = QueryNetwork("triangle")
    for node in ("p", "q", "r"):
        query.add_node(node)
    query.add_edge("p", "q")
    query.add_edge("q", "r")
    query.add_edge("p", "r")
    return query


@pytest.fixture
def window_constraint() -> ConstraintExpression:
    """The standard workload constraint: hosting delay inside the query window."""
    return ConstraintExpression(
        "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")
