"""Tests for the experiment harness: metrics, drivers (smoke scale) and reporting."""

from __future__ import annotations

import pytest

from repro.analysis import (
    aggregate_series,
    baseline_comparison_experiment,
    clique_experiment,
    composite_experiment,
    csv_string,
    filter_ablation_experiment,
    format_figure,
    format_table,
    group_summaries,
    infeasible_experiment,
    ordering_ablation_experiment,
    pivot_series,
    planetlab_subgraph_experiment,
    proportions,
    result_quality_distribution,
    result_quality_experiment,
    run_workloads,
    summarize,
    write_csv,
)
from repro.analysis.experiments import default_algorithms
from repro.workloads import SuiteScale, build_subgraph_suite, planetlab_host


class TestMetrics:
    def test_summarize_basic(self):
        summary = summarize([10.0, 12.0, 14.0])
        assert summary.mean == pytest.approx(12.0)
        assert summary.count == 3
        assert summary.ci_low < summary.mean < summary.ci_high
        assert summary.minimum == 10.0 and summary.maximum == 14.0

    def test_summarize_single_value_has_zero_width_interval(self):
        summary = summarize([5.0])
        assert summary.ci_low == summary.ci_high == 5.0
        assert summary.std == 0.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_interval_widens_with_variance(self):
        tight = summarize([10.0, 10.1, 9.9, 10.0])
        loose = summarize([5.0, 15.0, 2.0, 18.0])
        assert loose.ci_halfwidth > tight.ci_halfwidth

    def test_group_summaries(self):
        rows = [
            {"algorithm": "ECF", "size": 10, "total_ms": 5.0},
            {"algorithm": "ECF", "size": 10, "total_ms": 7.0},
            {"algorithm": "LNS", "size": 10, "total_ms": 1.0},
            {"algorithm": "ECF", "size": 20, "total_ms": 9.0},
            {"algorithm": "LNS", "size": 20, "total_ms": None},   # dropped
        ]
        series = group_summaries(rows, ("algorithm", "size"), "total_ms")
        keys = {(row["algorithm"], row["size"]) for row in series}
        assert ("LNS", 20) not in keys
        ecf10 = next(r for r in series if r["algorithm"] == "ECF" and r["size"] == 10)
        assert ecf10["mean"] == pytest.approx(6.0)
        assert ecf10["count"] == 2

    def test_proportions(self):
        rows = [
            {"cls": "clique", "algorithm": "ECF", "status": "complete"},
            {"cls": "clique", "algorithm": "ECF", "status": "partial"},
            {"cls": "clique", "algorithm": "ECF", "status": "partial"},
        ]
        dist = proportions(rows, ("cls", "algorithm"), "status")
        assert dist[0]["partial"] == pytest.approx(2 / 3)
        assert dist[0]["complete"] == pytest.approx(1 / 3)
        assert dist[0]["count"] == 3


class TestReporting:
    ROWS = [{"size": 10, "ECF": 4.0, "LNS": 1.5}, {"size": 20, "ECF": 9.0, "LNS": None}]

    def test_format_table(self):
        text = format_table(self.ROWS, title="demo")
        assert "demo" in text
        assert "size" in text and "ECF" in text
        assert "-" in text.splitlines()[-1]   # None rendered as '-'

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], title="empty")

    def test_pivot_series(self):
        series = [
            {"algorithm": "ECF", "size": 10, "mean": 4.0},
            {"algorithm": "LNS", "size": 10, "mean": 1.5},
            {"algorithm": "ECF", "size": 20, "mean": 9.0},
        ]
        pivoted = pivot_series(series)
        assert pivoted[0] == {"size": 10, "ECF": 4.0, "LNS": 1.5}
        assert pivoted[1]["LNS"] is None

    def test_format_figure(self):
        series = [{"algorithm": "ECF", "size": 10, "mean": 4.0}]
        text = format_figure(series, title="Fig. X")
        assert "Fig. X" in text and "ECF" in text

    def test_csv_round_trip(self, tmp_path):
        path = write_csv(self.ROWS, tmp_path / "out.csv")
        content = path.read_text()
        assert content.splitlines()[0] == "size,ECF,LNS"
        assert csv_string(self.ROWS).startswith("size,ECF,LNS")
        empty = write_csv([], tmp_path / "empty.csv")
        assert empty.read_text() == ""


class TestRunWorkloads:
    def test_row_schema(self):
        hosting = planetlab_host(24, rng=3)
        scale = SuiteScale(hosting_nodes=24, query_sizes=(4,), queries_per_size=2)
        workloads = build_subgraph_suite(hosting, scale, rng=4)
        rows = run_workloads(hosting, workloads, default_algorithms(5), timeout=5,
                             max_results=1, extra_fields={"experiment": "smoke"})
        assert len(rows) == 2 * 3
        for row in rows:
            assert row["experiment"] == "smoke"
            assert row["algorithm"] in ("ECF", "RWB", "LNS")
            assert row["size"] == 4
            assert row["total_ms"] >= 0
            assert row["status"] in ("complete", "partial", "inconclusive")

    def test_aggregate_series(self):
        rows = [
            {"algorithm": "ECF", "size": 4, "total_ms": 2.0},
            {"algorithm": "ECF", "size": 4, "total_ms": 4.0},
        ]
        series = aggregate_series(rows)
        assert series[0]["mean"] == pytest.approx(3.0)


class TestExperimentDriversSmoke:
    """Each figure driver runs end to end at a tiny scale and yields sane rows."""

    def test_fig8_driver(self):
        rows = planetlab_subgraph_experiment(seed=1, timeout=3, max_results=1)
        assert rows
        assert {row["algorithm"] for row in rows} == {"ECF", "RWB", "LNS"}
        assert all(row["experiment"] == "fig8" for row in rows)
        # Feasible-by-construction workloads: every algorithm should find one.
        assert all(row["found"] >= 1 or row["timed_out"] for row in rows)

    def test_fig10_driver_separates_feasible_and_infeasible(self):
        rows = infeasible_experiment(seed=2, timeout=3)
        feasible = [r for r in rows if r["feasible"]]
        infeasible = [r for r in rows if not r["feasible"]]
        assert feasible and infeasible
        assert all(r["found"] == 0 for r in infeasible)

    def test_fig13_driver_modes(self):
        rows = clique_experiment(seed=3, timeout=3)
        modes = {row["mode"] for row in rows}
        assert modes == {"first", "all"}

    def test_fig14_driver_constraint_classes(self):
        rows = composite_experiment(seed=4, timeout=3)
        assert {row["constraints"] for row in rows} == {"regular", "irregular"}

    def test_fig15_driver_and_distribution(self):
        rows = result_quality_experiment(seed=5, timeout=0.5)
        dist = result_quality_distribution(rows)
        assert {row["query_class"] for row in dist} == {"subgraph", "clique", "composite"}
        for row in dist:
            total = sum(row.get(status, 0.0)
                        for status in ("complete", "partial", "inconclusive"))
            assert total == pytest.approx(1.0)

    def test_baseline_comparison_driver(self):
        rows = baseline_comparison_experiment(seed=6, timeout=3, query_sizes=(5,))
        names = {row["algorithm"] for row in rows}
        assert {"ECF", "RWB", "LNS", "BruteForceCSP", "SA-assign",
                "GA-wanassign", "Greedy-stress"} <= names

    def test_ordering_ablation_driver(self):
        rows = ordering_ablation_experiment(seed=7, timeout=3)
        assert {row["ordering"] for row in rows} == {"candidate-count", "connectivity",
                                                     "natural"}

    def test_filter_ablation_driver(self):
        rows = filter_ablation_experiment(seed=8, timeout=3)
        assert {row["algorithm"] for row in rows} == {"ECF", "BruteForceCSP"}
