"""Tests for the unified embedding API: SearchRequest/Budget, the
capability-based algorithm registry, selection policies and streaming."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import (
    AlgorithmRegistry,
    Budget,
    Capability,
    DuplicateAlgorithmError,
    FixedSelectionPolicy,
    PaperSelectionPolicy,
    SearchRequest,
    UnknownAlgorithmError,
    default_registry,
    register_algorithm,
)
from repro.constraints import ConstraintExpression
from repro.core import ECF, LNS, RWB, EmbeddingAlgorithm, make_algorithm
from repro.core.base import SearchContext
from repro.graphs import HostingNetwork, QueryNetwork
from repro.workloads import planetlab_host

WINDOW = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"


# --------------------------------------------------------------------------- #
# Budget / SearchRequest
# --------------------------------------------------------------------------- #

class TestBudget:
    def test_defaults_are_unlimited(self):
        budget = Budget()
        assert budget.timeout is None
        assert budget.max_results is None
        assert not budget.wants_single

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(timeout=0)
        with pytest.raises(ValueError):
            Budget(timeout=-1.0)
        with pytest.raises(ValueError):
            Budget(max_results=0)

    def test_first_match(self):
        budget = Budget.first_match(timeout=2.0)
        assert budget.max_results == 1
        assert budget.timeout == 2.0
        assert budget.wants_single

    def test_with_default_timeout(self):
        assert Budget().with_default_timeout(5.0).timeout == 5.0
        assert Budget(timeout=1.0).with_default_timeout(5.0).timeout == 1.0
        assert Budget().with_default_timeout(None).timeout is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            Budget().timeout = 3.0


class TestSearchRequest:
    def test_coerces_string_constraints(self, small_hosting, path_query):
        request = SearchRequest.build(path_query, small_hosting, constraint=WINDOW,
                                      node_constraint="vNode.demand <= 1")
        assert isinstance(request.constraint, ConstraintExpression)
        assert isinstance(request.node_constraint, ConstraintExpression)

    def test_none_constraint_becomes_always_true(self, small_hosting, path_query):
        request = SearchRequest.build(path_query, small_hosting)
        assert request.constraint.is_trivial
        assert request.node_constraint is None

    def test_type_validation(self, small_hosting, path_query):
        with pytest.raises(TypeError):
            SearchRequest.build(small_hosting, small_hosting)
        with pytest.raises(TypeError):
            SearchRequest.build(path_query, "not-a-network")
        with pytest.raises(TypeError):
            SearchRequest.build(path_query, small_hosting, constraint=42)

    def test_directedness_must_agree(self, small_hosting):
        directed_query = QueryNetwork("d", directed=True)
        directed_query.add_node("x")
        with pytest.raises(ValueError):
            SearchRequest.build(directed_query, small_hosting)

    def test_budget_and_flat_kwargs_are_exclusive(self, small_hosting, path_query):
        with pytest.raises(ValueError):
            SearchRequest.build(path_query, small_hosting, timeout=1.0,
                                budget=Budget(timeout=2.0))
        request = SearchRequest.build(path_query, small_hosting, timeout=1.5,
                                      max_results=3)
        assert request.timeout == 1.5
        assert request.max_results == 3

    def test_frozen_and_replace(self, small_hosting, path_query):
        request = SearchRequest.build(path_query, small_hosting)
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.budget = Budget()
        tighter = request.replace(budget=Budget.first_match())
        assert tighter.max_results == 1
        assert request.max_results is None

    def test_request_entry_point_matches_search(self, small_hosting, path_query,
                                                window_constraint):
        request = SearchRequest.build(path_query, small_hosting,
                                      constraint=window_constraint)
        via_request = ECF().request(request)
        via_search = ECF().search(path_query, small_hosting,
                                  constraint=window_constraint)
        assert via_request.status == via_search.status
        assert sorted(via_request.mappings, key=repr) == \
            sorted(via_search.mappings, key=repr)

    def test_request_rejects_non_request(self, small_hosting, path_query):
        with pytest.raises(TypeError):
            ECF().request(path_query)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

class _Fake(EmbeddingAlgorithm):
    name = "fake"

    def _run(self, context: SearchContext) -> bool:
        return True


class TestAlgorithmRegistry:
    def test_register_and_lookup_case_insensitive(self):
        registry = AlgorithmRegistry()
        registry.register("Fake", _Fake, capabilities=[Capability.DETERMINISTIC])
        assert "fake" in registry
        assert "FAKE" in registry
        assert registry.get("fAkE").name == "Fake"
        assert isinstance(registry.create("fake"), _Fake)
        assert len(registry) == 1

    def test_duplicate_name_rejected(self):
        registry = AlgorithmRegistry()
        registry.register("fake", _Fake)
        with pytest.raises(DuplicateAlgorithmError):
            registry.register("FAKE", _Fake)
        registry.register("fake", _Fake, replace=True)   # explicit override OK

    def test_unknown_lookup_lists_available(self):
        registry = AlgorithmRegistry()
        registry.register("fake", _Fake)
        with pytest.raises(UnknownAlgorithmError, match="fake"):
            registry.get("ghost")
        assert issubclass(UnknownAlgorithmError, ValueError)

    def test_capability_queries(self):
        registry = AlgorithmRegistry()
        registry.register("a", _Fake, capabilities=[Capability.DETERMINISTIC])
        registry.register("b", _Fake,
                          capabilities=["deterministic", "complete-enumeration"])
        both = registry.with_capabilities("complete-enumeration")
        assert [info.name for info in both] == ["b"]
        assert len(registry.with_capabilities(Capability.DETERMINISTIC)) == 2

    def test_unknown_capability_string_rejected(self):
        registry = AlgorithmRegistry()
        with pytest.raises(ValueError, match="unknown capability"):
            registry.register("x", _Fake, capabilities=["time-travel"])

    def test_decorator_registers_and_returns_class(self):
        registry = AlgorithmRegistry()

        @register_algorithm("deco", capabilities=[Capability.HEURISTIC],
                            tags=["test"], registry=registry)
        class Deco(_Fake):
            """One-line summary taken from the docstring."""

        assert Deco.__name__ == "Deco"
        info = registry.get("deco")
        assert info.summary.startswith("One-line summary")
        assert info.has(Capability.HEURISTIC)
        assert [i.name for i in registry.with_tag("test")] == ["deco"]

    def test_unregister(self):
        registry = AlgorithmRegistry()
        registry.register("fake", _Fake)
        registry.unregister("fake")
        assert "fake" not in registry
        with pytest.raises(UnknownAlgorithmError):
            registry.unregister("fake")


class TestDefaultRegistry:
    def test_all_seven_builtins_discoverable(self):
        import repro.baselines  # noqa: F401 — ensure baseline registration
        names = set(default_registry().names())
        assert {"ECF", "RWB", "LNS",
                "annealing", "bruteforce", "genetic", "stress"} <= names
        for info in default_registry().infos():
            assert info.capabilities, f"{info.name} declares no capabilities"

    def test_make_algorithm_delegates_to_registry(self):
        import repro.baselines  # noqa: F401
        assert isinstance(make_algorithm("ecf"), ECF)
        assert isinstance(make_algorithm("bruteforce").name, str)
        with pytest.raises(ValueError):
            make_algorithm("quantum")

    def test_core_tags_partition_the_builtins(self):
        import repro.baselines  # noqa: F401
        core = {i.name for i in default_registry().with_tag("core")}
        baseline = {i.name for i in default_registry().with_tag("baseline")}
        assert core == {"ECF", "RWB", "LNS"}
        assert baseline == {"annealing", "bruteforce", "genetic", "stress"}


# --------------------------------------------------------------------------- #
# Selection policies
# --------------------------------------------------------------------------- #

def _sparse_hosting() -> HostingNetwork:
    """An 8-node ring: density 8/28 ≈ 0.29 (< the policy's dense threshold)."""
    hosting = HostingNetwork("ring8")
    nodes = [f"n{i}" for i in range(8)]
    for node in nodes:
        hosting.add_node(node)
    for i, node in enumerate(nodes):
        hosting.add_edge(node, nodes[(i + 1) % 8], avgDelay=10.0)
    return hosting


def _irregular_query() -> QueryNetwork:
    query = QueryNetwork("path3")
    for node in ("x", "y", "z"):
        query.add_node(node)
    query.add_edge("x", "y")
    query.add_edge("y", "z")
    return query


class TestPaperSelectionPolicy:
    def test_dense_single_match_picks_low_memory_searcher(self):
        policy = PaperSelectionPolicy()
        info = policy.select(_irregular_query(), planetlab_host(24, rng=1),
                             max_results=1)
        assert info.name == "LNS"
        assert info.has(Capability.LOW_MEMORY)

    def test_full_enumeration_picks_filtered_enumerator(self, small_hosting):
        policy = PaperSelectionPolicy()
        info = policy.select(_irregular_query(), small_hosting, max_results=None)
        assert info.name == "ECF"
        assert info.has(Capability.COMPLETE_ENUMERATION)

    def test_sparse_irregular_single_match_picks_randomized(self):
        policy = PaperSelectionPolicy()
        info = policy.select(_irregular_query(), _sparse_hosting(), max_results=1)
        assert info.name == "RWB"
        assert info.has(Capability.RANDOMIZED)

    def test_policy_is_capability_driven_not_name_driven(self):
        registry = AlgorithmRegistry()
        registry.register("novel", _Fake, tags=["core"], capabilities=[
            Capability.COMPLETE_ENUMERATION, Capability.LOW_MEMORY,
            Capability.SUPPORTS_DIRECTED])
        info = PaperSelectionPolicy().select(
            _irregular_query(), planetlab_host(24, rng=1), max_results=1,
            registry=registry)
        assert info.name == "novel"

    def test_baselines_excluded_from_auto_selection(self):
        # Every capability combination the policy asks for resolves to a
        # core algorithm, never an incomplete baseline.
        import repro.baselines  # noqa: F401
        policy = PaperSelectionPolicy()
        for max_results in (None, 1, 5):
            info = policy.select(_irregular_query(), _sparse_hosting(),
                                 max_results=max_results)
            assert "core" in info.tags

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PaperSelectionPolicy(density_threshold=1.5)

    def test_fixed_policy(self, small_hosting):
        info = FixedSelectionPolicy("LNS").select(_irregular_query(), small_hosting)
        assert info.name == "LNS"


# --------------------------------------------------------------------------- #
# RWB seed handling
# --------------------------------------------------------------------------- #

class TestRWBSeed:
    def test_seed_kwarg_matches_int_rng(self, small_hosting, path_query,
                                        window_constraint):
        by_seed = RWB(seed=11).search(path_query, small_hosting,
                                      constraint=window_constraint, max_results=1)
        by_rng = RWB(rng=11).search(path_query, small_hosting,
                                    constraint=window_constraint, max_results=1)
        assert [m.as_dict() for m in by_seed.mappings] == \
            [m.as_dict() for m in by_rng.mappings]

    def test_seed_and_rng_are_exclusive(self):
        with pytest.raises(ValueError):
            RWB(rng=1, seed=2)

    def test_seed_must_be_int(self):
        with pytest.raises(TypeError):
            RWB(seed="eleven")
        with pytest.raises(TypeError):
            RWB(seed=True)


# --------------------------------------------------------------------------- #
# Streaming
# --------------------------------------------------------------------------- #

class TestStreaming:
    def test_iter_mappings_yields_what_search_finds(self, small_hosting,
                                                    path_query, window_constraint):
        eager = ECF().search(path_query, small_hosting,
                             constraint=window_constraint)
        lazy = list(ECF().iter_mappings(path_query, small_hosting,
                                        constraint=window_constraint))
        assert sorted(lazy, key=repr) == sorted(eager.mappings, key=repr)

    def test_streaming_respects_max_results(self, small_hosting, path_query,
                                            window_constraint):
        lazy = list(ECF().iter_mappings(path_query, small_hosting,
                                        constraint=window_constraint,
                                        max_results=2))
        assert len(lazy) == 2

    def test_early_close_aborts_the_search(self):
        hosting = planetlab_host(20, rng=2)
        query = _irregular_query()
        stream = LNS().iter_mappings(query, hosting, timeout=30.0)
        first = next(stream)
        assert first is not None
        stream.close()     # must abort the producer thread, not hang

    def test_close_returns_promptly_without_timeout(self):
        # The cancel event must interrupt the search in a barren region,
        # not just between recorded mappings — with no deadline at all the
        # close would otherwise block until the search exhausts.
        import time

        hosting = planetlab_host(40, rng=1)
        query = QueryNetwork("chain")
        labels = [f"n{i}" for i in range(7)]
        for label in labels:
            query.add_node(label)
        for left, right in zip(labels, labels[1:]):
            query.add_edge(left, right)
        stream = ECF().iter_mappings(query, hosting)    # no timeout
        next(stream)
        start = time.monotonic()
        stream.close()
        assert time.monotonic() - start < 2.0

    def test_stream_request_form(self, small_hosting, path_query,
                                 window_constraint):
        request = SearchRequest.build(path_query, small_hosting,
                                      constraint=window_constraint)
        assert len(list(ECF().stream(request))) == \
            ECF().request(request).count

    def test_buffer_size_validation(self, small_hosting, path_query):
        request = SearchRequest.build(path_query, small_hosting)
        with pytest.raises(ValueError):
            ECF().stream(request, buffer_size=0)

    def test_search_errors_reraise_in_consumer(self, small_hosting, path_query):
        class Exploding(EmbeddingAlgorithm):
            name = "exploding"

            def _run(self, context):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            list(Exploding().iter_mappings(path_query, small_hosting))
