"""Tests for the open-loop Poisson arrival generators."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.workloads import (
    Arrival,
    arrival_schedule,
    diurnal_rate,
    inhomogeneous_poisson_arrivals,
    poisson_arrivals,
)


class TestPoissonArrivals:
    def test_deterministic_under_seed(self):
        first = arrival_schedule(poisson_arrivals(10.0, 5.0, rng=42))
        second = arrival_schedule(poisson_arrivals(10.0, 5.0, rng=42))
        assert first == second
        assert first != arrival_schedule(poisson_arrivals(10.0, 5.0, rng=43))

    def test_offsets_increase_within_horizon(self):
        trace = arrival_schedule(poisson_arrivals(20.0, 3.0, rng=1))
        offsets = [a.offset for a in trace]
        assert offsets == sorted(offsets)
        assert all(0.0 < offset < 3.0 for offset in offsets)
        assert [a.index for a in trace] == list(range(len(trace)))

    def test_mean_rate_roughly_lambda(self):
        # λ=50 over 20s → 1000 expected arrivals; 3 sigma ≈ ±95.
        trace = arrival_schedule(poisson_arrivals(50.0, 20.0, rng=7))
        assert 1000 - 100 <= len(trace) <= 1000 + 100
        gaps = [b.offset - a.offset for a, b in zip(trace, trace[1:])]
        assert statistics.mean(gaps) == pytest.approx(1 / 50.0, rel=0.15)

    def test_tenants_round_robin(self):
        trace = arrival_schedule(
            poisson_arrivals(30.0, 2.0, tenants=["a", "b", "c"], rng=3))
        assert [a.tenant for a in trace[:6]] == ["a", "b", "c", "a", "b", "c"]

    def test_default_tenant(self):
        trace = arrival_schedule(poisson_arrivals(30.0, 1.0, rng=3))
        assert all(a.tenant == "default" for a in trace)

    @pytest.mark.parametrize("rate,horizon", [(0.0, 1.0), (-1.0, 1.0),
                                              (1.0, 0.0), (1.0, -2.0)])
    def test_invalid_parameters(self, rate, horizon):
        with pytest.raises(ValueError):
            next(poisson_arrivals(rate, horizon))


class TestInhomogeneousArrivals:
    def test_constant_rate_fn_matches_homogeneous_statistics(self):
        trace = arrival_schedule(inhomogeneous_poisson_arrivals(
            lambda t: 40.0, horizon=20.0, rate_max=40.0, rng=11))
        assert 800 - 90 <= len(trace) <= 800 + 90
        offsets = [a.offset for a in trace]
        assert offsets == sorted(offsets)

    def test_thinning_tracks_the_rate_curve(self):
        # Rate 5 in the first half, 50 in the second: the second half must
        # hold the overwhelming majority of arrivals.
        step = lambda t: 5.0 if t < 10.0 else 50.0  # noqa: E731
        trace = arrival_schedule(inhomogeneous_poisson_arrivals(
            step, horizon=20.0, rate_max=50.0, rng=5))
        early = sum(a.offset < 10.0 for a in trace)
        late = len(trace) - early
        assert late > 5 * early

    def test_rate_above_envelope_raises(self):
        with pytest.raises(ValueError, match="rate_max"):
            arrival_schedule(inhomogeneous_poisson_arrivals(
                lambda t: 100.0, horizon=10.0, rate_max=10.0, rng=0))

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError, match="thinning"):
            arrival_schedule(inhomogeneous_poisson_arrivals(
                lambda t: -1.0, horizon=10.0, rate_max=10.0, rng=0))

    def test_zero_rate_yields_nothing(self):
        trace = arrival_schedule(inhomogeneous_poisson_arrivals(
            lambda t: 0.0, horizon=5.0, rate_max=10.0, rng=0))
        assert trace == []

    def test_indices_are_contiguous_despite_thinning(self):
        trace = arrival_schedule(inhomogeneous_poisson_arrivals(
            diurnal_rate(5.0, 30.0, period=10.0), horizon=10.0,
            rate_max=30.0, tenants=["x", "y"], rng=9))
        assert [a.index for a in trace] == list(range(len(trace)))
        assert all(a.tenant == ("x" if a.index % 2 == 0 else "y")
                   for a in trace)


class TestDiurnalRate:
    def test_curve_bounds_and_shape(self):
        rate = diurnal_rate(2.0, 10.0, period=100.0)
        assert rate(0.0) == pytest.approx(2.0)       # night
        assert rate(50.0) == pytest.approx(10.0)     # peak, half a period in
        assert rate(100.0) == pytest.approx(2.0)     # back to night
        samples = [rate(t) for t in range(0, 100)]
        assert min(samples) >= 2.0 - 1e-9
        assert max(samples) <= 10.0 + 1e-9

    def test_period_wraps(self):
        rate = diurnal_rate(1.0, 3.0, period=7.0)
        assert rate(1.0) == pytest.approx(rate(8.0))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            diurnal_rate(-1.0, 5.0)
        with pytest.raises(ValueError):
            diurnal_rate(5.0, 1.0)
        with pytest.raises(ValueError):
            diurnal_rate(1.0, 5.0, period=0.0)


def test_arrival_is_frozen():
    arrival = Arrival(offset=1.0, index=0)
    with pytest.raises(Exception):
        arrival.offset = 2.0
    assert math.isclose(arrival.offset, 1.0)
