"""Tests for the baseline mappers (§II / §VII-F comparators)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BASELINES,
    BruteForceCSP,
    GeneticAlgorithmMapper,
    SimulatedAnnealingMapper,
    StressGreedyMapper,
    assignment_violations,
    random_injective_assignment,
)
from repro.core import ECF, ResultStatus, is_valid_mapping
from repro.core.base import SearchContext
from repro.constraints import ConstraintExpression
from repro.graphs import QueryNetwork
from repro.utils.rng import as_rng
from repro.utils.timing import Deadline
from repro.workloads import planetlab_host, subgraph_query


@pytest.fixture(scope="module")
def host():
    return planetlab_host(30, rng=21)


@pytest.fixture(scope="module")
def workload(host):
    return subgraph_query(host, 5, rng=22)


def _context(query, hosting, constraint):
    return SearchContext(query=query, hosting=hosting,
                         constraint=ConstraintExpression(constraint)
                         if isinstance(constraint, str) else constraint,
                         node_constraint=None, deadline=Deadline.unlimited(),
                         max_results=None)


class TestCommonHelpers:
    def test_violations_zero_for_valid_embedding(self, small_hosting, path_query,
                                                 window_constraint):
        context = _context(path_query, small_hosting, window_constraint)
        assert assignment_violations(context, {"x": "a", "y": "b", "z": "e"}) == 0

    def test_violations_count_bad_edges(self, small_hosting, path_query,
                                        window_constraint):
        context = _context(path_query, small_hosting, window_constraint)
        # x->b, y->c violates the (x, y) window (50ms > 35ms); (y, z)=c-f is fine.
        assert assignment_violations(context, {"x": "b", "y": "c", "z": "f"}) == 1

    def test_violations_penalise_non_injective_assignments(self, small_hosting,
                                                           path_query,
                                                           window_constraint):
        context = _context(path_query, small_hosting, window_constraint)
        violations = assignment_violations(context, {"x": "a", "y": "b", "z": "b"})
        assert violations >= 1

    def test_random_injective_assignment_is_injective(self, small_hosting,
                                                      path_query, window_constraint):
        context = _context(path_query, small_hosting, window_constraint)
        for seed in range(5):
            assignment = random_injective_assignment(context, as_rng(seed))
            assert assignment is not None
            assert len(set(assignment.values())) == len(assignment)


class TestBruteForce:
    def test_agrees_with_ecf_on_full_enumeration(self, small_hosting, path_query,
                                                 window_constraint):
        ecf = ECF().search(path_query, small_hosting, constraint=window_constraint)
        brute = BruteForceCSP().search(path_query, small_hosting,
                                       constraint=window_constraint)
        assert brute.status is ResultStatus.COMPLETE
        assert set(brute.mappings) == set(ecf.mappings)

    def test_does_more_work_than_ecf(self, host, workload):
        ecf = ECF().search(workload.query, host, constraint=workload.constraint,
                           max_results=1)
        brute = BruteForceCSP().search(workload.query, host,
                                       constraint=workload.constraint, max_results=1)
        assert brute.found and ecf.found
        # The whole point of the filters + ordering: far fewer candidates touched.
        assert ecf.stats.candidates_considered < brute.stats.candidates_considered

    def test_proves_infeasibility(self, small_hosting, triangle_query):
        result = BruteForceCSP().search(triangle_query, small_hosting)
        assert result.proved_infeasible


class TestMetaheuristics:
    def test_annealing_finds_feasible_embedding(self, host, workload):
        mapper = SimulatedAnnealingMapper(max_iterations=8000, restarts=3, rng=5)
        result = mapper.search(workload.query, host, constraint=workload.constraint,
                               timeout=30)
        if result.found:
            assert is_valid_mapping(result.first, workload.query, host,
                                    workload.constraint)
            # A metaheuristic never certifies completeness.
            assert result.status is ResultStatus.PARTIAL

    def test_annealing_cannot_prove_infeasibility(self, small_hosting,
                                                  window_constraint):
        query = QueryNetwork("impossible")
        query.add_node("x")
        query.add_node("y")
        query.add_edge("x", "y", minDelay=1000.0, maxDelay=2000.0)
        mapper = SimulatedAnnealingMapper(max_iterations=300, restarts=1, rng=1)
        result = mapper.search(query, small_hosting, constraint=window_constraint)
        assert not result.found
        assert result.status is ResultStatus.INCONCLUSIVE   # not a proof

    def test_genetic_finds_feasible_embedding_on_small_instance(self, small_hosting,
                                                                path_query,
                                                                window_constraint):
        mapper = GeneticAlgorithmMapper(population_size=30, generations=80, rng=3)
        result = mapper.search(path_query, small_hosting,
                               constraint=window_constraint, timeout=30)
        assert result.found
        assert is_valid_mapping(result.first, path_query, small_hosting,
                                window_constraint)

    def test_genetic_mappings_are_injective(self, host, workload):
        mapper = GeneticAlgorithmMapper(population_size=20, generations=40, rng=9)
        result = mapper.search(workload.query, host, constraint=workload.constraint,
                               timeout=30)
        for mapping in result.mappings:
            assert mapping.is_injective()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingMapper(max_iterations=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingMapper(cooling=1.5)
        with pytest.raises(ValueError):
            GeneticAlgorithmMapper(population_size=1)
        with pytest.raises(ValueError):
            GeneticAlgorithmMapper(mutation_rate=2.0)


class TestStressGreedy:
    def test_valid_when_it_succeeds(self, small_hosting, path_query,
                                    window_constraint):
        result = StressGreedyMapper().search(path_query, small_hosting,
                                             constraint=window_constraint)
        if result.found:
            assert is_valid_mapping(result.first, path_query, small_hosting,
                                    window_constraint)

    def test_prefers_lightly_loaded_hosts(self, small_hosting, window_constraint):
        query = QueryNetwork("single-link")
        query.add_node("x")
        query.add_node("y")
        query.add_edge("x", "y", minDelay=5.0, maxDelay=60.0)
        result = StressGreedyMapper().search(query, small_hosting,
                                             constraint=window_constraint)
        assert result.found
        # cpuLoad acts as the stress metric: the chosen pair should involve the
        # lightly loaded d (0.1) or a (0.2) rather than c (0.8).
        chosen = set(result.first.hosting_nodes())
        assert chosen & {"a", "d"}

    def test_greedy_failure_is_inconclusive_not_proof(self, small_hosting,
                                                      triangle_query):
        result = StressGreedyMapper().search(triangle_query, small_hosting)
        assert not result.found
        # Structural infeasibility is caught by the cheap pre-check, which IS a
        # proof; use a constrained-but-possible query to see the greedy gap.
        assert result.status in (ResultStatus.COMPLETE, ResultStatus.INCONCLUSIVE)


class TestRegistry:
    def test_baseline_registry_instantiates(self):
        assert set(BASELINES) == {"bruteforce", "annealing", "genetic", "stress"}
        for cls in BASELINES.values():
            instance = cls()
            assert hasattr(instance, "search")
