"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graphs import HostingNetwork, QueryNetwork, read_graphml, write_graphml


@pytest.fixture
def graphml_pair(tmp_path, small_hosting, path_query):
    host_path = write_graphml(small_hosting, tmp_path / "host.graphml")
    query_path = write_graphml(path_query, tmp_path / "query.graphml")
    return host_path, query_path


WINDOW = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_embed_requires_hosting_and_query(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["embed", "--hosting", "h.graphml"])

    def test_experiment_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestEmbedCommand:
    def test_plain_output(self, graphml_pair, capsys):
        host_path, query_path = graphml_pair
        code = main(["embed", "--hosting", str(host_path), "--query", str(query_path),
                     "--constraint", WINDOW, "--algorithm", "ECF"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "ECF" in captured
        assert "->" in captured

    def test_json_output(self, graphml_pair, capsys):
        host_path, query_path = graphml_pair
        code = main(["embed", "--hosting", str(host_path), "--query", str(query_path),
                     "--constraint", WINDOW, "--algorithm", "LNS",
                     "--max-results", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "LNS"
        assert payload["status"] in ("complete", "partial")
        assert 1 <= len(payload["mappings"]) <= 2
        assert all(isinstance(m, dict) for m in payload["mappings"])

    def test_rwb_with_seed(self, graphml_pair, capsys):
        host_path, query_path = graphml_pair
        code = main(["embed", "--hosting", str(host_path), "--query", str(query_path),
                     "--constraint", WINDOW, "--algorithm", "RWB", "--seed", "3"])
        assert code == 0

    def test_infeasible_query_returns_nonzero_when_inconclusive(self, tmp_path,
                                                                small_hosting,
                                                                capsys):
        # A query that needs more nodes than the host has, forced through a
        # tiny timeout: nothing can be found.
        big = QueryNetwork("big")
        for index in range(4):
            big.add_node(f"q{index}")
        big.add_edge("q0", "q1", minDelay=1.0, maxDelay=2.0)
        big.add_edge("q1", "q2", minDelay=1.0, maxDelay=2.0)
        big.add_edge("q2", "q3", minDelay=1.0, maxDelay=2.0)
        host_path = write_graphml(small_hosting, tmp_path / "h.graphml")
        query_path = write_graphml(big, tmp_path / "q.graphml")
        code = main(["embed", "--hosting", str(host_path), "--query", str(query_path),
                     "--constraint", WINDOW, "--algorithm", "ECF"])
        # Proven infeasible is still a *conclusive* answer: exit code 0.
        assert code == 0
        assert "0 embedding(s)" in capsys.readouterr().out


class TestPlanCommand:
    def test_explains_cache_hits_and_entries(self, graphml_pair, capsys):
        host_path, query_path = graphml_pair
        code = main(["plan", "--hosting", str(host_path), "--query", str(query_path),
                     "--constraint", WINDOW, "--algorithm", "ECF", "--repeat", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "plan cache:" in out
        assert "2 hits / 1 misses" in out
        assert "run 0: cache miss" in out
        assert "run 1: cache hit" in out

    def test_json_output_with_tick_invalidation(self, graphml_pair, capsys):
        host_path, query_path = graphml_pair
        code = main(["plan", "--hosting", str(host_path), "--query", str(query_path),
                     "--constraint", WINDOW, "--repeat", "2", "--tick", "1",
                     "--seed", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["hits"] == 1
        assert payload["runs"][0]["cache"] == "miss"
        assert payload["runs"][1]["cache"] == "hit"
        # the monitor tick bumped the model version: the re-run must miss
        assert payload["invalidation"]["cache"] == "miss"
        assert payload["invalidation"]["model_version"] == 1
        assert all(entry["fingerprint"] for entry in payload["entries"])

    def test_non_preparable_algorithm_reports_bypass(self, graphml_pair, capsys):
        host_path, query_path = graphml_pair
        code = main(["plan", "--hosting", str(host_path), "--query", str(query_path),
                     "--constraint", WINDOW, "--algorithm", "bruteforce",
                     "--repeat", "2", "--max-results", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [run["cache"] for run in payload["runs"]] == ["bypass", "bypass"]
        assert payload["cache"]["hits"] == 0 and payload["cache"]["misses"] == 0

    def test_rejects_nonpositive_repeat(self, graphml_pair, capsys):
        host_path, query_path = graphml_pair
        code = main(["plan", "--hosting", str(host_path), "--query", str(query_path),
                     "--repeat", "0"])
        assert code == 2


class TestChurnCommand:
    def test_plain_output_reports_repair_and_cache(self, capsys):
        code = main(["churn", "--sites", "24", "--queries", "2",
                     "--query-size", "5", "--ticks", "3", "--seed", "4"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "churn scenario" in captured
        assert "repairs:" in captured and "intact" in captured
        assert "re-embed" in captured
        assert "patched" in captured and "recompiled" in captured

    def test_json_output_shape(self, capsys):
        code = main(["churn", "--sites", "20", "--queries", "2",
                     "--query-size", "4", "--ticks", "2", "--seed", "5",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["ticks"] == 2
        checks = payload["repair"]
        assert (checks["intact"] + checks["repaired"] + checks["failed"]
                + checks["timeout"]) == 2 * 2
        assert payload["cost"]["repair_seconds"] >= 0
        assert "patched" in payload["plan_cache"]
        assert len(payload["ticks"]) == 2

    def test_rejects_bad_tick_count(self):
        assert main(["churn", "--ticks", "0"]) == 2


class TestGenerateCommand:
    @pytest.mark.parametrize("kind,size", [("planetlab", 24), ("brite", 30)])
    def test_generates_graphml(self, tmp_path, capsys, kind, size):
        output = tmp_path / f"{kind}.graphml"
        code = main(["generate", kind, "--sites", str(size), "--seed", "5",
                     "--output", str(output)])
        assert code == 0
        network = read_graphml(output, cls=HostingNetwork)
        assert network.num_nodes == size
        assert network.num_edges > 0

    def test_generates_transit_stub(self, tmp_path):
        output = tmp_path / "ts.graphml"
        assert main(["generate", "transit-stub", "--seed", "2",
                     "--output", str(output)]) == 0
        network = read_graphml(output, cls=HostingNetwork)
        assert network.is_connected()


class TestExperimentCommand:
    def test_runs_a_small_experiment_and_writes_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "rows.csv"
        code = main(["experiment", "fig13", "--seed", "3", "--timeout", "2",
                     "--csv", str(csv_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment fig13" in out
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "algorithm" in header and "total_ms" in header

class TestServeCommand:
    def test_requires_hosting(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serves_for_duration_and_prints_summary(self, graphml_pair,
                                                    capsys):
        host_path, _ = graphml_pair
        code = main(["serve", "--hosting", str(host_path),
                     "--duration", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving 'small-host' (6 nodes, 7 edges" in out \
            or "serving 'small-host' (6 nodes, 7 links" in out
        assert "served 0 request(s), shed 0" in out

    def test_json_stats_shape(self, graphml_pair, capsys):
        host_path, _ = graphml_pair
        code = main(["serve", "--hosting", str(host_path),
                     "--duration", "0.1", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        stats = json.loads(out[out.index("{"):])
        assert set(stats) == {"service", "admission", "server"}
        assert "small-host" in stats["service"]["networks"]
        assert stats["admission"]["offered"] == 0

    def test_rejects_bad_qos_file(self, graphml_pair, tmp_path, capsys):
        host_path, _ = graphml_pair
        qos = tmp_path / "qos.json"
        qos.write_text('{"default": {"no_such_knob": 1}}')
        code = main(["serve", "--hosting", str(host_path),
                     "--duration", "0.1", "--qos", str(qos)])
        assert code == 2
        assert "cannot load QoS policies" in capsys.readouterr().err

    def test_end_to_end_over_the_socket(self, graphml_pair, path_query):
        """Serve on a real port and drive it with the async client."""
        import asyncio
        import socket
        import threading

        from repro.server import AsyncNetEmbedClient

        host_path, _ = graphml_pair
        with socket.socket() as probe:  # find a free port to pass in
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        thread = threading.Thread(target=main, args=(
            ["serve", "--hosting", str(host_path), "--port", str(port),
             "--duration", "1.5"],), daemon=True)
        thread.start()

        async def drive():
            for _ in range(100):  # wait for the listener to come up
                try:
                    client = await AsyncNetEmbedClient.connect("127.0.0.1",
                                                               port)
                    break
                except OSError:
                    await asyncio.sleep(0.02)
            else:
                raise AssertionError("server never came up")
            async with client:
                response = await client.embed(
                    path_query,
                    constraint="rEdge.avgDelay <= vEdge.maxDelay",
                    algorithm="ecf")
                metrics = await client.metrics()
            return response, metrics

        response, metrics = asyncio.run(drive())
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert response["kind"] == "result" and response["mappings"]
        assert metrics["admission"]["completed"] >= 1
        assert metrics["server"]["requests"]["embed"] == 1
