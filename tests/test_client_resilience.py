"""Client/server resilience: connection loss, retries, idempotency.

Every scenario runs the real protocol over a real loopback socket.  The
properties under test:

* a dead connection **never leaves a caller hanging** — outstanding
  futures fail with a structured :class:`ConnectionLostError` and later
  requests fail fast;
* :class:`RetryPolicy` reconnects with jittered exponential backoff,
  honours a shed's ``retry_after`` hint, and — combined with an
  idempotency key — guarantees at-most-once execution even when the
  answer (not the request) was lost on the wire;
* oversized frames get a structured protocol error, not a hang;
* ``health`` answers without touching admission;
* shutdown drain answers ``shed/server-shutdown`` even with an active
  connection-drop fault plan (satellite: stop() semantics are
  fault-plan-independent).
"""

from __future__ import annotations

import asyncio
import random
import threading
from types import SimpleNamespace

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec
from repro.server import (
    AdmissionConfig,
    AsyncNetEmbedClient,
    ConnectionLostError,
    EmbeddingServer,
    RetryPolicy,
    ServerConfig,
    ServiceRegistry,
    TenantPolicy,
)
from repro.server.protocol import MAX_MESSAGE_BYTES


def run(coro):
    return asyncio.run(coro)


class StubAlgorithms:
    def names(self):
        return ["stub"]

    def __contains__(self, name):
        return name == "stub"


class CountingService:
    """An engine stub that counts executions (and can block them)."""

    def __init__(self, block: bool = False) -> None:
        self.release = threading.Event()
        if not block:
            self.release.set()
        self.calls = []
        self.algorithms = StubAlgorithms()

    def submit(self, spec):
        self.calls.append(spec)
        self.release.wait(timeout=10.0)
        return SimpleNamespace(status=SimpleNamespace(value="ok"),
                               algorithm_used="stub", network_name="stub-net",
                               mappings=[], elapsed_seconds=0.0)

    def stats(self):
        return {"calls": len(self.calls)}


def counting_registry(block: bool = False, **admission_kwargs):
    service = CountingService(block=block)
    config = ServerConfig(engine_workers=1,
                          admission=AdmissionConfig(**admission_kwargs))
    return ServiceRegistry(config=config, service=service), service


@pytest.fixture
def no_active_plan():
    """Guard: these tests must not leak an installed fault plan."""
    assert faults.active() is None
    yield
    assert faults.active() is None


# --------------------------------------------------------------------------- #
# Connection loss: nobody hangs
# --------------------------------------------------------------------------- #

class TestConnectionLoss:
    def test_pending_request_fails_with_structured_error(self):
        """A server that hangs up mid-request fails the caller immediately."""
        async def scenario():
            async def hang_up(reader, writer):
                await reader.readline()         # swallow the request...
                writer.close()                  # ...and slam the door

            server = await asyncio.start_server(hang_up, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await AsyncNetEmbedClient.connect("127.0.0.1", port)
            with pytest.raises(ConnectionLostError) as excinfo:
                await client.ping()
            first = excinfo.value
            # Requests issued after the loss fail fast, same error type.
            with pytest.raises(ConnectionLostError) as again:
                await client.ping()
            lost_marker = client.connection_lost
            await client.close()
            server.close()
            await server.wait_closed()
            return first, again.value, lost_marker

        first, second, lost_marker = run(scenario())
        assert first.pending == 1               # exactly our in-flight request
        assert second.pending == 0              # issued after the loss
        assert lost_marker is not None

    def test_concurrent_pending_requests_all_fail(self):
        async def scenario():
            async def hang_up(reader, writer):
                await reader.readline()
                await reader.readline()
                writer.close()

            server = await asyncio.start_server(hang_up, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await AsyncNetEmbedClient.connect("127.0.0.1", port)
            results = await asyncio.gather(
                client.ping(), client.ping(), return_exceptions=True)
            await client.close()
            server.close()
            await server.wait_closed()
            return results

        results = run(scenario())
        assert len(results) == 2
        assert all(isinstance(r, ConnectionLostError) for r in results)

    def test_reconnect_restores_service(self, path_query, no_active_plan):
        registry, engine = counting_registry()
        plan = FaultPlan.fixed(
            FaultSpec("server.reply", "connection-drop", hits=(1,)))

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    with faults.injecting(plan):
                        with pytest.raises(ConnectionLostError):
                            await client.embed(path_query, algorithm="stub")
                        await client.reconnect()
                        pong = await client.ping()
                    return pong, client.reconnects

        pong, reconnects = run(scenario())
        assert pong["kind"] == "pong"
        assert reconnects == 1
        assert len(engine.calls) == 1           # the work did execute

    def test_reconnect_without_an_address_is_refused(self):
        async def scenario():
            async def hang_up(reader, writer):
                await reader.readline()
                writer.close()

            server = await asyncio.start_server(hang_up, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            client = AsyncNetEmbedClient(reader, writer)   # raw streams
            with pytest.raises(ConnectionLostError):
                await client.ping()
            with pytest.raises(ConnectionLostError, match="no remembered"):
                await client.reconnect()
            await client.close()
            server.close()
            await server.wait_closed()

        run(scenario())


# --------------------------------------------------------------------------- #
# RetryPolicy: backoff math and the full retry loop
# --------------------------------------------------------------------------- #

class TestRetryPolicy:
    def test_delay_is_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(10) == 1.0

    def test_delay_honours_retry_after(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.0)
        assert policy.delay(1, retry_after=0.5) == 0.5
        assert policy.delay(1, retry_after=0.001) == pytest.approx(0.01)

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25)
        delays = [policy.delay(1, rng=random.Random(7)) for _ in range(3)]
        assert delays[0] == delays[1] == delays[2]      # same seed, same delay
        assert 0.075 <= delays[0] <= 0.125

    def test_retry_reconnects_and_replays_after_a_drop(self, path_query,
                                                       no_active_plan):
        """The flagship scenario: the *answer* is lost, the retry must not
        re-execute — the idempotency key replays the recorded result."""
        registry, engine = counting_registry()
        plan = FaultPlan.fixed(
            FaultSpec("server.reply", "connection-drop", hits=(1,)))

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    with faults.injecting(plan):
                        response = await client.embed(
                            path_query, algorithm="stub",
                            idempotency_key="drop-1",
                            retry=RetryPolicy(base_delay=0.01), rng=1)
                    metrics = await client.metrics()
                    return response, client.reconnects, metrics

        response, reconnects, metrics = run(scenario())
        assert response["kind"] == "result"
        assert response["idempotent_replay"] is True
        assert reconnects == 1
        assert len(engine.calls) == 1           # at-most-once execution
        assert metrics["server"]["idempotent_hits"] == 1
        assert metrics["server"]["injected_connection_drops"] == 1

    def test_retry_honours_shed_retry_after(self, path_query):
        registry, engine = counting_registry(
            default_policy=TenantPolicy(rate=20.0, burst=1))

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    first = await client.embed(path_query, algorithm="stub")
                    second = await client.embed(
                        path_query, algorithm="stub",
                        retry=RetryPolicy(base_delay=0.001), rng=2)
                    metrics = await client.metrics()
                    return first, second, metrics

        first, second, metrics = run(scenario())
        assert first["kind"] == "result"
        assert second["kind"] == "result"       # retried through the shed
        assert metrics["admission"]["shed"]["tenant-rate"] >= 1
        assert len(engine.calls) == 2

    def test_sheds_without_retry_after_are_answers(self, path_query):
        # A dead-on-arrival deadline is shed with no retry_after hint; the
        # retry loop must hand it back instead of spinning.
        registry, engine = counting_registry()

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await client.embed(
                        path_query, algorithm="stub", deadline=1e-9,
                        retry=RetryPolicy(base_delay=0.001), rng=3)

        response = run(scenario())
        assert response["kind"] == "shed"
        assert response["reason"] == "deadline-expired"
        assert not engine.calls


# --------------------------------------------------------------------------- #
# Idempotency dedup on the server
# --------------------------------------------------------------------------- #

class TestIdempotency:
    def test_same_key_executes_once(self, path_query):
        registry, engine = counting_registry()

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    first = await client.embed(path_query, algorithm="stub",
                                               idempotency_key="once")
                    second = await client.embed(path_query, algorithm="stub",
                                                idempotency_key="once")
                    return first, second

        first, second = run(scenario())
        assert first["kind"] == second["kind"] == "result"
        assert "idempotent_replay" not in first
        assert second["idempotent_replay"] is True
        assert second["id"] != first["id"]      # replay keeps the new id
        assert len(engine.calls) == 1

    def test_distinct_keys_execute_separately(self, path_query):
        registry, engine = counting_registry()

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    await client.embed(path_query, algorithm="stub",
                                       idempotency_key="a")
                    await client.embed(path_query, algorithm="stub",
                                       idempotency_key="b")

        run(scenario())
        assert len(engine.calls) == 2

    def test_racing_duplicates_share_one_execution(self, path_query):
        registry, engine = counting_registry(block=True)

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    tasks = [asyncio.ensure_future(
                        client.embed(path_query, algorithm="stub",
                                     idempotency_key="race"))
                        for _ in range(3)]
                    while not engine.calls:
                        await asyncio.sleep(0.01)
                    engine.release.set()
                    return await asyncio.gather(*tasks)

        responses = run(scenario())
        assert [r["kind"] for r in responses] == ["result"] * 3
        assert sum(1 for r in responses
                   if r.get("idempotent_replay")) == 2
        assert len(engine.calls) == 1

    def test_invalid_key_is_a_bad_request(self, path_query):
        registry, engine = counting_registry()

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    from repro.server.protocol import network_payload
                    return await client.request({
                        "op": "embed", "query": network_payload(path_query),
                        "algorithm": "stub", "idempotency_key": 123})

        response = run(scenario())
        assert response["kind"] == "error"
        assert response["error"] == "bad-request"
        assert not engine.calls

    def test_errors_are_not_cached(self, path_query):
        # A shed is an answer for *that* attempt only: the retry must go
        # through admission again, not replay the rejection forever.
        registry, engine = counting_registry(
            default_policy=TenantPolicy(rate=50.0, burst=1))

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    await client.embed(path_query, algorithm="stub")
                    shed = await client.embed(path_query, algorithm="stub",
                                              idempotency_key="again")
                    await asyncio.sleep(0.05)   # refill the token bucket
                    replayed = await client.embed(path_query,
                                                  algorithm="stub",
                                                  idempotency_key="again")
                    return shed, replayed

        shed, replayed = run(scenario())
        assert shed["kind"] == "shed"
        assert replayed["kind"] == "result"
        assert "idempotent_replay" not in replayed


# --------------------------------------------------------------------------- #
# Health and oversized frames
# --------------------------------------------------------------------------- #

class TestHealthAndProtocol:
    def test_health_answers_ok_and_ready(self):
        registry, _ = counting_registry()

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await client.health()

        health = run(scenario())
        assert health["kind"] == "health"
        assert health["status"] == "ok"
        assert health["ready"] is True
        assert health["address"]

    def test_oversized_frame_gets_a_structured_error(self):
        """Satellite: an 8MB+ line over a live socket must produce a
        protocol error frame and a clean hang-up — never a hang."""
        registry, engine = counting_registry()

        async def scenario():
            async with EmbeddingServer(registry) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port, limit=MAX_MESSAGE_BYTES)
                frame = (b'{"op": "ping", "pad": "'
                         + b"x" * (MAX_MESSAGE_BYTES + 1024)
                         + b'"}\n')

                async def push():
                    # The server may hang up before the whole frame is
                    # written; that refusal is part of the contract.
                    try:
                        writer.write(frame)
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass

                push_task = asyncio.ensure_future(push())
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                await push_task
                eof = await reader.readline()
                writer.close()
                return line, eof

        line, eof = run(scenario())
        import json
        response = json.loads(line)
        assert response["kind"] == "error"
        assert response["error"] == "protocol"
        assert eof == b""                       # the server hung up after
        assert not engine.calls


# --------------------------------------------------------------------------- #
# Shutdown drain under an active fault plan
# --------------------------------------------------------------------------- #

class TestShutdownUnderFaults:
    def test_drain_sheds_server_shutdown_despite_drop_plan(self, path_query,
                                                           no_active_plan):
        """stop() answers are exempt from injection: queued work is shed
        ``server-shutdown`` on the wire even when every request-path reply
        is scheduled to be dropped."""
        registry, engine = counting_registry(block=True, max_queue_depth=4)
        plan = FaultPlan.fixed(
            FaultSpec("server.reply", "connection-drop",
                      hits=tuple(range(1, 21))))

        async def scenario():
            with faults.injecting(plan) as injector:
                server = await EmbeddingServer(registry).start()
                client = await AsyncNetEmbedClient.connect(
                    server.host, server.port)
                inflight = asyncio.ensure_future(
                    client.embed(path_query, algorithm="stub"))
                queued = [asyncio.ensure_future(
                    client.embed(path_query, algorithm="stub"))
                    for _ in range(2)]
                while not engine.calls or registry.admission.queued < 2:
                    await asyncio.sleep(0.01)
                engine.release.set()
                await server.stop()
                responses = await asyncio.gather(inflight, *queued)
                await client.close()
                return responses, injector.stats()

        responses, fired = run(scenario())
        kinds = sorted(r["kind"] for r in responses)
        assert kinds == ["result", "shed", "shed"]
        sheds = [r for r in responses if r["kind"] == "shed"]
        assert all(r["reason"] == "server-shutdown" for r in sheds)
        # Not one reply was dropped: the drain path bypasses injection.
        assert fired["total_fired"] == 0
