"""Two-level cluster search: differential oracle vs the monolithic engine."""

from __future__ import annotations

import random

import pytest

from repro.cluster import ClusterCoordinator, ClusterService, split_query
from repro.core.ecf import ECF
from repro.core.mapping import validate_mapping
from repro.api.request import SearchRequest
from repro.graphs.query import QueryNetwork
from repro.service import QuerySpec
from repro.workloads import (
    DELAY_WINDOW_CONSTRAINT,
    cross_partition_query,
    federated_planetlab,
    make_globally_infeasible,
    planetlab_host,
    subgraph_query,
)


@pytest.fixture(scope="module")
def hosting():
    return planetlab_host(48, rng=11)


@pytest.fixture(scope="module")
def coordinator(hosting):
    return ClusterCoordinator(hosting, attribute="region")


class TestSinglePartition:
    def test_feasible_by_construction_found_and_valid(self, hosting, coordinator):
        # Sample the query from inside the largest partition, so a
        # single-partition placement is guaranteed to exist.
        largest = max(coordinator.partition_map.names,
                      key=lambda p: len(coordinator.partition_map.nodes_of(p)))
        interior = hosting.subnetwork(coordinator.partition_map.nodes_of(largest))
        workload = subgraph_query(interior, 5, rng=3)
        result = coordinator.embed(workload.query,
                                   constraint=workload.constraint, seed=7)
        assert result.verdict == "feasible"
        mapping = result.first
        assert not validate_mapping(mapping, workload.query, hosting,
                                    workload.constraint)
        if not result.used_cross_partition:
            # The fragment assignment pins every node to the one partition.
            assert set(result.fragment_assignment.values()) == {result.partition}
            for host in mapping.hosting_nodes():
                assert (coordinator.partition_map.partition_of(host)
                        == result.partition)

    def test_plan_cache_reused_on_repeat(self, hosting, coordinator):
        workload = subgraph_query(hosting, 4, rng=5)
        before = coordinator.plans.stats()["hits"]
        coordinator.embed(workload.query, constraint=workload.constraint, seed=1)
        coordinator.embed(workload.query, constraint=workload.constraint, seed=1)
        assert coordinator.plans.stats()["hits"] > before

    def test_unknown_partition_order_raises(self, coordinator, path_query):
        with pytest.raises(KeyError):
            coordinator.embed(path_query, partition_order=["atlantis"])

    def test_bounded_working_set(self, hosting, coordinator):
        stats = coordinator.stats()
        assert stats["max_partition_nodes"] < hosting.num_nodes
        for worker in coordinator.workers.values():
            assert worker.network.num_nodes < hosting.num_nodes
        # Boundary structure is the only cross-partition state and is a
        # strict sub-network too.
        assert stats["boundary_nodes"] <= hosting.num_nodes
        assert stats["quotient_edges"] <= len(coordinator.workers) ** 2


class TestDifferentialOracle:
    """Partitioned verdicts must agree with the monolithic engine."""

    def test_feasible_workloads_agree(self, hosting, coordinator):
        for seed in (2, 9, 17):
            workload = subgraph_query(hosting, 5, rng=seed)
            mono = ECF().request(SearchRequest.build(
                workload.query, hosting, constraint=workload.constraint,
                timeout=10.0, max_results=1))
            cluster = coordinator.embed(workload.query,
                                        constraint=workload.constraint,
                                        timeout=10.0, seed=seed)
            assert mono.found
            assert cluster.verdict in ("feasible", "unknown")
            if cluster.verdict == "feasible":
                assert not validate_mapping(cluster.first, workload.query,
                                            hosting, workload.constraint)

    def test_infeasible_refutation_agrees(self, hosting, coordinator):
        workload = make_globally_infeasible(
            subgraph_query(hosting, 4, rng=21), hosting, rng=21)
        cluster = coordinator.embed(workload.query,
                                    constraint=workload.constraint,
                                    timeout=10.0)
        assert cluster.verdict == "infeasible"
        mono = ECF().request(SearchRequest.build(
            workload.query, hosting, constraint=workload.constraint,
            timeout=10.0))
        assert mono.proved_infeasible

    def test_never_feasible_when_oracle_refutes(self, hosting, coordinator):
        # Sweep a few sizes: whenever the cluster claims feasibility the
        # mapping must survive the monolithic validator (checked above), and
        # whenever it claims infeasibility the monolithic engine must agree.
        for size, seed in ((3, 31), (6, 32), (8, 33)):
            workload = subgraph_query(hosting, size, rng=seed)
            cluster = coordinator.embed(workload.query,
                                        constraint=workload.constraint,
                                        timeout=10.0, seed=seed)
            if cluster.verdict == "infeasible":
                mono = ECF().request(SearchRequest.build(
                    workload.query, hosting, constraint=workload.constraint,
                    timeout=10.0))
                assert mono.proved_infeasible


class TestCrossPartition:
    @pytest.fixture(scope="class")
    def federated(self):
        host = federated_planetlab(4, 30, rng=random.Random(3))
        coordinator = ClusterCoordinator(host, attribute="zone")
        return host, coordinator

    def test_split_query_contiguous_cover(self, federated):
        host, coordinator = federated
        workload = cross_partition_query(host, coordinator.partition_map,
                                         num_nodes=6, rng=random.Random(7))
        fragments = split_query(workload.query, 2)
        covered = [n for frag in fragments for n in frag]
        assert sorted(covered) == sorted(workload.query.nodes())
        assert len(fragments) == 2

    def test_wide_area_query_stitched_across_partitions(self, federated):
        host, coordinator = federated
        workload = cross_partition_query(host, coordinator.partition_map,
                                         num_nodes=6, rng=random.Random(7))
        result = coordinator.embed(workload.query,
                                   constraint=workload.constraint,
                                   timeout=30.0, seed=11)
        assert result.verdict == "feasible"
        assert result.used_cross_partition
        mapping = result.first
        assert not validate_mapping(mapping, workload.query, host,
                                    workload.constraint)
        spanned = {coordinator.partition_map.partition_of(r)
                   for r in mapping.hosting_nodes()}
        assert len(spanned) >= 2
        assert set(result.fragment_assignment.values()) == spanned

    def test_stitched_mapping_respects_boundary(self, federated):
        host, coordinator = federated
        workload = cross_partition_query(host, coordinator.partition_map,
                                         num_nodes=6, rng=random.Random(19))
        result = coordinator.embed(workload.query,
                                   constraint=workload.constraint,
                                   timeout=30.0, seed=5)
        if not result.used_cross_partition or not result.found:
            pytest.skip("this draw embedded without crossing partitions")
        mapping = result.first
        assignment = coordinator.partition_map.assignment
        for u, v in workload.query.edges():
            ru, rv = mapping[u], mapping[v]
            if assignment[ru] != assignment[rv]:
                # Every cut query edge landed on a real boundary edge.
                assert coordinator.boundary.has_edge(ru, rv)


class TestReplicationRefresh:
    def test_attribute_delta_refresh(self):
        hosting = planetlab_host(30, rng=4)
        coordinator = ClusterCoordinator(hosting, attribute="region")
        assert coordinator.refresh() == {"changed": False, "mode": "noop"}
        u, v = hosting.edges()[0]
        hosting.update_edge(u, v, avgDelay=123.0)
        report = coordinator.refresh()
        assert report["mode"] == "delta"
        part = coordinator.partition_map.assignment[u]
        worker = coordinator.workers[part]
        if worker.network.has_edge(u, v):
            assert worker.network.get_edge_attr(u, v, "avgDelay") == 123.0

    def test_structural_churn_resyncs_and_places_new_nodes(self):
        hosting = planetlab_host(30, rng=4)
        coordinator = ClusterCoordinator(hosting, attribute="region")
        victim = hosting.nodes()[0]
        hosting.remove_node(victim)
        hosting.add_node("fresh-site", region="asia")
        report = coordinator.refresh()
        assert report["mode"] in ("structural-resync", "overflow-resync")
        assert victim not in coordinator.partition_map.assignment
        assert coordinator.partition_map.partition_of("fresh-site") == "asia"


class TestClusterService:
    def test_submit_reserve_release(self):
        # Own hosting instance: reservations charge capacity, which the
        # shared module fixture deliberately does not declare.
        hosting = planetlab_host(48, rng=11)
        for node in hosting.nodes():
            hosting.set_capacity(node, 4.0)
        probe = ClusterCoordinator(hosting, attribute="region")
        largest = max(probe.partition_map.names,
                      key=lambda p: len(probe.partition_map.nodes_of(p)))
        interior = hosting.subnetwork(probe.partition_map.nodes_of(largest))
        with ClusterService(default_timeout=10.0, attribute="region") as service:
            service.register_network(hosting, name="pl", default=True)
            workload = subgraph_query(interior, 4, rng=13)
            response = service.submit(QuerySpec(
                query=workload.query, constraint=workload.constraint,
                reserve=True, seed=2))
            assert response.found
            assert response.algorithm_used.startswith("cluster+")
            assert response.reservation_id is not None
            stats = service.stats()
            assert "pl" in stats["cluster"]
            assert stats["cluster"]["pl"]["partitions"] >= 2
            service.release(response.reservation_id)

    def test_submit_batch_order(self, hosting, coordinator):
        largest = max(coordinator.partition_map.names,
                      key=lambda p: len(coordinator.partition_map.nodes_of(p)))
        interior = hosting.subnetwork(coordinator.partition_map.nodes_of(largest))
        with ClusterService(default_timeout=10.0, attribute="region") as service:
            service.register_network(hosting, default=True)
            workloads = [subgraph_query(interior, 4, rng=s) for s in (1, 2, 3)]
            responses = service.submit_batch([
                QuerySpec(query=w.query, constraint=w.constraint)
                for w in workloads])
            assert len(responses) == 3
            for workload, response in zip(workloads, responses):
                assert response.spec.query is workload.query
                assert response.found

    def test_monitor_churn_flows_through_replication(self):
        hosting = planetlab_host(30, rng=8)
        with ClusterService(default_timeout=10.0, attribute="region") as service:
            service.register_network(hosting, default=True)
            monitor = service.attach_monitor(rng=5)
            pmap = service.coordinator().partition_map
            largest = max(pmap.names, key=lambda p: len(pmap.nodes_of(p)))
            interior = hosting.subnetwork(pmap.nodes_of(largest))
            workload = subgraph_query(interior, 4, rng=6)
            first = service.submit(QuerySpec(query=workload.query,
                                             constraint=workload.constraint))
            assert first.found
            monitor.tick()
            second = service.submit(QuerySpec(query=workload.query,
                                              constraint=workload.constraint))
            assert second.found
            replication = service.stats()["cluster"][
                first.network_name]["replication"]
            assert (replication["deltas_applied"] > 0
                    or replication["full_resyncs"] > 0)


def test_cli_partition_command(tmp_path):
    from repro.cli import main
    from repro.graphs import write_graphml

    host = planetlab_host(30, rng=2)
    host_path = tmp_path / "host.graphml"
    write_graphml(host, host_path)
    workload = subgraph_query(host, 4, rng=3)
    query_path = tmp_path / "query.graphml"
    write_graphml(workload.query, query_path)
    code = main(["partition", "--hosting", str(host_path),
                 "--attribute", "region",
                 "--query", str(query_path),
                 "--constraint", DELAY_WINDOW_CONSTRAINT.source,
                 "--seed", "4", "--json"])
    assert code == 0
