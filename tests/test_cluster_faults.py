"""Partition loss and replication faults through the PR 7 injector."""

from __future__ import annotations

import pytest

from repro import faults
from repro.cluster import ClusterCoordinator, repair_placement
from repro.core.mapping import validate_mapping
from repro.faults import FaultPlan, FaultSpec
from repro.workloads import planetlab_host, subgraph_query


@pytest.fixture
def coordinator():
    hosting = planetlab_host(48, rng=11)
    return ClusterCoordinator(hosting, attribute="region")


def _by_size(coordinator):
    """Partition names, largest first."""
    return sorted(coordinator.partition_map.names,
                  key=lambda p: (-len(coordinator.partition_map.nodes_of(p)),
                                 p))


class TestPartitionLoss:
    def test_survivors_answer_after_first_partition_lost(self, coordinator):
        ordered = _by_size(coordinator)
        largest, decoy = ordered[0], ordered[1]
        interior = coordinator.primary.subnetwork(
            coordinator.partition_map.nodes_of(largest))
        workload = subgraph_query(interior, 4, rng=3)
        plan = FaultPlan.fixed(FaultSpec(
            site="cluster.partition-search", kind="partition-loss",
            hits=(1,)))
        with faults.injecting(plan) as injector:
            # The decoy partition is searched first and eats the fault; the
            # partition that actually holds the answer must still win.
            result = coordinator.embed(
                workload.query, constraint=workload.constraint,
                partition_order=[decoy, largest], seed=7,
                cross_partition=False)
        assert injector.stats()["total_fired"] >= 1
        assert result.verdict == "feasible"
        assert result.partition == largest
        assert result.outcomes[0].partition == decoy
        assert result.outcomes[0].status == "lost"
        assert coordinator.lost_partitions == [decoy]
        # Recovery resyncs from the primary and rejoins the rotation.
        coordinator.restore(decoy)
        assert coordinator.lost_partitions == []

    def test_total_loss_degrades_to_unknown(self, coordinator):
        ordered = _by_size(coordinator)
        interior = coordinator.primary.subnetwork(
            coordinator.partition_map.nodes_of(ordered[0]))
        workload = subgraph_query(interior, 4, rng=3)
        plan = FaultPlan.fixed(FaultSpec(
            site="cluster.partition-search", kind="partition-loss",
            hits=tuple(range(1, 4 * len(ordered) + 1))))
        with faults.injecting(plan):
            result = coordinator.embed(
                workload.query, constraint=workload.constraint,
                cross_partition=False)
        # No partition could be reached: not a feasibility proof either way.
        assert result.verdict == "unknown"
        assert not result.found
        assert all(o.status == "lost" for o in result.outcomes)
        assert set(coordinator.lost_partitions) <= set(ordered)
        assert coordinator.lost_partitions != []


class TestReplicationDrop:
    def test_connection_drop_forces_full_resync(self):
        hosting = planetlab_host(30, rng=4)
        coordinator = ClusterCoordinator(hosting, attribute="region")
        u, v = hosting.edges()[0]
        hosting.update_edge(u, v, avgDelay=222.0)
        plan = FaultPlan.fixed(FaultSpec(
            site="cluster.replicate", kind="connection-drop", hits=(1,)))
        with faults.injecting(plan):
            report = coordinator.refresh()
        assert report["changed"]
        stats = coordinator.stats()["replication"]
        assert stats["dropped_connections"] == 1
        assert stats["full_resyncs"] >= 1
        # Whether shipped by delta or rebuilt after the drop, every replica
        # must equal a fresh slice of the primary.
        pmap = coordinator.partition_map
        for name, worker in coordinator.workers.items():
            fresh = hosting.subnetwork(pmap.nodes_of(name))
            for a, b in fresh.edges():
                assert (worker.network.edge_attrs(a, b)
                        == fresh.edge_attrs(a, b))


class TestClusterRepair:
    def test_lost_partition_triggers_cross_partition_replacement(
            self, coordinator):
        ordered = _by_size(coordinator)
        largest = ordered[0]
        interior = coordinator.primary.subnetwork(
            coordinator.partition_map.nodes_of(largest))
        # Wide windows so a re-placement into another region stays feasible.
        workload = subgraph_query(interior, 3, slack=2.0, rng=5)
        result = coordinator.embed(workload.query,
                                   constraint=workload.constraint, seed=2)
        assert result.verdict == "feasible"
        mapping = result.first

        coordinator.mark_lost(largest)
        repaired = repair_placement(
            coordinator, workload.query, mapping,
            constraint=workload.constraint, timeout=30.0)
        assert repaired.status == "repaired"
        assert repaired.ok
        assert largest not in repaired.partitions_tried
        new_mapping = repaired.mapping
        assignment = coordinator.partition_map.assignment
        for host in new_mapping.hosting_nodes():
            assert assignment[host] != largest
        assert not validate_mapping(new_mapping, workload.query,
                                    coordinator.primary, workload.constraint)
        assert set(repaired.fragment_assignment) == set(workload.query.nodes())
        assert largest not in set(repaired.fragment_assignment.values())

    def test_intact_mapping_short_circuits(self, coordinator):
        largest = _by_size(coordinator)[0]
        interior = coordinator.primary.subnetwork(
            coordinator.partition_map.nodes_of(largest))
        workload = subgraph_query(interior, 3, rng=9)
        result = coordinator.embed(workload.query,
                                   constraint=workload.constraint, seed=4)
        assert result.verdict == "feasible"
        repaired = repair_placement(coordinator, workload.query, result.first,
                                    constraint=workload.constraint)
        assert repaired.status == "intact"
        assert repaired.mapping is result.first
