"""Partition maps, aggregate summaries, boundary and quotient graphs."""

from __future__ import annotations

import pytest

from repro.cluster import (
    CUT_MAX_ATTR,
    CUT_MIN_ATTR,
    UNASSIGNED,
    PartitionIndex,
    PartitionMap,
    boundary_network,
    cut_edges,
    quotient_graph,
    summarize_partition,
)
from repro.graphs.hosting import HostingNetwork


@pytest.fixture
def region_map(small_hosting) -> PartitionMap:
    return PartitionMap.by_attribute(small_hosting, "region")


class TestPartitionMap:
    def test_balanced_covers_all_nodes_disjointly(self, small_hosting):
        pmap = PartitionMap.balanced(small_hosting, 3)
        all_nodes = [n for nodes in pmap.partitions.values() for n in nodes]
        assert sorted(all_nodes) == sorted(small_hosting.nodes())
        assert len(all_nodes) == len(set(all_nodes))
        assert len(pmap) == 3

    def test_balanced_rejects_bad_count(self, small_hosting):
        with pytest.raises(ValueError):
            PartitionMap.balanced(small_hosting, 0)

    def test_by_attribute_groups(self, small_hosting, region_map):
        assert set(region_map.names) == {"east", "west"}
        assert sorted(region_map.nodes_of("east")) == ["a", "b", "d"]
        assert region_map.partition_of("e") == "west"

    def test_missing_attribute_is_not_the_string_unassigned(self):
        """A real value "unassigned" and a missing attribute stay separate."""
        hosting = HostingNetwork("h")
        hosting.add_node("n1", region="unassigned")
        hosting.add_node("n2")   # no region at all
        hosting.add_node("n3", region="east")
        pmap = PartitionMap.by_attribute(hosting, "region")
        assert len(pmap) == 3
        assert pmap.partition_of("n1") == "unassigned"
        assert pmap.partition_of("n2") == str(UNASSIGNED)
        assert pmap.partition_of("n1") != pmap.partition_of("n2")

    def test_duplicate_assignment_rejected(self):
        with pytest.raises(ValueError):
            PartitionMap({"p0": ("a", "b"), "p1": ("b",)})

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            PartitionMap({})

    def test_restricted_to_drops_empty_partitions(self, region_map):
        restricted = region_map.restricted_to(["a", "b", "d"])
        assert restricted.names == ["east"]
        assert sorted(restricted.nodes_of("east")) == ["a", "b", "d"]

    def test_with_nodes_added(self, region_map):
        grown = region_map.with_nodes_added({"g": "east", "h": "north"})
        assert grown.partition_of("g") == "east"
        assert grown.partition_of("h") == "north"
        assert "g" in grown.nodes_of("east")


class TestSummaries:
    def test_edge_window_feasibility(self, small_hosting, region_map):
        east = small_hosting.subnetwork(region_map.nodes_of("east"))
        summary = summarize_partition("east", east)
        # east intra edges: a-b (10ms) and a-d (30ms) on avgDelay.
        assert summary.num_nodes == 3
        assert summary.num_edges == 2
        assert summary.edge_ranges["avgDelay"] == (10.0, 30.0)
        assert summary.edge_window_feasible("avgDelay", 5.0, 15.0)
        assert not summary.edge_window_feasible("avgDelay", 40.0, 60.0)
        # Unknown attribute: nothing in range, so nothing is feasible.
        assert not summary.edge_window_feasible("loss", 0.0, 1.0)


class TestQuotient:
    def test_cut_edges_and_boundary(self, small_hosting, region_map):
        cuts = cut_edges(small_hosting, region_map)
        assert set(cuts) == {("east", "west")}
        pairs = {tuple(sorted(edge)) for edge in cuts[("east", "west")]}
        assert pairs == {("b", "c"), ("b", "e"), ("d", "e")}
        boundary = boundary_network(small_hosting, region_map, cuts)
        # The boundary holds exactly the cut endpoints and cut edges — it
        # stays O(cut), never O(network).
        assert sorted(boundary.nodes()) == ["b", "c", "d", "e"]
        assert boundary.num_edges == 3
        assert boundary.get_edge_attr("b", "e", "avgDelay") == 20.0

    def test_quotient_aggregates(self, small_hosting, region_map):
        cuts = cut_edges(small_hosting, region_map)
        boundary = boundary_network(small_hosting, region_map, cuts)
        summaries = {
            name: summarize_partition(
                name, small_hosting.subnetwork(region_map.nodes_of(name)))
            for name in region_map.names}
        quotient = quotient_graph(region_map, summaries, cuts, boundary)
        assert sorted(quotient.nodes()) == ["east", "west"]
        assert quotient.get_node_attr("east", "nodes") == 3
        assert quotient.get_node_attr("east", "intraMinDelay") == 10.0
        assert quotient.get_node_attr("east", "intraMaxDelay") == 30.0
        # Cut delays are 50 (b-c), 20 (b-e), 40 (d-e).
        assert quotient.get_edge_attr("east", "west", CUT_MIN_ATTR) == 20.0
        assert quotient.get_edge_attr("east", "west", CUT_MAX_ATTR) == 50.0
        assert quotient.get_edge_attr("east", "west", "links") == 3


class TestPartitionIndex:
    def test_mask_round_trip(self):
        index = PartitionIndex(["p0", "p1", "p2"])
        mask = index.mask_where(lambda name: name != "p1")
        assert index.names_of(mask) == ["p0", "p2"]
        assert index.names_of(index.full_mask) == ["p0", "p1", "p2"]
        assert index.names_of(0) == []
