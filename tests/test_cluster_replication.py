"""Journal-delta replication across pickle/process boundaries."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster import ClusterCoordinator
from repro.cluster.replica import (
    DeltaPayload,
    PartitionReplica,
    StructuralDeltaError,
    apply_payload,
    encode_delta,
    transport_copy,
)
from repro.workloads import planetlab_host

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestNetworkDeltaTransport:
    def test_delta_pickles_round_trip(self, small_hosting):
        epoch = small_hosting.mutation_count
        small_hosting.update_edge("a", "b", avgDelay=11.0)
        small_hosting.update_node("c", weight=2)
        delta = small_hosting.delta_since(epoch)
        assert delta is not None and delta.attrs_only
        clone = pickle.loads(pickle.dumps(delta))
        assert clone.base_epoch == delta.base_epoch
        assert clone.target_epoch == delta.target_epoch
        assert clone.structural == delta.structural
        assert clone.touched_node_attrs == delta.touched_node_attrs
        assert clone.touched_edge_attrs == delta.touched_edge_attrs
        assert clone.touches_edge("a", "b")
        assert clone.touches_node("c")

    def test_transport_copy_floors_journal(self, small_hosting):
        small_hosting.update_edge("a", "b", avgDelay=12.0)
        copy = transport_copy(small_hosting)
        assert copy.mutation_count == small_hosting.mutation_count
        # History did not travel: deltas from before the copy are
        # unanswerable, the current epoch yields an empty delta.
        assert copy.delta_since(0) is None
        current = copy.delta_since(copy.mutation_count)
        assert current is not None and current.empty
        # The copy journals its own future normally.
        epoch = copy.mutation_count
        copy.update_edge("a", "b", avgDelay=13.0)
        delta = copy.delta_since(epoch)
        assert delta is not None and delta.touches_edge("a", "b")

    def test_encode_refuses_structural_delta(self, small_hosting):
        epoch = small_hosting.mutation_count
        small_hosting.add_node("new-node", region="east")
        delta = small_hosting.delta_since(epoch)
        assert delta is not None and delta.structural
        with pytest.raises(StructuralDeltaError):
            encode_delta(small_hosting, delta)


class TestPayloadApplication:
    def test_payload_slices_to_replica(self, small_hosting):
        epoch = small_hosting.mutation_count
        small_hosting.update_edge("a", "b", avgDelay=14.0)   # east intra
        small_hosting.update_edge("c", "f", avgDelay=16.0)   # west intra
        small_hosting.update_node("e", weight=3)             # west node
        payload = encode_delta(small_hosting,
                               small_hosting.delta_since(epoch))
        east = transport_copy(small_hosting.subnetwork(["a", "b", "d"]))
        east_epoch = east.mutation_count
        assert apply_payload(east, payload) == 1
        assert east.get_edge_attr("a", "b", "avgDelay") == 14.0
        assert not east.has_node("e")
        # Applied through ordinary mutators: the replica journals it.
        delta = east.delta_since(east_epoch)
        assert delta is not None and delta.touches_edge("a", "b")

    def test_payload_survives_process_boundary(self, small_hosting, tmp_path):
        epoch = small_hosting.mutation_count
        small_hosting.update_edge("a", "b", avgDelay=77.5)
        payload = encode_delta(small_hosting,
                               small_hosting.delta_since(epoch))
        replica = transport_copy(small_hosting.subnetwork(["a", "b", "d"]))
        replica_path = tmp_path / "replica.pickle"
        payload_path = tmp_path / "payload.pickle"
        replica_path.write_bytes(pickle.dumps(replica))
        payload_path.write_bytes(pickle.dumps(payload))
        child = (
            "import pickle, sys\n"
            "from repro.cluster.replica import apply_payload\n"
            "replica = pickle.loads(open(sys.argv[1], 'rb').read())\n"
            "payload = pickle.loads(open(sys.argv[2], 'rb').read())\n"
            "applied = apply_payload(replica, payload)\n"
            "print(applied, replica.get_edge_attr('a', 'b', 'avgDelay'))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", child, str(replica_path), str(payload_path)],
            capture_output=True, text=True, env=env, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == ["1", "77.5"]

    def test_empty_payload(self, small_hosting):
        payload = DeltaPayload(network_name=small_hosting.name,
                               base_epoch=0, target_epoch=0)
        assert payload.empty
        assert not payload.touches(small_hosting)
        assert apply_payload(small_hosting, payload) == 0


class TestReplicaElementIdentity:
    def test_delta_refresh_matches_full_rebuild(self):
        """After churn + delta refresh, every replica equals a fresh slice.

        This is the element-identity guarantee: incremental journal-delta
        replication must land replicas in exactly the state a wholesale
        rebuild from the primary would produce.
        """
        hosting = planetlab_host(30, rng=4)
        coordinator = ClusterCoordinator(hosting, attribute="region")
        rng_edges = hosting.edges()[:8]
        for i, (u, v) in enumerate(rng_edges):
            hosting.update_edge(u, v, avgDelay=50.0 + i)
        for node in hosting.nodes()[:5]:
            hosting.update_node(node, load=0.25)
        report = coordinator.refresh()
        assert report["mode"] == "delta"
        pmap = coordinator.partition_map
        for name, worker in coordinator.workers.items():
            fresh = hosting.subnetwork(pmap.nodes_of(name))
            replica = worker.replica.network
            assert sorted(replica.nodes()) == sorted(fresh.nodes())
            assert sorted(map(tuple, map(sorted, replica.edges()))) == \
                sorted(map(tuple, map(sorted, fresh.edges())))
            for node in fresh.nodes():
                assert replica.node_attrs(node) == fresh.node_attrs(node)
            for u, v in fresh.edges():
                assert replica.edge_attrs(u, v) == fresh.edge_attrs(u, v)

    def test_replica_resync_after_overflow(self):
        hosting = planetlab_host(20, rng=6)
        coordinator = ClusterCoordinator(hosting, attribute="region")
        capacity = hosting.mutation_journal.capacity
        u, v = hosting.edges()[0]
        for i in range(capacity + 10):
            hosting.update_edge(u, v, avgDelay=float(i))
        report = coordinator.refresh()
        assert report["mode"] == "overflow-resync"
        part = coordinator.partition_map.assignment[u]
        replica = coordinator.workers[part].replica.network
        if replica.has_edge(u, v):
            assert replica.get_edge_attr(u, v, "avgDelay") == float(
                capacity + 9)
        assert coordinator.stats()["replication"]["overflow_resyncs"] >= 1


class TestPartitionReplicaLifecycle:
    def test_replica_is_isolated_slice(self, small_hosting):
        replica = PartitionReplica("east", small_hosting, ("a", "b", "d"))
        assert sorted(replica.network.nodes()) == ["a", "b", "d"]
        assert replica.applied_epoch == small_hosting.mutation_count
        # No shared structure: mutating the primary leaves the replica alone.
        small_hosting.update_edge("a", "b", avgDelay=99.0)
        assert replica.network.get_edge_attr("a", "b", "avgDelay") != 99.0
        replica.resync(small_hosting)
        assert replica.network.get_edge_attr("a", "b", "avgDelay") == 99.0
