"""Unit tests for the programmatic constraint builders."""

from __future__ import annotations

import pytest

from repro.constraints import ConstraintExpression, literal_context
from repro.constraints import builder


def check(source: str, expected: bool, **objects) -> None:
    assert ConstraintExpression(source).evaluate(literal_context(**objects)) is expected


class TestCombinators:
    def test_all_of_empty_is_true(self):
        assert builder.all_of() == "true"

    def test_any_of_empty_is_false(self):
        assert builder.any_of() == "false"

    def test_all_of_single_clause_passthrough(self):
        assert builder.all_of("a.x > 1") == "a.x > 1"

    def test_all_of_combines_with_and(self):
        source = builder.all_of("vEdge.d > 1", "vEdge.d < 5")
        check(source, True, vEdge={"d": 3})
        check(source, False, vEdge={"d": 7})

    def test_any_of_combines_with_or(self):
        source = builder.any_of("vEdge.d < 1", "vEdge.d > 5")
        check(source, True, vEdge={"d": 7})
        check(source, False, vEdge={"d": 3})


class TestDelayBuilders:
    def test_delay_tolerance_matches_paper_semantics(self):
        source = builder.delay_tolerance(0.10)
        # hosting 105ms vs requested 100ms: within ±10%
        check(source, True, vEdge={"avgDelay": 100.0}, rEdge={"avgDelay": 105.0})
        check(source, False, vEdge={"avgDelay": 100.0}, rEdge={"avgDelay": 130.0})

    def test_delay_tolerance_validates_fraction(self):
        with pytest.raises(ValueError):
            builder.delay_tolerance(1.5)

    def test_requested_delay_within_host_range(self):
        source = builder.requested_delay_within_host_range()
        check(source, True, vEdge={"avgDelay": 30.0},
              rEdge={"minDelay": 10.0, "maxDelay": 50.0})
        check(source, False, vEdge={"avgDelay": 5.0},
              rEdge={"minDelay": 10.0, "maxDelay": 50.0})

    def test_host_delay_within_query_window(self):
        source = builder.host_delay_within_query_window()
        check(source, True, vEdge={"minDelay": 10.0, "maxDelay": 50.0},
              rEdge={"avgDelay": 30.0})
        check(source, False, vEdge={"minDelay": 10.0, "maxDelay": 50.0},
              rEdge={"avgDelay": 60.0})

    def test_absolute_delay_window(self):
        source = builder.absolute_delay_window(10, 100)
        check(source, True, rEdge={"avgDelay": 55.0})
        check(source, False, rEdge={"avgDelay": 110.0})

    def test_absolute_delay_window_validates_bounds(self):
        with pytest.raises(ValueError):
            builder.absolute_delay_window(100, 10)

    def test_minimum_bandwidth(self):
        source = builder.minimum_bandwidth()
        check(source, True, rEdge={"bandwidth": 100.0}, vEdge={"bandwidth": 10.0})
        check(source, False, rEdge={"bandwidth": 5.0}, vEdge={"bandwidth": 10.0})


class TestBindingBuilders:
    def test_node_attribute_binding_optional(self):
        source = builder.node_attribute_binding("osType")
        check(source, True, vSource={}, rSource={"osType": "linux"})
        check(source, True, vSource={"osType": "linux"}, rSource={"osType": "linux"})
        check(source, False, vSource={"osType": "linux"}, rSource={"osType": "bsd"})

    def test_bind_to_named_host_applies_to_both_endpoints(self):
        source = builder.bind_to_named_host()
        ctx = dict(vSource={"bindTo": "h1"}, rSource={"name": "h1"},
                   vTarget={}, rTarget={"name": "h2"})
        check(source, True, **ctx)
        ctx["rSource"] = {"name": "h9"}
        check(source, False, **ctx)

    def test_os_binding_both_endpoints(self):
        source = builder.os_binding_both_endpoints()
        check(source, True,
              vSource={"osType": "linux"}, rSource={"osType": "linux"},
              vTarget={}, rTarget={"osType": "bsd"})
        check(source, False,
              vSource={"osType": "linux"}, rSource={"osType": "bsd"},
              vTarget={}, rTarget={"osType": "bsd"})


class TestGeoAndComposite:
    def test_geographic_distance_within(self):
        source = builder.geographic_distance_within(100.0)
        check(source, True, vSource={"x": 0.0, "y": 0.0}, rSource={"x": 30.0, "y": 40.0})
        check(source, False, vSource={"x": 0.0, "y": 0.0}, rSource={"x": 300.0, "y": 0.0})

    def test_geographic_distance_validates_limit(self):
        with pytest.raises(ValueError):
            builder.geographic_distance_within(0)

    def test_per_level_delay_windows(self):
        source = builder.per_level_delay_windows(
            windows=((0, 75.0, 350.0), (1, 1.0, 75.0)))
        # Root-level edge (level 0) with a wide-area delay: ok.
        check(source, True, vEdge={"level": 0}, rEdge={"avgDelay": 200.0})
        # Root-level edge with an intra-site delay: violates level-0 window.
        check(source, False, vEdge={"level": 0}, rEdge={"avgDelay": 20.0})
        # Group-level edge with an intra-site delay: ok.
        check(source, True, vEdge={"level": 1}, rEdge={"avgDelay": 20.0})
        # Group-level edge with a wide-area delay: violates level-1 window.
        check(source, False, vEdge={"level": 1}, rEdge={"avgDelay": 200.0})
