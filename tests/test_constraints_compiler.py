"""The compiled evaluator must agree with the reference evaluator.

Property-based: random expressions over a fixed vocabulary of attributes are
evaluated by both paths against random contexts, including contexts with
missing attributes, and the results must be identical (same boolean, or both
raising the same error class).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.constraints import compile_expression, evaluate, literal_context
from repro.constraints.errors import ConstraintError
from repro.constraints.parser import parse

ATTRIBUTES = ["a", "b", "c"]
OBJECTS = ["vEdge", "rEdge", "vSource"]


# --------------------------------------------------------------------------- #
# Expression generator
# --------------------------------------------------------------------------- #

def _leaf():
    numbers = st.integers(min_value=-5, max_value=20).map(str)
    attributes = st.tuples(st.sampled_from(OBJECTS), st.sampled_from(ATTRIBUTES)).map(
        lambda pair: f"{pair[0]}.{pair[1]}")
    return st.one_of(numbers, attributes, st.just("true"), st.just("false"))


def _expressions(depth: int = 3):
    binary_numeric = st.sampled_from(["+", "-", "*"])
    relational = st.sampled_from(["<", ">", "<=", ">=", "==", "!="])
    boolean = st.sampled_from(["&&", "||"])

    def extend(children):
        numeric = st.builds(lambda op, lhs, rhs: f"({lhs} {op} {rhs})", binary_numeric,
                            children, children)
        compare = st.builds(lambda op, lhs, rhs: f"({lhs} {op} {rhs})", relational,
                            children, children)
        logic = st.builds(lambda op, lhs, rhs: f"({lhs} {op} {rhs})", boolean,
                          children, children)
        negation = st.builds(lambda e: f"!({e})", children)
        functions = st.builds(lambda e: f"abs({e})", children)
        return st.one_of(numeric, compare, logic, negation, functions)

    return st.recursive(_leaf(), extend, max_leaves=8)


def _contexts():
    values = st.one_of(st.integers(min_value=-5, max_value=20),
                       st.floats(min_value=-5, max_value=20, allow_nan=False),
                       st.booleans())
    attr_dict = st.dictionaries(st.sampled_from(ATTRIBUTES), values, max_size=3)
    return st.fixed_dictionaries({obj: attr_dict for obj in OBJECTS})


# --------------------------------------------------------------------------- #

@settings(max_examples=120, deadline=None)
@given(expression=_expressions(), context=_contexts())
def test_compiled_agrees_with_reference(expression, context):
    ast = parse(expression)
    compiled = compile_expression(ast)

    try:
        expected = evaluate(ast, context)
        expected_error = None
    except ConstraintError as exc:
        expected, expected_error = None, type(exc)

    try:
        actual = compiled(context)
        actual_error = None
    except ConstraintError as exc:
        actual, actual_error = None, type(exc)

    assert expected_error == actual_error
    assert expected == actual


@settings(max_examples=60, deadline=None)
@given(expression=_expressions(), context=_contexts())
def test_strict_mode_agreement(expression, context):
    ast = parse(expression)
    compiled = compile_expression(ast, strict=True)

    try:
        expected = evaluate(ast, context, strict=True)
        expected_error = None
    except ConstraintError as exc:
        expected, expected_error = None, type(exc)

    try:
        actual = compiled(context)
        actual_error = None
    except ConstraintError as exc:
        actual, actual_error = None, type(exc)

    assert expected_error == actual_error
    assert expected == actual


class TestCompiledSpecifics:
    """Direct checks on the compiled path (not just agreement)."""

    def test_compiled_short_circuit(self):
        compiled = compile_expression(parse("false && (1 / vEdge.zero == 1)"))
        assert compiled(literal_context(vEdge={"zero": 0})) is False

    def test_compiled_missing_attribute_is_false(self):
        compiled = compile_expression(parse("vEdge.delay < 3"))
        assert compiled(literal_context(vEdge={})) is False

    def test_compiled_is_bound_to(self):
        compiled = compile_expression(parse("isBoundTo(vSource.bindTo, rSource.name)"))
        assert compiled(literal_context(vSource={}, rSource={"name": "h"})) is True
        assert compiled(literal_context(vSource={"bindTo": "h"},
                                        rSource={"name": "h"})) is True
        assert compiled(literal_context(vSource={"bindTo": "x"},
                                        rSource={"name": "h"})) is False
