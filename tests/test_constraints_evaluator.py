"""Unit tests for constraint expression evaluation (reference evaluator)."""

from __future__ import annotations

import pytest

from repro.constraints import (
    ConstraintExpression,
    MISSING,
    evaluate,
    evaluate_value,
    literal_context,
)
from repro.constraints.errors import (
    EvaluationError,
    UnknownFunctionError,
    UnknownIdentifierError,
)
from repro.constraints.parser import parse


def run(expression: str, strict: bool = False, **objects) -> bool:
    return evaluate(parse(expression), literal_context(**objects), strict=strict)


class TestArithmeticAndComparison:
    def test_numeric_comparison(self):
        assert run("vEdge.delay < 10", vEdge={"delay": 5})
        assert not run("vEdge.delay < 10", vEdge={"delay": 15})

    def test_arithmetic(self):
        assert run("vEdge.a + vEdge.b == 7", vEdge={"a": 3, "b": 4})
        assert run("vEdge.a * 2 - 1 == 5", vEdge={"a": 3})
        assert run("vEdge.a / 4 == 0.75", vEdge={"a": 3})

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            run("1 / vEdge.zero == 1", vEdge={"zero": 0})

    def test_string_equality(self):
        assert run("vNode.os == 'linux'", vNode={"os": "linux"})
        assert not run("vNode.os == 'linux'", vNode={"os": "bsd"})

    def test_string_concatenation_with_plus(self):
        assert run("vNode.a + vNode.b == 'ab'", vNode={"a": "a", "b": "b"})

    def test_string_ordering(self):
        assert run("vNode.a < vNode.b", vNode={"a": "alpha", "b": "beta"})

    def test_mixed_type_comparison_raises(self):
        with pytest.raises(EvaluationError):
            run("vNode.a < vNode.b", vNode={"a": "alpha", "b": 3})

    def test_boolean_equality(self):
        assert run("vNode.up == true", vNode={"up": True})
        assert run("vNode.up != true", vNode={"up": False})


class TestBooleanLogic:
    def test_and_or_not(self):
        ctx = {"vEdge": {"d": 50.0}}
        assert run("vEdge.d > 10 && vEdge.d < 100", **ctx)
        assert run("vEdge.d < 10 || vEdge.d > 40", **ctx)
        assert run("!(vEdge.d < 10)", **ctx)
        assert not run("vEdge.d > 10 && vEdge.d < 20", **ctx)

    def test_short_circuit_and_skips_right_errors(self):
        # The right operand would divide by zero but must not be evaluated.
        assert not run("false && (1 / vEdge.zero == 1)", vEdge={"zero": 0})

    def test_short_circuit_or_skips_right_errors(self):
        assert run("true || (1 / vEdge.zero == 1)", vEdge={"zero": 0})


class TestFunctions:
    def test_abs_and_sqrt(self):
        assert run("abs(vEdge.x) == 4", vEdge={"x": -4})
        assert run("sqrt(vEdge.x) == 3", vEdge={"x": 9})

    def test_sqrt_negative_is_error(self):
        with pytest.raises(EvaluationError):
            run("sqrt(vEdge.x) == 3", vEdge={"x": -9})

    def test_min_max_pow(self):
        assert run("min(vEdge.a, vEdge.b) == 2", vEdge={"a": 5, "b": 2})
        assert run("max(vEdge.a, vEdge.b) == 5", vEdge={"a": 5, "b": 2})
        assert run("pow(vEdge.a, 2) == 25", vEdge={"a": 5})

    def test_unknown_function_raises(self):
        with pytest.raises(UnknownFunctionError):
            run("mystery(1) == 1", vEdge={})

    def test_is_bound_to_missing_requirement_is_satisfied(self):
        # No bindTo attribute: no binding requested, constraint holds.
        assert run("isBoundTo(vSource.bindTo, rSource.name)",
                   vSource={}, rSource={"name": "host1"})

    def test_is_bound_to_matching_requirement(self):
        assert run("isBoundTo(vSource.bindTo, rSource.name)",
                   vSource={"bindTo": "host1"}, rSource={"name": "host1"})

    def test_is_bound_to_mismatched_requirement(self):
        assert not run("isBoundTo(vSource.bindTo, rSource.name)",
                       vSource={"bindTo": "host1"}, rSource={"name": "host2"})

    def test_is_bound_to_missing_actual_fails(self):
        assert not run("isBoundTo(vSource.bindTo, rSource.name)",
                       vSource={"bindTo": "host1"}, rSource={})


class TestMissingAttributes:
    def test_lenient_missing_attribute_is_non_match(self):
        assert not run("vEdge.delay < 10", vEdge={})

    def test_lenient_missing_inside_disjunction_other_branch_still_works(self):
        # A missing attribute aborts the whole evaluation (the pair does not
        # match), even if the other disjunct would have been true — that is
        # the documented, conservative semantics.
        assert not run("vEdge.missing < 10 || vEdge.present > 0",
                       vEdge={"present": 5})

    def test_none_value_is_treated_as_missing(self):
        assert not run("vEdge.delay < 10", vEdge={"delay": None})

    def test_strict_missing_attribute_raises(self):
        with pytest.raises(EvaluationError):
            run("vEdge.delay < 10", strict=True, vEdge={})

    def test_unknown_object_always_raises(self):
        with pytest.raises(UnknownIdentifierError):
            run("ghost.delay < 10", vEdge={"delay": 5})

    def test_evaluate_value_returns_missing_sentinel(self):
        value = evaluate_value(parse("vEdge.nope"), literal_context(vEdge={}))
        assert value is MISSING


class TestPaperExamples:
    def test_delay_tolerance_example(self):
        expr = ("vEdge.avgDelay>=0.90*rEdge.avgDelay && "
                "vEdge.avgDelay<=1.10*rEdge.avgDelay")
        assert run(expr, vEdge={"avgDelay": 100.0}, rEdge={"avgDelay": 105.0})
        assert not run(expr, vEdge={"avgDelay": 100.0}, rEdge={"avgDelay": 140.0})

    def test_delay_range_example(self):
        expr = "vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay"
        assert run(expr, vEdge={"avgDelay": 30.0}, rEdge={"minDelay": 10.0, "maxDelay": 50.0})
        assert not run(expr, vEdge={"avgDelay": 60.0}, rEdge={"minDelay": 10.0, "maxDelay": 50.0})

    def test_geographic_distance_example(self):
        expr = ("sqrt( (vSource.x-vTarget.x)*(vSource.x-vTarget.x) + "
                "(vSource.y-vTarget.y)*(vSource.y-vTarget.y) ) < 100.0")
        assert run(expr, vSource={"x": 0.0, "y": 0.0}, vTarget={"x": 30.0, "y": 40.0})
        assert not run(expr, vSource={"x": 0.0, "y": 0.0}, vTarget={"x": 300.0, "y": 400.0})


class TestConstraintExpressionFacade:
    def test_matches_edge_against_networks(self, small_hosting, path_query,
                                           window_constraint):
        # Query edge (x, y) requests [5, 35]; hosting edge (a, b) has 10ms.
        assert window_constraint.matches_edge(path_query, ("x", "y"),
                                              small_hosting, ("a", "b"))
        # Hosting edge (b, c) has 50ms which exceeds the window.
        assert not window_constraint.matches_edge(path_query, ("x", "y"),
                                                  small_hosting, ("b", "c"))

    def test_combinators(self):
        low = ConstraintExpression("vEdge.d >= 10")
        high = ConstraintExpression("vEdge.d <= 20")
        both = low & high
        assert both.evaluate(literal_context(vEdge={"d": 15}))
        assert not both.evaluate(literal_context(vEdge={"d": 25}))
        either = low | ConstraintExpression("vEdge.d <= 5")
        assert either.evaluate(literal_context(vEdge={"d": 3}))
        negation = ~low
        assert negation.evaluate(literal_context(vEdge={"d": 5}))

    def test_always_true_and_false(self):
        assert ConstraintExpression.always_true().is_trivial
        assert ConstraintExpression.always_true().evaluate({})
        assert not ConstraintExpression.always_false().evaluate({})

    def test_equality_and_hash(self):
        a = ConstraintExpression("vEdge.d >= 10")
        b = ConstraintExpression("vEdge.d >= 10")
        assert a == b and hash(a) == hash(b)
        assert a != ConstraintExpression("vEdge.d >= 11")

    def test_uses_edge_and_node_objects(self):
        edge_expr = ConstraintExpression("rEdge.avgDelay <= vEdge.maxDelay")
        node_expr = ConstraintExpression("rNode.up == true")
        assert edge_expr.uses_edge_objects() and not edge_expr.uses_node_objects()
        assert node_expr.uses_node_objects() and not node_expr.uses_edge_objects()
