"""Unit tests for the constraint-language lexer."""

from __future__ import annotations

import pytest

from repro.constraints.errors import LexError
from repro.constraints.lexer import tokenize
from repro.constraints.tokens import TokenType


def types(text):
    return [token.type for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        assert types("") == [TokenType.EOF]

    def test_whitespace_only_yields_only_eof(self):
        assert types("   \t \n ") == [TokenType.EOF]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == 42
        assert isinstance(tokens[0].value, int)

    def test_float_literal(self):
        tokens = tokenize("3.14")
        assert tokens[0].value == pytest.approx(3.14)
        assert isinstance(tokens[0].value, float)

    def test_float_with_exponent(self):
        assert tokenize("1e3")[0].value == pytest.approx(1000.0)
        assert tokenize("2.5e-2")[0].value == pytest.approx(0.025)

    def test_string_single_and_double_quotes(self):
        assert tokenize("'linux'")[0].value == "linux"
        assert tokenize('"linux"')[0].value == "linux"

    def test_string_with_escape(self):
        assert tokenize(r'"a\"b"')[0].value == 'a"b'

    def test_boolean_keywords(self):
        assert types("true false") == [TokenType.TRUE, TokenType.FALSE, TokenType.EOF]
        assert tokenize("true")[0].value is True
        assert tokenize("false")[0].value is False

    def test_identifier(self):
        token = tokenize("vEdge")[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "vEdge"

    def test_identifier_with_underscore_and_digits(self):
        assert tokenize("avg_delay2")[0].value == "avg_delay2"


class TestOperators:
    def test_boolean_operators(self):
        assert types("&& || !")[:3] == [TokenType.AND, TokenType.OR, TokenType.NOT]

    def test_relational_operators(self):
        assert types("== != < > <= >=")[:6] == [
            TokenType.EQ, TokenType.NEQ, TokenType.LT, TokenType.GT,
            TokenType.LE, TokenType.GE]

    def test_arithmetic_operators(self):
        assert types("+ - * /")[:4] == [
            TokenType.PLUS, TokenType.MINUS, TokenType.STAR, TokenType.SLASH]

    def test_punctuation(self):
        assert types("( ) , .")[:4] == [
            TokenType.LPAREN, TokenType.RPAREN, TokenType.COMMA, TokenType.DOT]


class TestDottedAccess:
    def test_attribute_access_produces_dot_token(self):
        tokens = tokenize("vEdge.avgDelay")
        assert [t.type for t in tokens[:3]] == [
            TokenType.IDENTIFIER, TokenType.DOT, TokenType.IDENTIFIER]
        assert tokens[2].value == "avgDelay"

    def test_number_followed_by_identifier_times(self):
        # "0.90*rEdge.avgDelay" from the paper's example
        tokens = tokenize("0.90*rEdge.avgDelay")
        assert tokens[0].value == pytest.approx(0.9)
        assert tokens[1].type is TokenType.STAR


class TestPaperExamples:
    """The exact expressions printed in §VI-B must tokenize."""

    @pytest.mark.parametrize("expression", [
        "vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay",
        "vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay",
        "isBoundTo(vSource.osType, rSource.osType)",
        "isBoundTo(vSource.bindTo, rSource.name)",
        "sqrt( (vSource.x-vTarget.x)*(vSource.x-vTarget.x) + "
        "(vSource.y-vTarget.y)*(vSource.y-vTarget.y) ) < 100.0",
    ])
    def test_tokenizes_without_error(self, expression):
        tokens = tokenize(expression)
        assert tokens[-1].type is TokenType.EOF
        assert len(tokens) > 3


class TestErrors:
    def test_single_ampersand_is_an_error(self):
        with pytest.raises(LexError):
            tokenize("a & b")

    def test_single_pipe_is_an_error(self):
        with pytest.raises(LexError):
            tokenize("a | b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")

    def test_error_reports_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ab @")
        assert excinfo.value.position == 3


class TestPositions:
    def test_token_positions_are_character_offsets(self):
        tokens = tokenize("a && b")
        assert [t.position for t in tokens[:3]] == [0, 2, 5]
