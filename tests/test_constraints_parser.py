"""Unit tests for the constraint-language parser (grammar, precedence, errors)."""

from __future__ import annotations

import pytest

from repro.constraints.ast_nodes import (
    AttributeRef,
    BinaryOp,
    BooleanLiteral,
    BoolOp,
    FunctionCall,
    Identifier,
    NumberLiteral,
    StringLiteral,
    UnaryOp,
    referenced_attributes,
    referenced_objects,
)
from repro.constraints.errors import ParseError
from repro.constraints.parser import parse


class TestPrimaries:
    def test_number(self):
        node = parse("7")
        assert isinstance(node, NumberLiteral)
        assert node.value == 7

    def test_string(self):
        node = parse("'linux'")
        assert isinstance(node, StringLiteral)
        assert node.value == "linux"

    def test_booleans(self):
        assert parse("true") == BooleanLiteral(True)
        assert parse("false") == BooleanLiteral(False)

    def test_attribute_reference(self):
        node = parse("vEdge.avgDelay")
        assert node == AttributeRef("vEdge", "avgDelay")

    def test_bare_identifier(self):
        assert parse("vEdge") == Identifier("vEdge")

    def test_function_call_no_args(self):
        node = parse("foo()")
        assert isinstance(node, FunctionCall)
        assert node.name == "foo"
        assert node.args == ()

    def test_function_call_with_args(self):
        node = parse("isBoundTo(vSource.osType, rSource.osType)")
        assert isinstance(node, FunctionCall)
        assert len(node.args) == 2
        assert node.args[0] == AttributeRef("vSource", "osType")

    def test_parenthesised_expression(self):
        assert parse("(1 + 2)") == BinaryOp("+", NumberLiteral(1), NumberLiteral(2))


class TestPrecedence:
    def test_multiplication_binds_tighter_than_addition(self):
        node = parse("1 + 2 * 3")
        assert isinstance(node, BinaryOp) and node.op == "+"
        assert isinstance(node.right, BinaryOp) and node.right.op == "*"

    def test_addition_binds_tighter_than_relational(self):
        node = parse("1 + 2 < 4")
        assert isinstance(node, BinaryOp) and node.op == "<"
        assert isinstance(node.left, BinaryOp) and node.left.op == "+"

    def test_relational_binds_tighter_than_equality(self):
        node = parse("a.x < 3 == true")
        assert isinstance(node, BinaryOp) and node.op == "=="
        assert isinstance(node.left, BinaryOp) and node.left.op == "<"

    def test_equality_binds_tighter_than_and(self):
        node = parse("a.x == 1 && b.y == 2")
        assert isinstance(node, BoolOp) and node.op == "&&"

    def test_and_binds_tighter_than_or(self):
        node = parse("a.x || b.y && c.z")
        assert isinstance(node, BoolOp) and node.op == "||"
        assert isinstance(node.right, BoolOp) and node.right.op == "&&"

    def test_left_associativity_of_subtraction(self):
        node = parse("10 - 3 - 2")
        assert node.op == "-"
        assert isinstance(node.left, BinaryOp) and node.left.op == "-"
        assert node.right == NumberLiteral(2)

    def test_unary_not(self):
        node = parse("!a.flag")
        assert isinstance(node, UnaryOp) and node.op == "!"

    def test_unary_minus(self):
        node = parse("-3")
        assert isinstance(node, UnaryOp) and node.op == "-"

    def test_parentheses_override_precedence(self):
        node = parse("(1 + 2) * 3")
        assert node.op == "*"
        assert isinstance(node.left, BinaryOp) and node.left.op == "+"


class TestPaperExamples:
    @pytest.mark.parametrize("expression", [
        "vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay",
        "vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay",
        "isBoundTo(vSource.osType, rSource.osType)",
        "isBoundTo(vSource.bindTo, rSource.name)",
        "sqrt( (vSource.x-vTarget.x)*(vSource.x-vTarget.x) + "
        "(vSource.y-vTarget.y)*(vSource.y-vTarget.y) ) < 100.0",
    ])
    def test_parses(self, expression):
        node = parse(expression)
        assert node is not None

    def test_delay_tolerance_structure(self):
        node = parse("vEdge.avgDelay>=0.90*rEdge.avgDelay && "
                     "vEdge.avgDelay<=1.10*rEdge.avgDelay")
        assert isinstance(node, BoolOp) and node.op == "&&"
        assert node.left.op == ">="
        assert node.right.op == "<="


class TestUnparseRoundTrip:
    @pytest.mark.parametrize("expression", [
        "vEdge.avgDelay >= vEdge.minDelay",
        "(1 + 2) * 3 < 10",
        "!(a.x == b.y) || c.z != 4",
        "isBoundTo(vSource.osType, rSource.osType) && rEdge.bw >= 5",
        "sqrt(abs(a.x - b.x)) <= 2.5",
    ])
    def test_parse_unparse_parse_is_stable(self, expression):
        first = parse(expression)
        second = parse(first.unparse())
        assert first == second


class TestIntrospection:
    def test_referenced_objects(self):
        node = parse("vEdge.avgDelay >= rEdge.minDelay && vSource.x < 3")
        assert referenced_objects(node) == ["vEdge", "rEdge", "vSource"]

    def test_referenced_attributes(self):
        node = parse("vEdge.avgDelay >= rEdge.minDelay")
        assert referenced_attributes(node) == [("vEdge", "avgDelay"), ("rEdge", "minDelay")]


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",                       # empty
        "1 +",                    # dangling operator
        "(1 + 2",                 # unclosed paren
        "foo(1, )",               # trailing comma
        "a.b.c",                  # double attribute access is not in the grammar
        "1 2",                    # juxtaposed primaries
        "&& a",                   # operator with no left operand
        "a.",                     # dot with no attribute
    ])
    def test_invalid_expressions_raise(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_mentions_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("1 + ")
        assert excinfo.value.position >= 3
