"""Property-based cross-algorithm agreement tests.

The strongest correctness statement the paper makes is completeness +
correctness (§II): every algorithm finds exactly the set of feasible
embeddings.  These hypothesis tests check that on random instances:

* every mapping returned by any algorithm passes the independent validator;
* ECF, RWB (uncapped), LNS and the unfiltered brute-force baseline all return
  exactly the same *set* of embeddings;
* queries sampled as subgraphs of the hosting network are always found
  feasible;
* provably infeasible perturbations are always reported infeasible.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import BruteForceCSP
from repro.core import ECF, LNS, RWB, is_valid_mapping
from repro.graphs.ops import random_connected_subgraph
from repro.topology.random_graphs import annotate_uniform_delays, connected_gnp
from repro.workloads import make_globally_infeasible, subgraph_query

COMMON_SETTINGS = dict(max_examples=20, deadline=None,
                       suppress_health_check=[HealthCheck.too_slow])


def _instance(seed: int, host_nodes: int, query_nodes: int, slack: float = 0.4):
    """A random hosting network plus a feasible-by-construction query."""
    hosting = annotate_uniform_delays(
        connected_gnp(host_nodes, 0.35, rng=seed), low=5.0, high=80.0, rng=seed + 1)
    workload = subgraph_query(hosting, query_nodes, slack=slack, rng=seed + 2)
    return hosting, workload


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       host_nodes=st.integers(min_value=5, max_value=9),
       query_nodes=st.integers(min_value=2, max_value=4))
def test_all_returned_mappings_are_valid(seed, host_nodes, query_nodes):
    hosting, workload = _instance(seed, host_nodes, query_nodes)
    for algorithm in (ECF(), RWB(rng=seed), LNS()):
        result = algorithm.search(workload.query, hosting,
                                  constraint=workload.constraint, max_results=10)
        for mapping in result.mappings:
            assert is_valid_mapping(mapping, workload.query, hosting,
                                    workload.constraint), algorithm.name


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       host_nodes=st.integers(min_value=5, max_value=8),
       query_nodes=st.integers(min_value=2, max_value=4))
def test_complete_algorithms_agree_on_the_solution_set(seed, host_nodes, query_nodes):
    hosting, workload = _instance(seed, host_nodes, query_nodes)
    reference = ECF().search(workload.query, hosting, constraint=workload.constraint)
    assert reference.status.value == "complete"
    reference_set = set(reference.mappings)

    for algorithm in (RWB(rng=seed), LNS(), BruteForceCSP()):
        result = algorithm.search(workload.query, hosting,
                                  constraint=workload.constraint,
                                  max_results=max(1, len(reference_set)) * 5)
        # Uncapped searches that ran to completion must match exactly; capped
        # ones must be a subset.
        found = set(result.mappings)
        if result.status.value == "complete":
            assert found == reference_set, algorithm.name
        else:
            assert found <= reference_set, algorithm.name
        assert found, f"{algorithm.name} found nothing on a feasible instance"


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       host_nodes=st.integers(min_value=6, max_value=10),
       query_nodes=st.integers(min_value=2, max_value=5))
def test_subgraph_queries_are_always_feasible(seed, host_nodes, query_nodes):
    """Sampling a query from the host guarantees an embedding exists (§VII-A)."""
    hosting, workload = _instance(seed, host_nodes, query_nodes)
    assert workload.feasible_by_construction
    result = LNS().search(workload.query, hosting, constraint=workload.constraint,
                          max_results=1)
    assert result.found


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       host_nodes=st.integers(min_value=6, max_value=9),
       query_nodes=st.integers(min_value=3, max_value=5))
def test_infeasible_perturbations_are_proven_infeasible(seed, host_nodes, query_nodes):
    """Fig. 10's infeasible queries must yield complete-but-empty results."""
    hosting, workload = _instance(seed, host_nodes, query_nodes)
    infeasible = make_globally_infeasible(workload, hosting, rng=seed)
    for algorithm in (ECF(), RWB(rng=seed), LNS()):
        result = algorithm.search(infeasible.query, hosting,
                                  constraint=infeasible.constraint)
        assert result.proved_infeasible, algorithm.name


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_pure_topology_embedding_matches_networkx_subisomorphism_count(seed):
    """With no attribute constraints the problem is subgraph isomorphism;
    cross-check ECF's full enumeration against networkx's VF2 matcher."""
    import networkx as nx
    from repro.graphs.ops import as_query, relabel_sequential

    hosting = connected_gnp(6, 0.4, rng=seed)
    sample = random_connected_subgraph(hosting, 3, rng=seed + 1)
    query, _ = relabel_sequential(as_query(sample, attribute_whitelist=()), prefix="q")

    result = ECF().search(query, hosting)
    assert result.status.value == "complete"

    matcher = nx.algorithms.isomorphism.GraphMatcher(hosting.graph, query.graph)
    expected = set()
    for iso in matcher.subgraph_monomorphisms_iter():
        expected.add(frozenset((q, r) for r, q in iso.items()))
    found = {frozenset(m.as_dict().items()) for m in result.mappings}
    assert found == expected
