"""Behavioural tests for ECF, RWB and LNS on hand-built instances."""

from __future__ import annotations

import pytest

from repro.constraints import ConstraintExpression
from repro.core import ECF, LNS, RWB, ResultStatus, is_valid_mapping, make_algorithm
from repro.graphs import HostingNetwork, QueryNetwork

ALL_ALGORITHMS = [ECF, RWB, LNS]


def algorithms():
    """Fresh, seeded instances of all three algorithms."""
    return [ECF(), RWB(rng=1234), LNS()]


class TestBasicSearch:
    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_finds_known_embedding(self, algorithm_cls, small_hosting, path_query,
                                   window_constraint):
        algorithm = algorithm_cls()
        result = algorithm.search(path_query, small_hosting,
                                  constraint=window_constraint)
        assert result.found
        for mapping in result.mappings:
            assert is_valid_mapping(mapping, path_query, small_hosting,
                                    window_constraint)

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_unconstrained_triangle_has_no_embedding(self, algorithm_cls,
                                                     small_hosting, triangle_query):
        # The small hosting network is triangle-free, so even without
        # attribute constraints the query cannot embed — and each algorithm
        # must *prove* it (complete status, zero mappings).
        result = algorithm_cls().search(triangle_query, small_hosting)
        assert result.status is ResultStatus.COMPLETE
        assert result.count == 0
        assert result.proved_infeasible

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_query_larger_than_host_is_rejected_fast(self, algorithm_cls,
                                                     small_hosting):
        query = QueryNetwork("too-big")
        for index in range(small_hosting.num_nodes + 1):
            query.add_node(f"q{index}")
        result = algorithm_cls().search(query, small_hosting)
        assert result.proved_infeasible

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_empty_query_gets_empty_mapping(self, algorithm_cls, small_hosting):
        result = algorithm_cls().search(QueryNetwork("empty"), small_hosting)
        assert result.status is ResultStatus.COMPLETE
        assert result.count == 1
        assert len(result.first) == 0

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_single_node_query(self, algorithm_cls, small_hosting):
        query = QueryNetwork("one")
        query.add_node("only")
        result = algorithm_cls().search(query, small_hosting)
        assert result.found
        hosts = {mapping["only"] for mapping in result.mappings}
        if result.status is ResultStatus.COMPLETE and result.count > 1:
            assert hosts <= set(small_hosting.nodes())

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_max_results_caps_output(self, algorithm_cls, small_hosting, path_query,
                                     window_constraint):
        result = algorithm_cls().search(path_query, small_hosting,
                                        constraint=window_constraint, max_results=1)
        assert result.count == 1
        assert result.status in (ResultStatus.PARTIAL, ResultStatus.COMPLETE)

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_node_constraint_respected(self, algorithm_cls, small_hosting, path_query,
                                       window_constraint):
        node_constraint = ConstraintExpression('rNode.osType == "linux"')
        result = algorithm_cls().search(path_query, small_hosting,
                                        constraint=window_constraint,
                                        node_constraint=node_constraint)
        for mapping in result.mappings:
            for host in mapping.hosting_nodes():
                assert small_hosting.get_node_attr(host, "osType") == "linux"

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_constraint_as_plain_string(self, algorithm_cls, small_hosting, path_query):
        result = algorithm_cls().search(
            path_query, small_hosting,
            constraint="rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")
        assert result.found


class TestECFSpecifics:
    def test_enumerates_all_embeddings(self, small_hosting, path_query,
                                       window_constraint):
        result = ECF().search(path_query, small_hosting, constraint=window_constraint)
        assert result.status is ResultStatus.COMPLETE
        # Mappings must be pairwise distinct.
        assert len(set(result.mappings)) == result.count
        # The identity-style embedding x->a, y->b, z->e must be among them.
        from repro.core import Mapping
        assert Mapping({"x": "a", "y": "b", "z": "e"}) in result.mappings

    def test_ordering_variants_agree_on_solution_set(self, small_hosting, path_query,
                                                     window_constraint):
        results = {
            ordering: ECF(ordering=ordering).search(path_query, small_hosting,
                                                    constraint=window_constraint)
            for ordering in ("candidate-count", "connectivity", "natural")
        }
        reference = set(results["candidate-count"].mappings)
        for ordering, result in results.items():
            assert set(result.mappings) == reference, ordering

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            ECF(ordering="alphabetical")

    def test_filter_stats_populated(self, small_hosting, path_query, window_constraint):
        result = ECF().search(path_query, small_hosting, constraint=window_constraint)
        assert result.stats.filter_entries > 0
        assert result.stats.constraint_evaluations > 0
        assert result.stats.nodes_expanded > 0


class TestRWBSpecifics:
    def test_default_stops_at_first_match(self, small_hosting, path_query,
                                          window_constraint):
        result = RWB(rng=7).search(path_query, small_hosting,
                                   constraint=window_constraint)
        assert result.count == 1
        assert result.status is ResultStatus.PARTIAL

    def test_explicit_cap_returns_that_many(self, small_hosting, path_query,
                                            window_constraint):
        result = RWB(rng=7).search(path_query, small_hosting,
                                   constraint=window_constraint, max_results=3)
        assert result.count == 3

    def test_seeded_runs_are_reproducible(self, small_hosting, path_query,
                                          window_constraint):
        first = RWB(rng=99).search(path_query, small_hosting,
                                   constraint=window_constraint)
        second = RWB(rng=99).search(path_query, small_hosting,
                                    constraint=window_constraint)
        assert first.mappings == second.mappings

    def test_different_seeds_can_find_different_embeddings(self, small_hosting,
                                                           path_query,
                                                           window_constraint):
        found = {RWB(rng=seed).search(path_query, small_hosting,
                                      constraint=window_constraint).first
                 for seed in range(12)}
        assert len(found) > 1

    def test_proves_infeasibility_by_exhaustion(self, small_hosting, triangle_query):
        result = RWB(rng=5).search(triangle_query, small_hosting)
        assert result.proved_infeasible


class TestLNSSpecifics:
    def test_no_filter_matrices_are_built(self, small_hosting, path_query,
                                          window_constraint):
        result = LNS().search(path_query, small_hosting, constraint=window_constraint)
        assert result.stats.filter_entries == 0
        assert result.found

    def test_candidate_order_variants(self, small_hosting, path_query,
                                      window_constraint):
        sorted_result = LNS(candidate_order="sorted").search(
            path_query, small_hosting, constraint=window_constraint)
        degree_result = LNS(candidate_order="degree").search(
            path_query, small_hosting, constraint=window_constraint)
        assert set(sorted_result.mappings) == set(degree_result.mappings)

    def test_invalid_candidate_order_rejected(self):
        with pytest.raises(ValueError):
            LNS(candidate_order="random")

    def test_disconnected_query_is_handled(self, small_hosting, window_constraint):
        query = QueryNetwork("two-components")
        for node in ("m", "n", "o", "p"):
            query.add_node(node)
        query.add_edge("m", "n", minDelay=5.0, maxDelay=35.0)
        query.add_edge("o", "p", minDelay=5.0, maxDelay=35.0)
        result = LNS().search(query, small_hosting, constraint=window_constraint,
                              max_results=1)
        assert result.found
        mapping = result.first
        assert is_valid_mapping(mapping, query, small_hosting, window_constraint)


class TestDirectedNetworks:
    def _directed_pair(self):
        hosting = HostingNetwork("dh", directed=True)
        for node in "abc":
            hosting.add_node(node)
        hosting.add_edge("a", "b", avgDelay=10.0)
        hosting.add_edge("b", "c", avgDelay=10.0)
        hosting.add_edge("c", "a", avgDelay=10.0)
        query = QueryNetwork("dq", directed=True)
        query.add_node("x")
        query.add_node("y")
        query.add_edge("x", "y", maxDelay=20.0)
        return hosting, query

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_directed_edges_respected(self, algorithm_cls):
        hosting, query = self._directed_pair()
        result = algorithm_cls().search(query, hosting,
                                        constraint="rEdge.avgDelay <= vEdge.maxDelay")
        assert result.found
        for mapping in result.mappings:
            assert hosting.has_edge(mapping["x"], mapping["y"])

    def test_mismatched_directedness_rejected(self, small_hosting):
        query = QueryNetwork("directed", directed=True)
        query.add_node("x")
        with pytest.raises(ValueError):
            ECF().search(query, small_hosting)


class TestTimeoutsAndValidation:
    def test_timeout_yields_partial_or_inconclusive(self, small_hosting, path_query,
                                                    window_constraint):
        # An absurdly small timeout forces the deadline path; whichever status
        # comes back must be consistent with the embeddings reported.
        result = ECF().search(path_query, small_hosting, constraint=window_constraint,
                              timeout=1e-9)
        if result.timed_out:
            assert result.status in (ResultStatus.PARTIAL, ResultStatus.INCONCLUSIVE)
            assert (result.status is ResultStatus.PARTIAL) == result.found

    def test_invalid_arguments(self, small_hosting, path_query):
        with pytest.raises(ValueError):
            ECF().search(path_query, small_hosting, timeout=-1)
        with pytest.raises(ValueError):
            ECF().search(path_query, small_hosting, max_results=0)
        with pytest.raises(TypeError):
            ECF().search("not a query", small_hosting)
        with pytest.raises(TypeError):
            ECF().search(path_query, small_hosting, constraint=42)

    def test_find_first_convenience(self, small_hosting, path_query,
                                    window_constraint):
        result = LNS().find_first(path_query, small_hosting,
                                  constraint=window_constraint)
        assert result.count == 1

    def test_make_algorithm_factory(self):
        assert isinstance(make_algorithm("ecf"), ECF)
        assert isinstance(make_algorithm("RWB", rng=1), RWB)
        assert isinstance(make_algorithm("lns"), LNS)
        with pytest.raises(ValueError):
            make_algorithm("quantum")
