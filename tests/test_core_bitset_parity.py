"""Parity: the bitset candidate engine vs. the set-semantics reference.

The bitset refactor (dense :class:`~repro.core.indexing.NodeIndexer` +
integer-bitmask :class:`~repro.core.filters.FilterMatrices`, with a
vectorized filter-construction pass) must be observationally identical to
the original dict-of-set engine preserved in :mod:`repro.core.reference`:
same filter cells, same candidate sets, same entry counts, and byte-for-byte
identical ECF/RWB mapping streams.  This suite generates random directed and
undirected workloads — including missing attributes, node constraints and
non-vectorizable expressions — and checks every one of those properties.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import SearchRequest
from repro.constraints import ConstraintExpression
from repro.core import ECF, LNS, RWB, NodeIndexer, build_filters
from repro.core.reference import ReferenceECF, build_filters_reference
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork

WINDOW = ConstraintExpression(
    "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")
DISJUNCTION = ConstraintExpression(
    "rEdge.avgDelay <= vEdge.maxDelay || rEdge.avgDelay >= 100.0")
BINDING = ConstraintExpression("isBoundTo(vSource.bindTo, rSource.name)")
NODE_OS = ConstraintExpression('rNode.osType == "linux"')

CONSTRAINTS = {
    "window": WINDOW,            # vectorized fast path
    "disjunction": DISJUNCTION,  # vectorized, exercises ||-badness masking
    "trivial": ConstraintExpression.always_true(),
    "binding": BINDING,          # function call -> scalar fallback path
}


def build_workload(seed: int, directed: bool, constraint_name: str):
    """A random embedding problem, deliberately messy.

    Some hosting edges lack the delay attribute (or carry ``None``) to
    exercise the missing-attribute masking, and some query edges lack their
    window for the same reason on the query side.
    """
    rng = random.Random(seed)
    num_hosts = rng.randint(4, 10)
    hosting = HostingNetwork("hosting", directed=directed)
    for i in range(num_hosts):
        hosting.add_node(f"h{i}", name=f"h{i}",
                         osType=rng.choice(["linux", "bsd"]))
    for i in range(num_hosts):
        for j in range(num_hosts):
            if i == j or (not directed and i > j) or rng.random() > 0.45:
                continue
            if hosting.has_edge(f"h{i}", f"h{j}"):
                continue
            roll = rng.random()
            if roll < 0.1:
                hosting.add_edge(f"h{i}", f"h{j}")
            elif roll < 0.18:
                hosting.add_edge(f"h{i}", f"h{j}", avgDelay=None)
            else:
                hosting.add_edge(f"h{i}", f"h{j}", avgDelay=rng.uniform(5, 60))

    num_query = rng.randint(2, 5)
    query = QueryNetwork("query", directed=directed)
    for i in range(num_query):
        query.add_node(f"q{i}")
    for i in range(num_query):
        for j in range(num_query):
            if i == j or (not directed and i > j) or rng.random() > 0.6:
                continue
            if query.has_edge(f"q{i}", f"q{j}"):
                continue
            if rng.random() < 0.12:
                query.add_edge(f"q{i}", f"q{j}")
            else:
                query.add_edge(f"q{i}", f"q{j}",
                               minDelay=5.0, maxDelay=rng.uniform(20, 60))

    constraint = CONSTRAINTS[constraint_name]
    node_constraint = NODE_OS if rng.random() < 0.35 else None
    return query, hosting, constraint, node_constraint


workload_strategy = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.booleans(),
    st.sampled_from(sorted(CONSTRAINTS)),
)


class TestFilterParity:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_strategy, record_non_matches=st.booleans())
    def test_filters_are_identical(self, params, record_non_matches):
        """Cells, candidate sets and entry counts match the set engine."""
        query, hosting, constraint, node_constraint = build_workload(*params)
        bitset = build_filters(query, hosting, constraint, node_constraint,
                               record_non_matches=record_non_matches)
        reference = build_filters_reference(
            query, hosting, constraint, node_constraint,
            record_non_matches=record_non_matches)

        assert bitset.match == reference.match
        assert bitset.non_match == reference.non_match
        assert bitset.node_candidates == reference.node_candidates
        assert bitset.entry_count == reference.entry_count
        assert bitset.cell_count == reference.cell_count
        assert bitset.constraint_evaluations == reference.constraint_evaluations

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_strategy)
    def test_candidate_algebra_matches(self, params):
        """candidates_given/unplaced agree cell-wise with the set engine."""
        query, hosting, constraint, node_constraint = build_workload(*params)
        bitset = build_filters(query, hosting, constraint, node_constraint)
        reference = build_filters_reference(query, hosting, constraint,
                                            node_constraint)
        hosts = hosting.nodes()
        rng = random.Random(params[0])
        for node in query.nodes():
            assert (bitset.candidates_unplaced(node)
                    == reference.candidates_unplaced(node))
            neighbors = [(n, rng.choice(hosts)) for n in query.neighbors(node)]
            used = set(rng.sample(hosts, k=min(2, len(hosts))))
            assert (bitset.candidates_given(node, neighbors, used)
                    == reference.candidates_given(node, neighbors, used))


class TestSearchStreamParity:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_strategy)
    def test_ecf_mapping_stream_identical(self, params):
        """The iterative bitmask ECF reproduces the recursive set-engine
        stream exactly: same mappings, same order, same search statistics."""
        query, hosting, constraint, node_constraint = build_workload(*params)
        bitset = ECF().search(query, hosting, constraint=constraint,
                              node_constraint=node_constraint)
        reference = ReferenceECF().search(query, hosting, constraint=constraint,
                                          node_constraint=node_constraint)
        assert ([m.assignment for m in bitset.mappings]
                == [m.assignment for m in reference.mappings])
        assert bitset.status == reference.status
        for stat in ("nodes_expanded", "candidates_considered", "backtracks",
                     "filter_entries"):
            assert getattr(bitset.stats, stat) == getattr(reference.stats, stat)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_strategy, seed=st.integers(0, 1000))
    def test_rwb_is_seed_reproducible_and_feasible(self, params, seed):
        """Same seed -> same stream; every RWB mapping is in the ECF set."""
        query, hosting, constraint, node_constraint = build_workload(*params)
        first = RWB(rng=seed).search(query, hosting, constraint=constraint,
                                     node_constraint=node_constraint,
                                     max_results=3)
        second = RWB(rng=seed).search(query, hosting, constraint=constraint,
                                      node_constraint=node_constraint,
                                      max_results=3)
        assert first.mappings == second.mappings
        everything = ECF().search(query, hosting, constraint=constraint,
                                  node_constraint=node_constraint)
        assert set(first.mappings) <= set(everything.mappings)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_strategy)
    def test_lns_agrees_with_ecf(self, params):
        """LNS on bitmask candidates finds exactly the ECF solution set."""
        query, hosting, constraint, node_constraint = build_workload(*params)
        lns = LNS().search(query, hosting, constraint=constraint,
                           node_constraint=node_constraint)
        ecf = ECF().search(query, hosting, constraint=constraint,
                           node_constraint=node_constraint)
        assert set(lns.mappings) == set(ecf.mappings)


def _mutate_hosting(hosting: HostingNetwork, seed: int) -> None:
    """Apply one random structural/attribute mutation through the mutators."""
    rng = random.Random(seed)
    edges = hosting.edges()
    roll = rng.random()
    if edges and roll < 0.4:
        u, v = rng.choice(edges)
        hosting.remove_edge(u, v)
    elif edges and roll < 0.8:
        u, v = rng.choice(edges)
        hosting.update_edge(u, v, avgDelay=rng.uniform(5, 60))
    else:
        node = rng.choice(hosting.nodes())
        hosting.update_node(node, osType=rng.choice(["linux", "bsd"]))


COUNTER_STATS = ("nodes_expanded", "candidates_considered", "backtracks",
                 "filter_entries", "constraint_evaluations")


def assert_same_outcome(planned, fresh):
    """Byte-identical mapping streams plus identical discrete statistics."""
    assert ([m.assignment for m in planned.mappings]
            == [m.assignment for m in fresh.mappings])
    assert planned.status == fresh.status
    for stat in COUNTER_STATS:
        assert getattr(planned.stats, stat) == getattr(fresh.stats, stat)


def assert_same_search_outcome(planned, fresh):
    """Like :func:`assert_same_outcome` minus ``constraint_evaluations``:
    an incrementally patched plan re-evaluated only the delta's rows, so its
    cumulative build-work counter legitimately differs from a from-scratch
    build's — while the search-stage counters, derived purely from the
    (element-identical) masks and visiting order, must still match."""
    assert ([m.assignment for m in planned.mappings]
            == [m.assignment for m in fresh.mappings])
    assert planned.status == fresh.status
    for stat in COUNTER_STATS:
        if stat == "constraint_evaluations":
            continue
        assert getattr(planned.stats, stat) == getattr(fresh.stats, stat)


class TestPreparedExecuteParity:
    """prepare().execute() must be observationally identical to a fresh
    request(), on arbitrary workloads, repeatedly, and across plan
    invalidation by network mutation."""

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_strategy)
    def test_ecf_plan_matches_fresh_search(self, params):
        query, hosting, constraint, node_constraint = build_workload(*params)
        request = SearchRequest.build(query, hosting, constraint=constraint,
                                      node_constraint=node_constraint)
        plan = ECF().prepare(request)
        first = plan.execute()
        second = plan.execute()          # plans are reusable, not one-shot
        fresh = ECF().request(request)
        assert_same_outcome(first, fresh)
        assert_same_outcome(second, fresh)
        assert plan.executions == 2

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_strategy)
    def test_lns_plan_matches_fresh_search(self, params):
        query, hosting, constraint, node_constraint = build_workload(*params)
        request = SearchRequest.build(query, hosting, constraint=constraint,
                                      node_constraint=node_constraint)
        plan = LNS().prepare(request)
        assert_same_outcome(plan.execute(), LNS().request(request))
        assert_same_outcome(plan.execute(), LNS().request(request))

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_strategy, seed=st.integers(0, 1000))
    def test_rwb_plan_reproduces_seeded_stream(self, params, seed):
        """One seedless cached plan + execute(rng=seed) == RWB(rng=seed)."""
        query, hosting, constraint, node_constraint = build_workload(*params)
        request = SearchRequest.build(query, hosting, constraint=constraint,
                                      node_constraint=node_constraint,
                                      max_results=3)
        plan = RWB().prepare(request)
        fresh = RWB(rng=seed).request(request)
        assert_same_outcome(plan.execute(rng=seed), fresh)
        assert_same_outcome(plan.execute(rng=seed), fresh)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=workload_strategy, mutation_seed=st.integers(0, 1000))
    def test_mutation_invalidates_and_reprepare_matches(self, params,
                                                        mutation_seed):
        """After a network mutation the stale plan refuses to run, and a
        refreshed plan agrees with a fresh search on the mutated network —
        on both refresh routes: the delta-aware incremental patch (taken for
        attribute-only mutations) and the forced full recompile."""
        from repro.core import PlanInvalidatedError

        query, hosting, constraint, node_constraint = build_workload(*params)
        request = SearchRequest.build(query, hosting, constraint=constraint,
                                      node_constraint=node_constraint)
        plan = ECF().prepare(request)
        plan.execute()

        _mutate_hosting(hosting, mutation_seed)
        assert plan.stale
        with pytest.raises(PlanInvalidatedError):
            plan.execute()

        refreshed = plan.refresh()
        assert not refreshed.stale
        fresh = ECF().request(request)
        if refreshed.refresh_mode == "patched":
            # A patched plan replays exactly the same search (identical
            # masks and visiting order); only the filter-build work stats
            # reflect the (cheaper) incremental route.
            assert_same_search_outcome(refreshed.execute(), fresh)
        else:
            assert refreshed.refresh_mode == "recompiled"
            assert_same_outcome(refreshed.execute(), fresh)

        recompiled = plan.refresh(incremental=False)
        assert recompiled.refresh_mode == "recompiled"
        assert_same_outcome(recompiled.execute(), fresh)

    def test_stream_through_plan_matches_execute(self, small_hosting,
                                                 path_query,
                                                 window_constraint):
        request = SearchRequest.build(path_query, small_hosting,
                                      constraint=window_constraint)
        plan = ECF().prepare(request)
        streamed = [m.assignment for m in plan.iter_mappings()]
        executed = [m.assignment for m in plan.execute().mappings]
        assert streamed == executed and streamed


class TestNodeIndexer:
    def test_bit_order_is_str_sorted(self):
        indexer = NodeIndexer(["b", "a", 10, 2])
        assert indexer.nodes == (10, 2, "a", "b")
        assert indexer.index_of("a") == 2
        assert indexer.node_at(0) == 10
        assert indexer.bit("b") == 0b1000

    def test_encode_decode_roundtrip(self):
        indexer = NodeIndexer("abcdef")
        mask = indexer.encode({"e", "a", "c"})
        assert indexer.decode(mask) == ["a", "c", "e"]
        assert indexer.decode_set(mask) == {"a", "c", "e"}
        assert mask.bit_count() == 3

    def test_encode_ignores_unknown_nodes(self):
        indexer = NodeIndexer("ab")
        assert indexer.encode({"a", "z"}) == indexer.encode({"a"})

    def test_full_mask_and_membership(self):
        indexer = NodeIndexer(["x", "y"])
        assert indexer.full_mask == 0b11
        assert "x" in indexer and "z" not in indexer
        assert len(indexer) == 2

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            NodeIndexer(["a", "a"])
