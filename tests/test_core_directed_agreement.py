"""Property-based agreement tests on *directed* networks.

The PlanetLab/BRITE experiments use undirected graphs, but the paper's filter
update rule (§V-A footnote 3) explicitly covers directed networks, so the
implementation must stay correct there too: ECF, RWB, LNS and the brute-force
baseline must agree on the full solution set, and every mapping must respect
edge orientation.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import BruteForceCSP
from repro.constraints import ConstraintExpression
from repro.core import ECF, LNS, RWB, is_valid_mapping
from repro.graphs import HostingNetwork, QueryNetwork
from repro.utils.rng import as_rng

SETTINGS = dict(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _directed_host(seed: int, num_nodes: int) -> HostingNetwork:
    """A random connected-ish directed hosting network with delay attributes."""
    rand = as_rng(seed)
    hosting = HostingNetwork(f"dhost{seed}", directed=True)
    nodes = [f"h{i}" for i in range(num_nodes)]
    for node in nodes:
        hosting.add_node(node, name=node)
    # A directed cycle guarantees weak connectivity, then random extra arcs.
    for index in range(num_nodes):
        u, v = nodes[index], nodes[(index + 1) % num_nodes]
        hosting.add_edge(u, v, avgDelay=round(rand.uniform(5.0, 80.0), 2))
    for u in nodes:
        for v in nodes:
            if u != v and not hosting.has_edge(u, v) and rand.random() < 0.25:
                hosting.add_edge(u, v, avgDelay=round(rand.uniform(5.0, 80.0), 2))
    return hosting


def _directed_query(hosting: HostingNetwork, seed: int, num_nodes: int) -> QueryNetwork:
    """A query sampled from the host's arcs so at least one embedding exists."""
    rand = as_rng(seed)
    chosen = rand.sample(hosting.nodes(), num_nodes)
    query = QueryNetwork(f"dquery{seed}", directed=True)
    mapping = {host: f"q{i}" for i, host in enumerate(chosen)}
    for host in chosen:
        query.add_node(mapping[host])
    for u in chosen:
        for v in chosen:
            if u != v and hosting.has_edge(u, v):
                delay = hosting.get_edge_attr(u, v, "avgDelay")
                query.add_edge(mapping[u], mapping[v],
                               minDelay=round(delay * 0.7, 2),
                               maxDelay=round(delay * 1.3, 2))
    return query


WINDOW = ConstraintExpression(
    "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000),
       host_nodes=st.integers(min_value=4, max_value=7),
       query_nodes=st.integers(min_value=2, max_value=3))
def test_directed_solution_sets_agree(seed, host_nodes, query_nodes):
    hosting = _directed_host(seed, host_nodes)
    query = _directed_query(hosting, seed + 1, query_nodes)

    reference = ECF().search(query, hosting, constraint=WINDOW)
    assert reference.status.value == "complete"
    reference_set = set(reference.mappings)

    for algorithm in (RWB(rng=seed), LNS(), BruteForceCSP()):
        result = algorithm.search(query, hosting, constraint=WINDOW,
                                  max_results=max(len(reference_set), 1) * 4)
        found = set(result.mappings)
        if result.status.value == "complete":
            assert found == reference_set, algorithm.name
        else:
            assert found <= reference_set, algorithm.name

    for mapping in reference_set:
        assert is_valid_mapping(mapping, query, hosting, WINDOW)
        # Orientation is respected: every directed query edge maps onto a
        # directed hosting arc in the same direction.
        for q_source, q_target in query.edges():
            assert hosting.has_edge(mapping[q_source], mapping[q_target])


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_directed_queries_with_edges_in_both_directions(seed):
    """Anti-parallel query arcs with different windows must both be honoured."""
    hosting = _directed_host(seed, 6)
    query = QueryNetwork("biarc", directed=True)
    query.add_node("x")
    query.add_node("y")
    query.add_edge("x", "y", minDelay=0.0, maxDelay=100.0)
    query.add_edge("y", "x", minDelay=0.0, maxDelay=100.0)

    result = ECF().search(query, hosting, constraint=WINDOW)
    assert result.status.value == "complete"
    for mapping in result.mappings:
        assert hosting.has_edge(mapping["x"], mapping["y"])
        assert hosting.has_edge(mapping["y"], mapping["x"])
