"""Tests for the ECF/RWB filter matrices and candidate-set algebra."""

from __future__ import annotations


from repro.constraints import ConstraintExpression
from repro.core import build_filters, compute_node_candidates
from repro.graphs import QueryNetwork


class TestFilterConstruction:
    def test_match_cells_follow_paper_update_rule(self, small_hosting, path_query,
                                                  window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        # Query edge (x, y) requests [5, 35]; hosting edge (a, b) = 10ms matches,
        # so mapping x->a must list b as a candidate for y, and x<->y symmetric.
        assert "b" in filters.cell("x", "a", "y")
        assert "a" in filters.cell("y", "b", "x")
        # Hosting edge (b, c) = 50ms does not match (x, y): c must not be a
        # candidate for y when x -> b.
        assert "c" not in filters.cell("x", "b", "y")

    def test_non_match_filter_records_rejections(self, small_hosting, path_query,
                                                 window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        assert "c" in filters.non_match_cell("x", "b", "y")

    def test_non_match_filter_can_be_disabled(self, small_hosting, path_query,
                                              window_constraint):
        with_nm = build_filters(path_query, small_hosting, window_constraint,
                                record_non_matches=True)
        without_nm = build_filters(path_query, small_hosting, window_constraint,
                                   record_non_matches=False)
        assert without_nm.non_match == {}
        assert without_nm.entry_count < with_nm.entry_count
        # The match side is identical either way.
        assert without_nm.match == with_nm.match

    def test_trivial_constraint_matches_every_edge_pair(self, small_hosting, path_query):
        filters = build_filters(path_query, small_hosting,
                                ConstraintExpression.always_true())
        # With no constraints, every oriented hosting edge matches every query
        # edge, so every node's candidate set is every non-isolated host.
        for node in path_query.nodes():
            assert filters.node_candidates[node] == set(small_hosting.nodes())
        assert filters.constraint_evaluations == 0

    def test_constraint_evaluation_count(self, small_hosting, path_query,
                                         window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        expected = path_query.num_edges * 2 * small_hosting.num_edges
        assert filters.constraint_evaluations == expected

    def test_entry_and_cell_counts_are_consistent(self, small_hosting, path_query,
                                                  window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        assert filters.entry_count >= filters.cell_count
        assert filters.build_seconds >= 0.0


class TestCandidateSets:
    def test_unplaced_candidates_are_union_over_cells(self, small_hosting, path_query,
                                                      window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        unplaced = filters.candidates_unplaced("y")
        # y participates in both query edges; every host that appears in any
        # matching pair for those edges is a candidate.
        assert unplaced
        assert unplaced <= set(small_hosting.nodes())

    def test_candidates_given_intersects_neighbour_cells(self, small_hosting,
                                                         path_query, window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        # With x -> a placed, candidates for y must be adjacent to a with a
        # delay in [5, 35]: only b (10ms) and d (30ms).
        candidates = filters.candidates_given("y", [("x", "a")], used_hosts={"a"})
        assert candidates == {"b", "d"}

    def test_candidates_exclude_used_hosts(self, small_hosting, path_query,
                                           window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        candidates = filters.candidates_given("y", [("x", "a")], used_hosts={"a", "b"})
        assert candidates == {"d"}

    def test_empty_intersection_prunes_branch(self, small_hosting, path_query,
                                              window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        # Host c's only sufficiently fast neighbour for (x, y) is f (15ms)?  No:
        # (b, c)=50 and (c, f)=15; window is [5, 35] so only f qualifies; then
        # using f as "used" leaves nothing.
        candidates = filters.candidates_given("y", [("x", "c")], used_hosts={"c", "f"})
        assert candidates == set()

    def test_multiple_placed_neighbours_intersect(self, small_hosting,
                                                  triangle_query):
        filters = build_filters(triangle_query, small_hosting,
                                ConstraintExpression.always_true())
        # p -> b and q -> e placed; r must be adjacent to both b and e.
        candidates = filters.candidates_given("r", [("p", "b"), ("q", "e")],
                                              used_hosts={"b", "e"})
        assert candidates == set()  # no hosting triangle exists through b-e


class TestNodeCandidates:
    def test_node_constraint_restricts_candidates(self, small_hosting, path_query):
        node_constraint = ConstraintExpression('rNode.osType == "linux"')
        allowed = compute_node_candidates(path_query, small_hosting, node_constraint)
        for node in path_query.nodes():
            assert allowed[node] == {"a", "b", "d", "f"}

    def test_no_constraint_allows_all(self, small_hosting, path_query):
        allowed = compute_node_candidates(path_query, small_hosting, None)
        assert allowed["x"] == set(small_hosting.nodes())

    def test_node_constraint_flows_into_filters(self, small_hosting, path_query,
                                                window_constraint):
        node_constraint = ConstraintExpression('rNode.osType == "linux"')
        filters = build_filters(path_query, small_hosting, window_constraint,
                                node_constraint=node_constraint)
        for node, candidates in filters.node_candidates.items():
            assert "c" not in candidates and "e" not in candidates

    def test_isolated_query_node_gets_node_level_candidates(self, small_hosting):
        query = QueryNetwork("isolated")
        query.add_node("alone")
        filters = build_filters(query, small_hosting,
                                ConstraintExpression.always_true())
        assert filters.node_candidates["alone"] == set(small_hosting.nodes())
