"""Tests for Mapping and the independent validation oracle."""

from __future__ import annotations


from repro.constraints import ConstraintExpression
from repro.core import Mapping, is_valid_mapping, validate_mapping


class TestMappingValueObject:
    def test_basic_accessors(self):
        mapping = Mapping({"x": "a", "y": "b"})
        assert mapping["x"] == "a"
        assert "y" in mapping and "z" not in mapping
        assert len(mapping) == 2
        assert sorted(mapping.query_nodes()) == ["x", "y"]
        assert sorted(mapping.hosting_nodes()) == ["a", "b"]
        assert dict(mapping.items()) == {"x": "a", "y": "b"}

    def test_injectivity_check(self):
        assert Mapping({"x": "a", "y": "b"}).is_injective()
        assert not Mapping({"x": "a", "y": "a"}).is_injective()

    def test_equality_and_hash_are_structural(self):
        first = Mapping({"x": "a", "y": "b"})
        second = Mapping({"y": "b", "x": "a"})
        assert first == second
        assert hash(first) == hash(second)
        assert first != Mapping({"x": "b", "y": "a"})

    def test_immutability_from_source_dict(self):
        source = {"x": "a"}
        mapping = Mapping(source)
        source["x"] = "zzz"
        assert mapping["x"] == "a"

    def test_restricted_to(self):
        mapping = Mapping({"x": "a", "y": "b", "z": "c"})
        assert mapping.restricted_to(["x", "z"]) == Mapping({"x": "a", "z": "c"})

    def test_as_dict_is_a_copy(self):
        mapping = Mapping({"x": "a"})
        exported = mapping.as_dict()
        exported["x"] = "q"
        assert mapping["x"] == "a"


class TestValidation:
    def test_valid_mapping_passes(self, small_hosting, path_query, window_constraint):
        mapping = Mapping({"x": "a", "y": "b", "z": "e"})
        assert is_valid_mapping(mapping, path_query, small_hosting, window_constraint)

    def test_missing_query_node_detected(self, small_hosting, path_query):
        mapping = Mapping({"x": "a", "y": "b"})
        violations = validate_mapping(mapping, path_query, small_hosting)
        assert any(v.kind == "coverage" for v in violations)

    def test_unknown_query_node_detected(self, small_hosting, path_query):
        mapping = Mapping({"x": "a", "y": "b", "z": "e", "ghost": "f"})
        violations = validate_mapping(mapping, path_query, small_hosting)
        assert any(v.kind == "coverage" for v in violations)

    def test_non_injective_detected(self, small_hosting, path_query):
        mapping = Mapping({"x": "a", "y": "b", "z": "b"})
        violations = validate_mapping(mapping, path_query, small_hosting)
        assert any(v.kind == "injectivity" for v in violations)

    def test_unknown_hosting_node_detected(self, small_hosting, path_query):
        mapping = Mapping({"x": "a", "y": "b", "z": "mars"})
        violations = validate_mapping(mapping, path_query, small_hosting)
        assert any(v.kind == "node" for v in violations)

    def test_missing_hosting_edge_detected(self, small_hosting, path_query):
        # a and e are not adjacent in small_hosting.
        mapping = Mapping({"x": "d", "y": "a", "z": "e"})
        violations = validate_mapping(mapping, path_query, small_hosting)
        assert any(v.kind == "topology" for v in violations)

    def test_constraint_violation_detected(self, small_hosting, path_query,
                                           window_constraint):
        # b-c has 50ms but query edge (x, y) allows at most 35ms.
        mapping = Mapping({"x": "b", "y": "c", "z": "f"})
        violations = validate_mapping(mapping, path_query, small_hosting,
                                      window_constraint)
        assert any(v.kind == "constraint" for v in violations)
        # Without the constraint the same mapping is topologically fine.
        assert is_valid_mapping(mapping, path_query, small_hosting)

    def test_node_constraint_violation_detected(self, small_hosting, path_query):
        node_constraint = ConstraintExpression('rNode.osType == "linux"')
        # e is a bsd node.
        mapping = Mapping({"x": "a", "y": "b", "z": "e"})
        violations = validate_mapping(mapping, path_query, small_hosting,
                                      node_constraint=node_constraint)
        assert any(v.kind == "node-constraint" for v in violations)

    def test_violation_string_rendering(self, small_hosting, path_query):
        violations = validate_mapping(Mapping({"x": "a"}), path_query, small_hosting)
        assert all(str(v).startswith("[") for v in violations)

    def test_directed_hosting_requires_orientation(self):
        from repro.graphs import HostingNetwork, QueryNetwork
        hosting = HostingNetwork("d", directed=True)
        for node in "ab":
            hosting.add_node(node)
        hosting.add_edge("a", "b")
        query = QueryNetwork("dq", directed=True)
        for node in "xy":
            query.add_node(node)
        query.add_edge("x", "y")
        assert is_valid_mapping(Mapping({"x": "a", "y": "b"}), query, hosting)
        assert not is_valid_mapping(Mapping({"x": "b", "y": "a"}), query, hosting)
