"""Tests for the node-ordering heuristics (Lemma 1) and LNS growth orderings."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_filters
from repro.core.ordering import (
    candidate_count_order,
    connectivity_aware_order,
    lns_next_neighbor,
    lns_seed_node,
    natural_order,
    permutation_tree_size,
)
from repro.graphs import QueryNetwork
from repro.topology.regular import star


class TestPermutationTreeSize:
    def test_paper_formula(self):
        # S = n1 + n1*n2 + n1*n2*n3
        assert permutation_tree_size([2, 3, 4]) == 2 + 6 + 24

    def test_single_node(self):
        assert permutation_tree_size([5]) == 5

    def test_empty(self):
        assert permutation_tree_size([]) == 0

    @settings(max_examples=60, deadline=None)
    @given(counts=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5))
    def test_lemma1_ascending_order_minimises_tree_size(self, counts):
        """Lemma 1: the ascending ordering minimises S over all permutations."""
        ascending = permutation_tree_size(sorted(counts))
        for permutation in itertools.permutations(counts):
            assert ascending <= permutation_tree_size(list(permutation))


class TestCandidateCountOrder:
    def test_most_constrained_node_comes_first(self, small_hosting, path_query,
                                               window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        order = candidate_count_order(path_query, filters)
        counts = [len(filters.node_candidates[node]) for node in order]
        assert counts == sorted(counts)
        assert set(order) == set(path_query.nodes())

    def test_deterministic(self, small_hosting, path_query, window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        assert candidate_count_order(path_query, filters) == \
            candidate_count_order(path_query, filters)

    def test_natural_order_is_insertion_order(self, small_hosting, path_query,
                                              window_constraint):
        filters = build_filters(path_query, small_hosting, window_constraint)
        assert natural_order(path_query, filters) == path_query.nodes()


class TestConnectivityAwareOrder:
    def test_prefix_stays_connected_when_possible(self, small_hosting,
                                                  window_constraint):
        query = QueryNetwork("chain")
        for node in "abcd":
            query.add_node(node)
        query.add_edge("a", "b", minDelay=1.0, maxDelay=100.0)
        query.add_edge("b", "c", minDelay=1.0, maxDelay=100.0)
        query.add_edge("c", "d", minDelay=1.0, maxDelay=100.0)
        filters = build_filters(query, small_hosting, window_constraint)
        order = connectivity_aware_order(query, filters)
        # After the first node, every node must be adjacent to an earlier one.
        for index in range(1, len(order)):
            assert any(neighbor in order[:index]
                       for neighbor in query.neighbors(order[index]))

    def test_covers_all_nodes_even_if_disconnected(self, small_hosting,
                                                   window_constraint):
        query = QueryNetwork("two-parts")
        for node in "abcd":
            query.add_node(node)
        query.add_edge("a", "b", minDelay=1.0, maxDelay=100.0)
        query.add_edge("c", "d", minDelay=1.0, maxDelay=100.0)
        filters = build_filters(query, small_hosting, window_constraint)
        order = connectivity_aware_order(query, filters)
        assert set(order) == {"a", "b", "c", "d"}


class TestLNSOrderings:
    def test_seed_is_highest_degree(self):
        query = star(4, prefix="s")   # s0 is the hub with degree 4
        assert lns_seed_node(query) == "s0"

    def test_seed_on_empty_query_raises(self):
        with pytest.raises(ValueError):
            lns_seed_node(QueryNetwork("empty"))

    def test_next_neighbor_maximises_links_to_covered(self, triangle_query):
        query = QueryNetwork("q")
        for node in "abcd":
            query.add_node(node)
        query.add_edge("a", "b")
        query.add_edge("a", "c")
        query.add_edge("b", "c")
        query.add_edge("c", "d")
        # Covered = {a, b}; neighbors = {c, d}?  d is not adjacent to covered,
        # so pass only true neighbors {c}. With neighbors {c, d} given anyway,
        # c has 2 links into covered vs d's 0 and must win.
        assert lns_next_neighbor(query, ["a", "b"], ["c", "d"]) == "c"

    def test_next_neighbor_requires_candidates(self, triangle_query):
        with pytest.raises(ValueError):
            lns_next_neighbor(triangle_query, ["p"], [])
