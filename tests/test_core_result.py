"""Tests for result classification (§VII-E) and search statistics."""

from __future__ import annotations

import pytest

from repro.core import EmbeddingResult, Mapping, ResultStatus, SearchStats, classify


class TestClassification:
    def test_exhausted_search_is_complete(self):
        assert classify(found_any=True, exhausted=True, timed_out=False,
                        truncated=False) is ResultStatus.COMPLETE

    def test_exhausted_empty_search_is_complete_proof_of_infeasibility(self):
        assert classify(found_any=False, exhausted=True, timed_out=False,
                        truncated=False) is ResultStatus.COMPLETE

    def test_timeout_with_findings_is_partial(self):
        assert classify(found_any=True, exhausted=False, timed_out=True,
                        truncated=False) is ResultStatus.PARTIAL

    def test_timeout_without_findings_is_inconclusive(self):
        assert classify(found_any=False, exhausted=False, timed_out=True,
                        truncated=False) is ResultStatus.INCONCLUSIVE

    def test_result_cap_is_partial(self):
        assert classify(found_any=True, exhausted=False, timed_out=False,
                        truncated=True) is ResultStatus.PARTIAL

    def test_incomplete_metaheuristic_without_findings_is_inconclusive(self):
        assert classify(found_any=False, exhausted=False, timed_out=False,
                        truncated=False) is ResultStatus.INCONCLUSIVE


class TestEmbeddingResult:
    def test_accessors(self):
        mapping = Mapping({"x": "a"})
        result = EmbeddingResult(status=ResultStatus.PARTIAL, mappings=[mapping],
                                 algorithm="ECF", elapsed_seconds=0.5,
                                 time_to_first_seconds=0.1)
        assert result.found and result.count == 1 and len(result) == 1
        assert result.first == mapping
        assert list(result) == [mapping]
        assert not result.proved_infeasible

    def test_empty_complete_result_proves_infeasibility(self):
        result = EmbeddingResult(status=ResultStatus.COMPLETE)
        assert result.proved_infeasible
        assert result.first is None
        assert not result.found

    def test_status_str(self):
        assert str(ResultStatus.COMPLETE) == "complete"
        assert str(ResultStatus.INCONCLUSIVE) == "inconclusive"


class TestSearchStats:
    def test_merge_adds_counters(self):
        a = SearchStats(nodes_expanded=2, candidates_considered=5,
                        constraint_evaluations=7, backtracks=1, filter_entries=10,
                        filter_build_seconds=0.5)
        b = SearchStats(nodes_expanded=3, candidates_considered=1,
                        constraint_evaluations=2, backtracks=0, filter_entries=4,
                        filter_build_seconds=0.25)
        merged = a.merge(b)
        assert merged.nodes_expanded == 5
        assert merged.candidates_considered == 6
        assert merged.constraint_evaluations == 9
        assert merged.backtracks == 1
        assert merged.filter_entries == 14
        assert merged.filter_build_seconds == pytest.approx(0.75)

    def test_defaults_are_zero(self):
        stats = SearchStats()
        assert stats.nodes_expanded == 0
        assert stats.filter_build_seconds == 0.0
