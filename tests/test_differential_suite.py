"""Cross-algorithm differential oracle over a seeded corpus.

Every algorithm in the registry — the three NETEMBED searches *and* the four
baselines, which until now had no parity coverage — is checked against the
frozen set-semantics engine in :mod:`repro.core.reference`:

* **validity**: every mapping any algorithm returns must pass the
  independent :func:`~repro.core.mapping.validate_mapping` checker;
* **feasibility agreement**: an algorithm that classifies its run as
  *complete* must agree with the reference oracle on whether the instance
  is feasible, and complete-enumeration algorithms must return exactly the
  oracle's mapping set;
* **soundness on infeasible instances**: nobody may "find" an embedding
  the oracle proves cannot exist.

The corpus is small (the reference engine and the brute-force baseline are
exponential) but seeded and diverse: random topologies, edge and node
constraints, missing attributes, and guaranteed-infeasible instances.
"""

from __future__ import annotations

import random

import pytest

import repro.baselines  # noqa: F401 — registers the baselines
from repro.api import Capability, SearchRequest, default_registry
from repro.constraints import ConstraintExpression
from repro.core import validate_mapping
from repro.core.reference import ReferenceECF
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork

WINDOW = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"
NODE_OS = 'rNode.osType == "linux"'

#: Per-instance search budget.  Generous for these sizes: the point is that
#: heuristic baselines time out gracefully, not that they race.
TIMEOUT = 10.0


def corpus_instance(seed: int):
    """One seeded corpus entry: (query, hosting, constraint, node_constraint)."""
    rng = random.Random(seed)
    num_hosts = rng.randint(5, 8)
    hosting = HostingNetwork(f"host-{seed}")
    for i in range(num_hosts):
        hosting.add_node(f"h{i}", name=f"h{i}",
                         osType=rng.choice(["linux", "bsd"]))
    for i in range(num_hosts):
        for j in range(i + 1, num_hosts):
            if rng.random() < 0.55:
                attrs = {}
                if rng.random() < 0.85:  # some edges lack the delay attribute
                    attrs["avgDelay"] = rng.uniform(5.0, 60.0)
                hosting.add_edge(f"h{i}", f"h{j}", **attrs)
    query = QueryNetwork(f"query-{seed}")
    num_query = rng.randint(2, 3)
    for i in range(num_query):
        query.add_node(f"q{i}")
    for i in range(num_query - 1):
        query.add_edge(f"q{i}", f"q{i + 1}",
                       minDelay=0.0, maxDelay=rng.uniform(25.0, 70.0))
    if num_query == 3 and rng.random() < 0.5:
        query.add_edge("q0", "q2", minDelay=0.0, maxDelay=rng.uniform(25.0, 70.0))
    constraint = WINDOW if rng.random() < 0.8 else None
    node_constraint = NODE_OS if rng.random() < 0.4 else None
    return query, hosting, constraint, node_constraint


def infeasible_instance(seed: int):
    """A query that needs more nodes than the host offers."""
    hosting = HostingNetwork(f"tiny-host-{seed}")
    for i in range(3):
        hosting.add_node(f"h{i}", name=f"h{i}", osType="linux")
    hosting.add_edge("h0", "h1", avgDelay=10.0)
    hosting.add_edge("h1", "h2", avgDelay=12.0)
    query = QueryNetwork(f"big-query-{seed}")
    for i in range(5):
        query.add_node(f"q{i}")
    for i in range(4):
        query.add_edge(f"q{i}", f"q{i + 1}", minDelay=0.0, maxDelay=50.0)
    return query, hosting, WINDOW, None


CORPUS = ([corpus_instance(seed) for seed in range(8)]
          + [infeasible_instance(97)])


def make_instance(info, seed: int):
    """Instantiate one registered algorithm (seeded when seedable)."""
    if info.has(Capability.SEEDABLE):
        return info.create(rng=seed)
    return info.create()


@pytest.fixture(scope="module")
def oracle_results():
    """Reference-engine full enumerations, one per corpus entry."""
    results = []
    for query, hosting, constraint, node_constraint in CORPUS:
        results.append(ReferenceECF().request(SearchRequest.build(
            query, hosting, constraint=constraint,
            node_constraint=node_constraint, timeout=60.0)))
    return results


@pytest.mark.parametrize("name", sorted(default_registry().names()))
def test_algorithm_agrees_with_reference_oracle(name, oracle_results):
    info = default_registry().get(name)
    for index, (query, hosting, constraint, node_constraint) in enumerate(CORPUS):
        oracle = oracle_results[index]
        algorithm = make_instance(info, seed=index + 1)
        result = algorithm.request(SearchRequest.build(
            query, hosting, constraint=constraint,
            node_constraint=node_constraint, timeout=TIMEOUT))

        # Validity: everything returned must pass the independent checker.
        edge_expr = None if constraint is None else ConstraintExpression(constraint)
        node_expr = (None if node_constraint is None
                     else ConstraintExpression(node_constraint))
        for mapping in result.mappings:
            violations = validate_mapping(mapping, query, hosting,
                                          constraint=edge_expr,
                                          node_constraint=node_expr)
            assert not violations, (
                f"{name} returned an invalid mapping on corpus #{index}: "
                f"{violations}")

        # Soundness: nobody finds embeddings in provably infeasible space.
        if oracle.proved_infeasible:
            assert not result.found, (
                f"{name} 'found' an embedding the oracle proves impossible "
                f"(corpus #{index})")

        # Feasibility agreement on complete runs.
        if result.status.value == "complete":
            assert result.found == oracle.found, (
                f"{name} complete run disagrees with the oracle on "
                f"feasibility (corpus #{index})")

        # Complete-enumeration algorithms must match the oracle's set.
        if (info.has(Capability.COMPLETE_ENUMERATION)
                and result.status.value == "complete"):
            expected = {frozenset(m.items()) for m in oracle.mappings}
            actual = {frozenset(m.items()) for m in result.mappings}
            assert actual == expected, (
                f"{name} enumeration diverged from the oracle on corpus "
                f"#{index}: {len(actual)} vs {len(expected)} mappings")


@pytest.mark.parametrize("name", sorted(default_registry().names()))
def test_infeasibility_provers_prove_it(name, oracle_results):
    """PROVES_INFEASIBILITY algorithms report complete-and-empty where the
    oracle does (given an ample budget on these tiny instances)."""
    info = default_registry().get(name)
    if not info.has(Capability.PROVES_INFEASIBILITY):
        pytest.skip(f"{name} does not claim infeasibility proofs")
    for index, (query, hosting, constraint, node_constraint) in enumerate(CORPUS):
        oracle = oracle_results[index]
        if not oracle.proved_infeasible:
            continue
        algorithm = make_instance(info, seed=index + 1)
        result = algorithm.request(SearchRequest.build(
            query, hosting, constraint=constraint,
            node_constraint=node_constraint, timeout=TIMEOUT))
        assert result.proved_infeasible, (
            f"{name} failed to prove infeasibility on corpus #{index} "
            f"(status {result.status.value})")
