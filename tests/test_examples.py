"""Smoke tests: every shipped example must run end to end.

The examples are part of the public deliverable (README points users at
them), so the suite executes each one in a subprocess and checks both the
exit status and a couple of landmark lines of its output.  They are kept
small enough to finish in a few seconds each.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["ECF:", "RWB:", "LNS:", "valid"]),
    ("planetlab_slice.py", ["PlanetLab-like trace", "algorithm chosen by the service"]),
    ("multicast_overlay.py", ["multicast tree", "selected placement"]),
    ("grid_allocation.py", ["grid infrastructure", "link-to-path"]),
    ("sensor_scheduling.py", ["sensor field", "time-slotted schedule"]),
    ("plan_cache_traffic.py", ["hosting model", "monitor tick", "hit rate"]),
    ("churn_repair.py", ["hosting model", "churn tick", "patched",
                         "valid embedding"]),
    ("serve_async.py", ["serving tier up", "open-loop Poisson trace",
                        "shed reasons", "accounting consistent: True"]),
]


@pytest.mark.parametrize("script,landmarks", CASES,
                         ids=[case[0] for case in CASES])
def test_example_runs_cleanly(script, landmarks):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    completed = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=240)
    assert completed.returncode == 0, completed.stderr[-2000:]
    output = completed.stdout
    for landmark in landmarks:
        assert landmark in output, (
            f"expected {landmark!r} in the output of {script}; got:\n{output[-2000:]}")
