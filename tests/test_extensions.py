"""Tests for the §VIII extensions: optimisation, path mapping, scheduling,
hierarchical embedding."""

from __future__ import annotations

import pytest

from repro.core import ECF, LNS, Mapping
from repro.extensions import (
    EmbeddingCalendar,
    EmbeddingScheduler,
    HierarchicalEmbedder,
    PathEmbedder,
    best_mapping,
    build_closure_network,
    load_balance_cost,
    partition_balanced,
    partition_by_attribute,
    rank_mappings,
    stress_cost,
    total_delay_cost,
)
from repro.graphs import QueryNetwork
from repro.workloads import planetlab_host


# --------------------------------------------------------------------------- #
# Optimiser
# --------------------------------------------------------------------------- #

class TestOptimizer:
    def test_total_delay_cost(self, small_hosting, path_query):
        mapping = Mapping({"x": "a", "y": "b", "z": "e"})
        # a-b = 10ms, b-e = 20ms.
        assert total_delay_cost(path_query, small_hosting, mapping) == pytest.approx(30.0)

    def test_load_balance_cost(self, small_hosting, path_query):
        mapping = Mapping({"x": "a", "y": "b", "z": "e"})
        # cpuLoad: a=0.2, b=0.5, e=0.4 -> max 0.5.
        assert load_balance_cost(path_query, small_hosting, mapping) == pytest.approx(0.5)

    def test_stress_cost(self, small_hosting, path_query):
        mapping = Mapping({"x": "a", "y": "b", "z": "e"})
        cost = stress_cost({"a": 2, "b": 1})
        assert cost(path_query, small_hosting, mapping) == 3.0

    def test_ranking_orders_by_cost(self, small_hosting, path_query,
                                    window_constraint):
        result = ECF().search(path_query, small_hosting, constraint=window_constraint)
        ranked = rank_mappings(result, path_query, small_hosting, total_delay_cost)
        assert len(ranked) == result.count
        costs = [entry.cost for entry in ranked]
        assert costs == sorted(costs)
        best = best_mapping(result, path_query, small_hosting, total_delay_cost)
        assert best.cost == costs[0]

    def test_best_of_empty_set_is_none(self, small_hosting, path_query):
        assert best_mapping([], path_query, small_hosting) is None

    def test_rank_accepts_plain_mapping_lists(self, small_hosting, path_query):
        mappings = [Mapping({"x": "a", "y": "b", "z": "e"}),
                    Mapping({"x": "d", "y": "e", "z": "b"})]
        ranked = rank_mappings(mappings, path_query, small_hosting)
        assert len(ranked) == 2


# --------------------------------------------------------------------------- #
# Path mapping
# --------------------------------------------------------------------------- #

class TestPathMapping:
    def test_closure_network_aggregates_delays(self, small_hosting):
        closure, paths = build_closure_network(small_hosting, max_hops=2)
        # a and e are not adjacent but reachable in 2 hops (a-b-e or a-d-e).
        assert closure.has_edge("a", "e")
        hops = closure.get_edge_attr("a", "e", "hopCount")
        assert hops == 2
        delay = closure.get_edge_attr("a", "e", "avgDelay")
        # Cheapest 2-hop path a-b-e costs 10 + 20 = 30ms.
        assert delay == pytest.approx(30.0)
        assert paths[("a", "e")][0] == "a" and paths[("a", "e")][-1] == "e"

    def test_direct_edges_keep_their_delay(self, small_hosting):
        closure, _ = build_closure_network(small_hosting, max_hops=2)
        assert closure.get_edge_attr("a", "b", "avgDelay") == pytest.approx(10.0)
        assert closure.get_edge_attr("a", "b", "hopCount") == 1

    def test_path_embedder_finds_embeddings_plain_search_cannot(self, small_hosting):
        # A triangle query cannot embed edge-to-edge (the host is triangle-free)
        # but can embed when edges may ride 2-hop paths.
        query = QueryNetwork("triangle")
        for node in ("p", "q", "r"):
            query.add_node(node)
        query.add_edge("p", "q", maxDelay=200.0)
        query.add_edge("q", "r", maxDelay=200.0)
        query.add_edge("p", "r", maxDelay=200.0)

        direct = ECF().search(query, small_hosting,
                              constraint="rEdge.avgDelay <= vEdge.maxDelay")
        assert direct.proved_infeasible

        embedder = PathEmbedder(algorithm=ECF(), max_hops=2)
        result = embedder.search(query, small_hosting,
                                 constraint="rEdge.avgDelay <= vEdge.maxDelay",
                                 max_results=3)
        assert result.found
        for path_mapping in result.path_mappings:
            for query_edge, path in path_mapping.edge_paths.items():
                assert len(path) >= 2
                # Consecutive path nodes must be adjacent in the real host.
                for u, v in zip(path, path[1:]):
                    assert small_hosting.has_edge(u, v) or small_hosting.has_edge(v, u)
            assert path_mapping.total_hops() >= 3

    def test_hop_count_constraint_is_usable(self, small_hosting):
        query = QueryNetwork("pair")
        query.add_node("p")
        query.add_node("q")
        query.add_edge("p", "q")
        embedder = PathEmbedder(algorithm=ECF(), max_hops=3)
        result = embedder.search(query, small_hosting,
                                 constraint="rEdge.hopCount <= 1", max_results=5)
        for path_mapping in result.path_mappings:
            assert all(len(path) == 2 for path in path_mapping.edge_paths.values())

    def test_validation(self, small_hosting):
        with pytest.raises(ValueError):
            build_closure_network(small_hosting, max_hops=0)


# --------------------------------------------------------------------------- #
# Scheduler
# --------------------------------------------------------------------------- #

class TestScheduler:
    def test_calendar_tracks_busy_nodes(self):
        calendar = EmbeddingCalendar()
        booking = calendar.book(Mapping({"x": "a", "y": "b"}), start=2, duration=3)
        assert calendar.busy_nodes(0, 2) == set()
        assert calendar.busy_nodes(2, 3) == {"a", "b"}
        assert calendar.busy_nodes(4, 6) == {"a", "b"}
        assert calendar.busy_nodes(5, 7) == set()
        calendar.cancel(booking.job_id)
        assert calendar.busy_nodes(2, 3) == set()
        with pytest.raises(KeyError):
            calendar.cancel(booking.job_id)

    def test_schedule_immediately_when_free(self, small_hosting, path_query,
                                            window_constraint):
        scheduler = EmbeddingScheduler(small_hosting, algorithm=LNS())
        result = scheduler.schedule(path_query, constraint=window_constraint,
                                    duration=2)
        assert result.scheduled
        assert result.booking.start == 0

    def test_conflicting_jobs_are_deferred_or_displaced(self, small_hosting,
                                                        window_constraint):
        # A query that needs 4 of the 6 hosts; two of them cannot run
        # concurrently once node capacity (uniqueness) is exhausted.
        query = QueryNetwork("big")
        for index in range(4):
            query.add_node(f"q{index}")
        query.add_edge("q0", "q1", minDelay=1.0, maxDelay=100.0)
        query.add_edge("q1", "q2", minDelay=1.0, maxDelay=100.0)
        query.add_edge("q2", "q3", minDelay=1.0, maxDelay=100.0)
        scheduler = EmbeddingScheduler(small_hosting, algorithm=LNS(), horizon=8)
        first = scheduler.schedule(query, constraint=window_constraint, duration=2)
        second = scheduler.schedule(query, constraint=window_constraint, duration=2)
        assert first.scheduled and second.scheduled
        overlap = not (second.booking.start >= first.booking.end
                       or first.booking.start >= second.booking.end)
        if overlap:
            # If they do overlap, they must use disjoint hosting nodes.
            assert not (set(first.booking.mapping.hosting_nodes())
                        & set(second.booking.mapping.hosting_nodes()))

    def test_earliest_parameter_respected(self, small_hosting, path_query,
                                          window_constraint):
        scheduler = EmbeddingScheduler(small_hosting)
        result = scheduler.schedule(path_query, constraint=window_constraint,
                                    earliest=5)
        assert result.scheduled
        assert result.booking.start >= 5

    def test_validation(self, small_hosting, path_query):
        scheduler = EmbeddingScheduler(small_hosting)
        with pytest.raises(ValueError):
            scheduler.schedule(path_query, duration=0)
        with pytest.raises(ValueError):
            scheduler.schedule(path_query, earliest=-1)
        with pytest.raises(ValueError):
            EmbeddingScheduler(small_hosting, horizon=0)


# --------------------------------------------------------------------------- #
# Hierarchical embedding
# --------------------------------------------------------------------------- #

class TestHierarchical:
    def test_partition_by_attribute(self, small_hosting):
        domains = partition_by_attribute(small_hosting, "region")
        assert set(domains) == {"east", "west"}
        assert sorted(domains["east"]) == ["a", "b", "d"]

    def test_partition_balanced_covers_all_nodes(self, small_hosting):
        domains = partition_balanced(small_hosting, 3)
        all_nodes = [node for nodes in domains.values() for node in nodes]
        assert sorted(all_nodes) == sorted(small_hosting.nodes())

    def test_embeds_within_a_single_domain_when_possible(self):
        hosting = planetlab_host(40, rng=31)
        domains = partition_by_attribute(hosting, "region")
        embedder = HierarchicalEmbedder(hosting, domains, algorithm=LNS())
        # A tiny query with generous windows fits inside one region.
        query = QueryNetwork("tiny")
        query.add_node("x")
        query.add_node("y")
        query.add_edge("x", "y", minDelay=0.1, maxDelay=500.0)
        result = embedder.embed(query,
                                constraint="rEdge.avgDelay >= vEdge.minDelay && "
                                           "rEdge.avgDelay <= vEdge.maxDelay")
        assert result.found
        assert result.winning_domain in domains
        assert not result.used_global_fallback
        # Both chosen hosts must indeed live in the winning domain.
        for host in result.result.first.hosting_nodes():
            assert host in domains[result.winning_domain]

    def test_falls_back_to_global_view_for_cross_domain_queries(self, small_hosting,
                                                                window_constraint):
        domains = partition_by_attribute(small_hosting, "region")
        embedder = HierarchicalEmbedder(small_hosting, domains, algorithm=ECF())
        # The path query with these exact windows needs hosts from both regions
        # in most embeddings; with only 3 nodes per region the per-domain search
        # may or may not succeed — but with the fallback the query must succeed.
        query = QueryNetwork("wide")
        for node in ("x", "y", "z", "w"):
            query.add_node(node)
        query.add_edge("x", "y", minDelay=5.0, maxDelay=60.0)
        query.add_edge("y", "z", minDelay=5.0, maxDelay=60.0)
        query.add_edge("z", "w", minDelay=5.0, maxDelay=60.0)
        result = embedder.embed(query, constraint=window_constraint)
        assert result.found

    def test_no_fallback_reports_failure(self, small_hosting, window_constraint):
        domains = partition_by_attribute(small_hosting, "region")
        embedder = HierarchicalEmbedder(small_hosting, domains, algorithm=ECF())
        query = QueryNetwork("wide")
        for node in ("x", "y", "z", "w"):
            query.add_node(node)
        query.add_edge("x", "y", minDelay=35.0, maxDelay=55.0)
        query.add_edge("y", "z", minDelay=35.0, maxDelay=55.0)
        query.add_edge("z", "w", minDelay=35.0, maxDelay=55.0)
        result = embedder.embed(query, constraint=window_constraint,
                                allow_global_fallback=False)
        # Each region has only 3 nodes and few 35-55ms internal links, so the
        # per-domain searches fail and, without fallback, so does the request.
        assert not result.found
        assert result.winning_domain is None

    def test_requires_at_least_one_domain(self, small_hosting):
        with pytest.raises(ValueError):
            HierarchicalEmbedder(small_hosting, {})

    def test_unknown_domain_in_order_raises(self, small_hosting):
        domains = partition_by_attribute(small_hosting, "region")
        embedder = HierarchicalEmbedder(small_hosting, domains)
        query = QueryNetwork("q")
        query.add_node("x")
        with pytest.raises(KeyError):
            embedder.embed(query, domain_order=["mars"])
