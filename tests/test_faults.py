"""The deterministic fault-injection subsystem (:mod:`repro.faults`).

Covers the plan layer (validation, JSON round trip, seeded Poisson draws),
the injector (counting, firing, install semantics) and the typed injected
exceptions — the contract every fault-tolerance test in the suite builds on.
Determinism is the core property: the same plan driven by the same call
sequence fires the same faults at the same invocations, every run.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import faults
from repro.faults import (
    KINDS,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedConnectionDrop,
    InjectedEngineTimeout,
    InjectedFault,
    InjectedPoolBreak,
    InjectedShardError,
    InjectedWorkerCrash,
    validate_sites,
)
from repro.utils.timing import TimeoutExpired


# --------------------------------------------------------------------------- #
# FaultSpec validation
# --------------------------------------------------------------------------- #

class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultSpec(site="no.such.site", kind="slow-call", hits=(1,))

    def test_kind_must_match_site(self):
        # parallel.pool-submit only understands pool-broken.
        with pytest.raises(FaultPlanError, match="does not support"):
            FaultSpec(site="parallel.pool-submit", kind="worker-crash",
                      hits=(1,))

    def test_hits_are_sorted_and_deduplicated(self):
        spec = FaultSpec(site="service.submit", kind="slow-call",
                         hits=(5, 1, 3, 1))
        assert spec.hits == (1, 3, 5)

    def test_empty_hits_rejected(self):
        with pytest.raises(FaultPlanError, match="no hits"):
            FaultSpec(site="service.submit", kind="slow-call", hits=())

    def test_hits_are_one_based(self):
        with pytest.raises(FaultPlanError, match="1-based"):
            FaultSpec(site="service.submit", kind="slow-call", hits=(0, 2))

    def test_negative_delay_rejected(self):
        with pytest.raises(FaultPlanError, match="delay"):
            FaultSpec(site="service.submit", kind="slow-call", hits=(1,),
                      delay=-0.1)

    def test_every_declared_kind_is_in_kinds(self):
        for site, kinds in SITES.items():
            for kind in kinds:
                assert kind in KINDS, (site, kind)

    def test_validate_sites(self):
        validate_sites(SITES)          # every declared site passes
        with pytest.raises(FaultPlanError, match="unknown fault sites"):
            validate_sites(["server.reply", "bogus.site"])


class TestPoissonDraw:
    def test_same_seed_same_hits(self):
        a = FaultSpec.poisson("server.reply", "connection-drop",
                              rate=0.2, horizon=50.0, seed=7)
        b = FaultSpec.poisson("server.reply", "connection-drop",
                              rate=0.2, horizon=50.0, seed=7)
        assert a.hits == b.hits
        assert all(h >= 1 for h in a.hits)

    def test_different_seeds_differ(self):
        draws = {FaultSpec.poisson("server.reply", "connection-drop",
                                   rate=0.5, horizon=40.0, seed=s).hits
                 for s in range(5)}
        assert len(draws) > 1

    def test_empty_draw_is_an_error_not_a_silent_noop(self):
        with pytest.raises(FaultPlanError, match="no fault arrivals"):
            FaultSpec.poisson("server.reply", "connection-drop",
                              rate=1e-9, horizon=0.001, seed=0)


# --------------------------------------------------------------------------- #
# FaultPlan: indexing and the JSON round trip
# --------------------------------------------------------------------------- #

class TestFaultPlan:
    def test_lookup(self):
        plan = FaultPlan.fixed(
            FaultSpec("service.submit", "engine-timeout", hits=(2, 4)))
        assert plan.lookup("service.submit", 1) is None
        assert plan.lookup("service.submit", 2).kind == "engine-timeout"
        assert plan.lookup("server.reply", 2) is None
        assert plan.sites() == ["service.submit"]

    def test_duplicate_site_invocation_rejected(self):
        with pytest.raises(FaultPlanError, match="duplicate fault"):
            FaultPlan.fixed(
                FaultSpec("service.submit", "engine-timeout", hits=(2,)),
                FaultSpec("service.submit", "slow-call", hits=(2,)))

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.fixed(
            FaultSpec("server.reply", "connection-drop", hits=(1, 3)),
            FaultSpec("admission.admit", "slow-call", hits=(2,), delay=0.01))
        path = tmp_path / "plan.json"
        plan.to_json(path)
        loaded = FaultPlan.from_json(path)
        assert loaded == plan

    def test_from_payload_poisson_shape(self):
        plan = FaultPlan.from_payload({"specs": [
            {"site": "server.reply", "kind": "connection-drop",
             "poisson": {"rate": 0.2, "horizon": 50, "seed": 7}}]})
        direct = FaultSpec.poisson("server.reply", "connection-drop",
                                   rate=0.2, horizon=50.0, seed=7)
        assert plan.specs[0].hits == direct.hits

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},
        {"specs": "not a list"},
        {"specs": ["not a dict"]},
        {"specs": [{"site": "server.reply", "kind": "connection-drop"}]},
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_payload(payload)

    def test_from_json_missing_file(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot load"):
            FaultPlan.from_json(tmp_path / "missing.json")


# --------------------------------------------------------------------------- #
# Injected exception typing
# --------------------------------------------------------------------------- #

class TestInjectedTypes:
    def test_worker_crash_is_broken_process_pool(self):
        assert issubclass(InjectedWorkerCrash, BrokenProcessPool)
        assert issubclass(InjectedPoolBreak, BrokenProcessPool)

    def test_engine_timeout_is_timeout_expired(self):
        assert issubclass(InjectedEngineTimeout, TimeoutExpired)

    def test_connection_drop_is_connection_error(self):
        assert issubclass(InjectedConnectionDrop, ConnectionError)

    def test_shard_error_is_runtime_error(self):
        assert issubclass(InjectedShardError, RuntimeError)

    def test_all_carry_the_injected_marker(self):
        for cls in (InjectedWorkerCrash, InjectedPoolBreak,
                    InjectedShardError, InjectedEngineTimeout,
                    InjectedConnectionDrop):
            assert issubclass(cls, InjectedFault)


# --------------------------------------------------------------------------- #
# The injector: counting, firing, install semantics
# --------------------------------------------------------------------------- #

class TestInjector:
    def test_fire_is_a_noop_without_a_plan(self):
        assert faults.active() is None
        faults.fire("service.submit")       # must not raise

    def test_injecting_installs_and_deactivates(self):
        plan = FaultPlan.fixed(
            FaultSpec("service.submit", "engine-timeout", hits=(1,)))
        with faults.injecting(plan) as injector:
            assert faults.active() is injector
            with pytest.raises(InjectedEngineTimeout):
                faults.fire("service.submit")
        assert faults.active() is None
        faults.fire("service.submit")       # off again

    def test_double_install_rejected(self):
        plan = FaultPlan.fixed(
            FaultSpec("service.submit", "slow-call", hits=(1,)))
        with faults.injecting(plan):
            with pytest.raises(RuntimeError, match="already installed"):
                faults.install(plan)

    def test_deactivate_even_when_body_raises(self):
        plan = FaultPlan.fixed(
            FaultSpec("service.submit", "slow-call", hits=(1,)))
        with pytest.raises(ValueError):
            with faults.injecting(plan):
                raise ValueError("boom")
        assert faults.active() is None

    def test_fires_exactly_at_the_scheduled_invocations(self):
        plan = FaultPlan.fixed(
            FaultSpec("service.submit", "engine-timeout", hits=(2, 5)))

        def drive() -> list:
            outcomes = []
            with faults.injecting(plan) as injector:
                for _ in range(6):
                    try:
                        faults.fire("service.submit")
                        outcomes.append("ok")
                    except InjectedEngineTimeout:
                        outcomes.append("timeout")
                stats = injector.stats()
            return outcomes, stats

        outcomes, stats = drive()
        assert outcomes == ["ok", "timeout", "ok", "ok", "timeout", "ok"]
        assert stats["invocations"] == {"service.submit": 6}
        assert stats["total_fired"] == 2
        assert stats["fired_counts"] == {"engine-timeout": 2}
        assert [f["invocation"] for f in stats["fired"]] == [2, 5]
        # Determinism: an identical second run yields the identical log.
        assert drive() == (outcomes, stats)

    def test_sites_are_counted_independently(self):
        plan = FaultPlan.fixed(
            FaultSpec("service.submit", "engine-timeout", hits=(2,)))
        with faults.injecting(plan) as injector:
            faults.fire("admission.admit")   # does not advance service.submit
            faults.fire("service.submit")
            with pytest.raises(InjectedEngineTimeout):
                faults.fire("service.submit")
            stats = injector.stats()
        assert stats["invocations"] == {"admission.admit": 1,
                                        "service.submit": 2}

    def test_slow_call_sleeps_then_returns(self):
        plan = FaultPlan.fixed(
            FaultSpec("admission.admit", "slow-call", hits=(1,), delay=0.05))
        with faults.injecting(plan) as injector:
            started = time.perf_counter()
            faults.fire("admission.admit")   # sleeps, must not raise
            elapsed = time.perf_counter() - started
            assert injector.stats()["fired_counts"] == {"slow-call": 1}
        assert elapsed >= 0.04

    @pytest.mark.parametrize("site,kind,expected", [
        ("parallel.shard-result", "worker-crash", InjectedWorkerCrash),
        ("parallel.shard-result", "shard-exception", InjectedShardError),
        ("parallel.pool-submit", "pool-broken", InjectedPoolBreak),
        ("service.submit", "engine-timeout", InjectedEngineTimeout),
        ("server.reply", "connection-drop", InjectedConnectionDrop),
    ])
    def test_every_raising_kind_fires_its_type(self, site, kind, expected):
        plan = FaultPlan.fixed(FaultSpec(site, kind, hits=(1,)))
        with faults.injecting(plan):
            with pytest.raises(expected):
                faults.fire(site)

    def test_injector_visit_is_the_counting_primitive(self):
        plan = FaultPlan.fixed(
            FaultSpec("server.reply", "connection-drop", hits=(2,)))
        injector = FaultInjector(plan)
        assert injector.visit("server.reply") is None
        spec = injector.visit("server.reply")
        assert spec is not None and spec.kind == "connection-drop"
        assert injector.visit("server.reply") is None
