"""GraphML serialisation tests, including property-based round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    HostingNetwork,
    Network,
    QueryNetwork,
    graphml_string,
    parse_graphml_string,
    read_graphml,
    write_graphml,
)
from repro.graphs.attributes import AttributeSchema, AttributeSpec, graphml_type_for, infer_schema
from repro.graphs.errors import GraphMLError


class TestAttributeSchema:
    def test_graphml_type_for(self):
        assert graphml_type_for(True) == "boolean"
        assert graphml_type_for(3) == "long"
        assert graphml_type_for(2.5) == "double"
        assert graphml_type_for("x") == "string"

    def test_spec_coercion(self):
        spec = AttributeSpec("delay", "edge", "double")
        assert spec.coerce("3.5") == 3.5
        boolean = AttributeSpec("up", "node", "boolean")
        assert boolean.coerce("true") is True
        assert boolean.coerce("0") is False

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", "link", "double")
        with pytest.raises(ValueError):
            AttributeSpec("x", "node", "complex")

    def test_infer_schema(self):
        schema = infer_schema([{"os": "linux", "load": 0.5}], [{"delay": 3}])
        assert schema.spec_for("node", "os").graphml_type == "string"
        assert schema.spec_for("node", "load").graphml_type == "double"
        assert schema.spec_for("edge", "delay").graphml_type == "long"

    def test_schema_merge(self):
        a = AttributeSchema().declare_node("x", "double")
        b = AttributeSchema().declare_node("x", "string").declare_edge("y", "long")
        merged = a.merge(b)
        assert merged.spec_for("node", "x").graphml_type == "string"
        assert ("edge", "y") in merged


class TestRoundTrip:
    def test_round_trip_preserves_structure_and_types(self, small_hosting):
        text = graphml_string(small_hosting)
        restored = parse_graphml_string(text, cls=HostingNetwork)
        assert restored.num_nodes == small_hosting.num_nodes
        assert restored.num_edges == small_hosting.num_edges
        assert restored.get_node_attr("a", "osType") == "linux"
        assert restored.get_node_attr("a", "cpuLoad") == pytest.approx(0.2)
        assert isinstance(restored.get_node_attr("a", "cpuLoad"), float)
        assert restored.get_edge_attr("a", "b", "avgDelay") == pytest.approx(10.0)
        assert not restored.directed

    def test_round_trip_through_file(self, small_hosting, tmp_path):
        path = write_graphml(small_hosting, tmp_path / "host.graphml")
        restored = read_graphml(path, cls=HostingNetwork)
        assert restored.num_edges == small_hosting.num_edges
        assert isinstance(restored, HostingNetwork)

    def test_round_trip_directed(self):
        net = Network("d", directed=True)
        net.add_node("a")
        net.add_node("b")
        net.add_edge("a", "b", weight=1.5)
        restored = parse_graphml_string(graphml_string(net))
        assert restored.directed
        assert restored.has_edge("a", "b")
        assert not restored.has_edge("b", "a")

    def test_round_trip_boolean_attribute(self):
        net = Network("flags")
        net.add_node("a", up=True)
        net.add_node("b", up=False)
        net.add_edge("a", "b")
        restored = parse_graphml_string(graphml_string(net))
        assert restored.get_node_attr("a", "up") is True
        assert restored.get_node_attr("b", "up") is False

    def test_query_class_is_honoured(self, path_query):
        restored = parse_graphml_string(graphml_string(path_query), cls=QueryNetwork)
        assert isinstance(restored, QueryNetwork)
        assert restored.get_edge_attr("x", "y", "maxDelay") == pytest.approx(35.0)


class TestDefaults:
    def test_declared_default_applied_to_missing_data(self):
        text = """<?xml version='1.0' encoding='utf-8'?>
        <graphml xmlns="http://graphml.graphdrawing.org/xmlns">
          <key id="d0" for="node" attr.name="osType" attr.type="string">
            <default>linux</default>
          </key>
          <graph id="g" edgedefault="undirected">
            <node id="a"/>
            <node id="b"><data key="d0">bsd</data></node>
            <edge id="e0" source="a" target="b"/>
          </graph>
        </graphml>"""
        net = parse_graphml_string(text)
        assert net.get_node_attr("a", "osType") == "linux"
        assert net.get_node_attr("b", "osType") == "bsd"


class TestErrors:
    def test_invalid_xml(self):
        with pytest.raises(GraphMLError):
            parse_graphml_string("<graphml><graph>")

    def test_wrong_root_element(self):
        with pytest.raises(GraphMLError):
            parse_graphml_string("<notgraphml></notgraphml>")

    def test_missing_graph_element(self):
        with pytest.raises(GraphMLError):
            parse_graphml_string(
                '<graphml xmlns="http://graphml.graphdrawing.org/xmlns"></graphml>')

    def test_edge_referencing_unknown_node(self):
        text = """<graphml><graph id="g" edgedefault="undirected">
            <node id="a"/>
            <edge source="a" target="ghost"/>
        </graph></graphml>"""
        with pytest.raises(Exception):
            parse_graphml_string(text)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphMLError):
            read_graphml(tmp_path / "nope.graphml")

    def test_bad_typed_value(self):
        text = """<graphml><key id="d0" for="edge" attr.name="delay" attr.type="double"/>
        <graph id="g" edgedefault="undirected">
            <node id="a"/><node id="b"/>
            <edge source="a" target="b"><data key="d0">not-a-number</data></edge>
        </graph></graphml>"""
        with pytest.raises(GraphMLError):
            parse_graphml_string(text)


# --------------------------------------------------------------------------- #
# Property-based round trip
# --------------------------------------------------------------------------- #

_names = st.text(alphabet="abcdefghij", min_size=1, max_size=4)
# GraphML declares one type per attribute key, so each attribute name keeps a
# consistent value type across the whole network (as any real dataset would).
_value_strategies = (
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.booleans(),
    st.text(alphabet="abcxyz-_. ", max_size=8),
)


@st.composite
def _attributed_networks(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=6))
    net = Network("prop")
    node_attr_names = draw(st.lists(_names, max_size=3, unique=True))
    edge_attr_names = draw(st.lists(_names, max_size=3, unique=True))
    strategy_for = {
        name: _value_strategies[draw(st.integers(0, len(_value_strategies) - 1))]
        for name in set(node_attr_names) | set(edge_attr_names)
    }
    for index in range(num_nodes):
        attrs = {name: draw(strategy_for[name]) for name in node_attr_names
                 if draw(st.booleans())}
        net.add_node(f"n{index}", **attrs)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if draw(st.booleans()):
                attrs = {name: draw(strategy_for[name]) for name in edge_attr_names
                         if draw(st.booleans())}
                net.add_edge(f"n{i}", f"n{j}", **attrs)
    return net


@settings(max_examples=40, deadline=None)
@given(network=_attributed_networks())
def test_graphml_round_trip_property(network):
    restored = parse_graphml_string(graphml_string(network))
    assert restored.num_nodes == network.num_nodes
    assert restored.num_edges == network.num_edges
    assert set(map(str, restored.nodes())) == set(map(str, network.nodes()))
    for node in network.nodes():
        original = network.node_attrs(node)
        roundtripped = restored.node_attrs(str(node))
        for key, value in original.items():
            if isinstance(value, float):
                assert roundtripped[key] == pytest.approx(value)
            else:
                assert roundtripped[key] == value
