"""Unit tests for the base Network class and its role-specific subclasses."""

from __future__ import annotations

import pytest

from repro.graphs import HostingNetwork, Network, QueryNetwork
from repro.graphs.errors import DuplicateNodeError, GraphError, MissingNodeError


class TestConstruction:
    def test_add_nodes_and_edges(self):
        net = Network("n")
        net.add_node("a", color="red")
        net.add_node("b")
        net.add_edge("a", "b", weight=3)
        assert net.num_nodes == 2
        assert net.num_edges == 1
        assert net.has_edge("a", "b")
        assert net.get_node_attr("a", "color") == "red"
        assert net.get_edge_attr("a", "b", "weight") == 3

    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(DuplicateNodeError):
            net.add_node("a")

    def test_edge_to_missing_node_rejected(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(MissingNodeError):
            net.add_edge("a", "ghost")

    def test_self_loop_rejected(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(GraphError):
            net.add_edge("a", "a")

    def test_update_node_and_edge(self):
        net = Network()
        net.add_node("a", x=1)
        net.add_node("b")
        net.add_edge("a", "b", w=1)
        net.update_node("a", x=2, y=3)
        net.update_edge("a", "b", w=9)
        assert net.node_attrs("a") == {"x": 2, "y": 3}
        assert net.get_edge_attr("a", "b", "w") == 9

    def test_update_missing_raises(self):
        net = Network()
        with pytest.raises(MissingNodeError):
            net.update_node("ghost", x=1)

    def test_remove_node_and_edge(self):
        net = Network()
        for node in "abc":
            net.add_node(node)
        net.add_edge("a", "b")
        net.add_edge("b", "c")
        net.remove_edge("a", "b")
        assert not net.has_edge("a", "b")
        net.remove_node("c")
        assert not net.has_node("c")
        assert net.num_edges == 0


class TestUndirectedSemantics:
    def test_undirected_edge_visible_both_ways(self):
        net = Network(directed=False)
        net.add_node("a")
        net.add_node("b")
        net.add_edge("a", "b")
        assert net.has_edge("b", "a")

    def test_directed_edge_is_one_way(self):
        net = Network(directed=True)
        net.add_node("a")
        net.add_node("b")
        net.add_edge("a", "b")
        assert not net.has_edge("b", "a")

    def test_directed_neighbors_include_both_directions(self):
        net = Network(directed=True)
        for node in "abc":
            net.add_node(node)
        net.add_edge("a", "b")
        net.add_edge("c", "a")
        assert sorted(net.neighbors("a")) == ["b", "c"]


class TestAdjacencyCache:
    """The per-node neighbour cache must never serve stale adjacency."""

    def _directed_triangle(self):
        net = Network(directed=True)
        for node in "abc":
            net.add_node(node)
        net.add_edge("a", "b")
        net.add_edge("c", "a")
        return net

    def test_repeated_calls_are_consistent(self):
        net = self._directed_triangle()
        assert net.neighbors("a") == net.neighbors("a")
        assert sorted(net.neighbors("a")) == ["b", "c"]

    def test_add_edge_invalidates(self):
        net = self._directed_triangle()
        assert sorted(net.neighbors("a")) == ["b", "c"]
        net.add_node("d")
        net.add_edge("a", "d")
        assert sorted(net.neighbors("a")) == ["b", "c", "d"]
        assert net.neighbors("d") == ["a"]

    def test_remove_edge_invalidates(self):
        net = self._directed_triangle()
        assert sorted(net.neighbors("a")) == ["b", "c"]
        net.remove_edge("c", "a")
        assert net.neighbors("a") == ["b"]
        assert net.neighbors("c") == []

    def test_remove_node_invalidates_other_nodes(self):
        net = self._directed_triangle()
        assert sorted(net.neighbors("a")) == ["b", "c"]
        assert net.neighbors("b") == ["a"]
        net.remove_node("a")
        assert net.neighbors("b") == []
        assert net.neighbors("c") == []

    def test_returned_list_is_a_copy(self):
        net = self._directed_triangle()
        listing = net.neighbors("a")
        listing.append("bogus")
        assert "bogus" not in net.neighbors("a")

    def test_undirected_cache_matches_networkx(self, small_hosting):
        for node in small_hosting.nodes():
            assert (sorted(small_hosting.neighbors(node))
                    == sorted(small_hosting.graph.neighbors(node)))


class TestInspection:
    def test_len_contains_iter(self, small_hosting):
        assert len(small_hosting) == 6
        assert "a" in small_hosting
        assert "zz" not in small_hosting
        assert sorted(small_hosting) == ["a", "b", "c", "d", "e", "f"]

    def test_degree_and_adjacency(self, small_hosting):
        assert small_hosting.degree("b") == 3
        assert sorted(small_hosting.neighbors("b")) == ["a", "c", "e"]
        adjacency = small_hosting.adjacency()
        assert sorted(adjacency["e"]) == ["b", "d", "f"]

    def test_connectivity_and_density(self, small_hosting):
        assert small_hosting.is_connected()
        assert 0 < small_hosting.density() < 1
        empty = Network()
        assert empty.is_connected()

    def test_disconnected_network(self):
        net = Network()
        for node in "abcd":
            net.add_node(node)
        net.add_edge("a", "b")
        assert not net.is_connected()


class TestDerivation:
    def test_copy_is_independent(self, small_hosting):
        clone = small_hosting.copy()
        clone.update_node("a", cpuLoad=0.99)
        assert small_hosting.get_node_attr("a", "cpuLoad") == 0.2
        assert clone.num_edges == small_hosting.num_edges
        assert isinstance(clone, HostingNetwork)

    def test_subnetwork_preserves_class_and_attributes(self, small_hosting):
        sub = small_hosting.subnetwork(["a", "b", "e"])
        assert isinstance(sub, HostingNetwork)
        assert sorted(sub.nodes()) == ["a", "b", "e"]
        # Induced edges: a-b and b-e.
        assert sub.num_edges == 2
        assert sub.get_edge_attr("a", "b", "avgDelay") == 10.0

    def test_subnetwork_with_missing_node_raises(self, small_hosting):
        with pytest.raises(MissingNodeError):
            small_hosting.subnetwork(["a", "ghost"])

    def test_from_networkx_round_trip(self, small_hosting):
        graph = small_hosting.to_networkx()
        rebuilt = Network.from_networkx(graph, name="rebuilt")
        assert rebuilt.num_nodes == small_hosting.num_nodes
        assert rebuilt.num_edges == small_hosting.num_edges
        assert rebuilt.get_node_attr("a", "osType") == "linux"


class TestHostingSpecifics:
    def test_oriented_edges_double_undirected(self, small_hosting):
        oriented = list(small_hosting.oriented_edges())
        assert len(oriented) == 2 * small_hosting.num_edges
        assert ("a", "b") in oriented and ("b", "a") in oriented

    def test_edge_attribute_stats(self, small_hosting):
        stats = small_hosting.edge_attribute_stats("avgDelay")
        assert stats["count"] == 7
        assert stats["min"] == 10.0
        assert stats["max"] == 50.0
        assert 10.0 <= stats["median"] <= 50.0

    def test_edge_attribute_stats_missing_attribute(self, small_hosting):
        with pytest.raises(ValueError):
            small_hosting.edge_attribute_stats("nonexistent")

    def test_edges_in_attribute_range(self, small_hosting):
        edges = small_hosting.edges_in_attribute_range("avgDelay", 10, 25)
        assert set(edges) == {("a", "b"), ("b", "e"), ("c", "f"), ("e", "f")}
        fraction = small_hosting.fraction_of_edges_in_range("avgDelay", 10, 25)
        assert fraction == pytest.approx(4 / 7)

    def test_capacity_lifecycle(self, small_hosting):
        small_hosting.set_capacity("a", 3.0)
        assert small_hosting.available_capacity("a") == 3.0
        small_hosting.consume_capacity("a", 2.0)
        assert small_hosting.available_capacity("a") == pytest.approx(1.0)
        with pytest.raises(ValueError):
            small_hosting.consume_capacity("a", 5.0)
        small_hosting.release_capacity("a", 10.0)     # clamped to the declared total
        assert small_hosting.available_capacity("a") == 3.0

    def test_capacity_on_undeclared_node_raises(self, small_hosting):
        with pytest.raises(ValueError):
            small_hosting.consume_capacity("b", 1.0)

    def test_nodes_with_attribute(self, small_hosting):
        assert sorted(small_hosting.nodes_with_attribute("osType", "bsd")) == ["c", "e"]
        assert len(small_hosting.nodes_with_attribute("osType")) == 6

    def test_degree_histogram(self, small_hosting):
        histogram = small_hosting.degree_histogram()
        assert sum(histogram.values()) == 6
        assert sum(degree * count for degree, count in histogram.items()) == 14


class TestQuerySpecifics:
    def test_nodes_by_degree(self, small_hosting):
        query = QueryNetwork("q")
        for node in "wxyz":
            query.add_node(node)
        query.add_edge("w", "x")
        query.add_edge("w", "y")
        query.add_edge("w", "z")
        query.add_edge("x", "y")
        order = query.nodes_by_degree()
        assert order[0] == "w"
        assert set(order) == {"w", "x", "y", "z"}

    def test_edges_to_placed(self):
        query = QueryNetwork("q")
        for node in "abc":
            query.add_node(node)
        query.add_edge("a", "b")
        query.add_edge("b", "c")
        assert query.edges_to_placed("b", ["a"]) == [("a", "b")]
        assert query.edges_to_placed("b", ["a", "c"]) == [("a", "b"), ("c", "b")]
        assert query.edges_to_placed("a", []) == []

    def test_bound_nodes(self):
        query = QueryNetwork("q")
        query.add_node("a", bindTo="host1")
        query.add_node("b")
        assert query.bound_nodes() == {"a": "host1"}

    def test_obviously_infeasible_too_many_nodes(self, small_hosting):
        query = QueryNetwork("big")
        for index in range(10):
            query.add_node(f"q{index}")
        assert query.is_obviously_infeasible(small_hosting)
        reasons = query.obviously_infeasible_reasons(small_hosting)
        assert any("nodes" in reason for reason in reasons)

    def test_obviously_infeasible_degree_bound(self, small_hosting):
        query = QueryNetwork("star5")
        query.add_node("hub")
        for index in range(5):
            query.add_node(f"leaf{index}")
            query.add_edge("hub", f"leaf{index}")
        # Max hosting degree is 3 (node b/e), so a degree-5 hub cannot embed.
        assert query.is_obviously_infeasible(small_hosting)

    def test_feasible_query_is_not_flagged(self, small_hosting, path_query):
        assert not path_query.is_obviously_infeasible(small_hosting)
