"""Tests for graph operations: subgraph sampling, relabeling, embedding checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import HostingNetwork, QueryNetwork, ops
from repro.topology.random_graphs import connected_gnp


class TestRandomConnectedNodeSet:
    def test_requested_size_is_returned(self, small_hosting):
        nodes = ops.random_connected_node_set(small_hosting, 4, rng=1)
        assert len(nodes) == 4
        assert all(small_hosting.has_node(node) for node in nodes)

    def test_result_induces_connected_subgraph(self, small_hosting):
        nodes = ops.random_connected_node_set(small_hosting, 5, rng=7)
        sub = small_hosting.subnetwork(nodes)
        assert sub.is_connected()

    def test_size_larger_than_network_raises(self, small_hosting):
        with pytest.raises(ValueError):
            ops.random_connected_node_set(small_hosting, 99)

    def test_non_positive_size_raises(self, small_hosting):
        with pytest.raises(ValueError):
            ops.random_connected_node_set(small_hosting, 0)

    def test_deterministic_with_seed(self, small_hosting):
        first = ops.random_connected_node_set(small_hosting, 4, rng=42)
        second = ops.random_connected_node_set(small_hosting, 4, rng=42)
        assert first == second


class TestRandomConnectedSubgraph:
    def test_full_induced_subgraph(self, small_hosting):
        sub = ops.random_connected_subgraph(small_hosting, 4, rng=3)
        assert sub.num_nodes == 4
        assert sub.is_connected()
        assert isinstance(sub, HostingNetwork)

    def test_edge_budget_respected(self, small_hosting):
        sub = ops.random_connected_subgraph(small_hosting, 5, num_edges=4, rng=3)
        assert sub.num_nodes == 5
        assert sub.num_edges == 4
        assert sub.is_connected()

    def test_too_small_edge_budget_raises(self, small_hosting):
        with pytest.raises(ValueError):
            ops.random_connected_subgraph(small_hosting, 5, num_edges=2, rng=3)

    def test_attributes_are_preserved(self, small_hosting):
        sub = ops.random_connected_subgraph(small_hosting, 3, rng=5)
        for u, v in sub.edges():
            assert sub.get_edge_attr(u, v, "avgDelay") == \
                small_hosting.get_edge_attr(u, v, "avgDelay")

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           size=st.integers(min_value=2, max_value=10))
    def test_sampled_subgraph_always_connected(self, seed, size):
        hosting = connected_gnp(12, 0.3, rng=seed)
        sub = ops.random_connected_subgraph(hosting, size, rng=seed + 1)
        assert sub.num_nodes == size
        assert sub.is_connected()


class TestAsQueryAndRelabel:
    def test_as_query_converts_class_and_filters_attributes(self, small_hosting):
        query = ops.as_query(small_hosting, attribute_whitelist=["avgDelay"])
        assert isinstance(query, QueryNetwork)
        assert query.num_edges == small_hosting.num_edges
        assert query.get_edge_attr("a", "b", "avgDelay") == 10.0
        assert query.get_edge_attr("a", "b", "minDelay") is None
        assert query.node_attrs("a") == {}

    def test_as_query_keeps_everything_without_whitelist(self, small_hosting):
        query = ops.as_query(small_hosting)
        assert query.get_node_attr("a", "osType") == "linux"

    def test_relabel_sequential(self, small_hosting):
        relabeled, mapping = ops.relabel_sequential(small_hosting, prefix="q")
        assert relabeled.num_nodes == small_hosting.num_nodes
        assert relabeled.num_edges == small_hosting.num_edges
        assert set(relabeled.nodes()) == {f"q{i}" for i in range(6)}
        # Attribute payloads follow the relabeling.
        for old, new in mapping.items():
            assert relabeled.node_attrs(new) == small_hosting.node_attrs(old)


class TestEmbeddingCheck:
    def test_identity_assignment_of_subgraph_is_valid(self, small_hosting):
        sub = small_hosting.subnetwork(["a", "b", "e"])
        query = ops.as_query(sub)
        assignment = {node: node for node in query.nodes()}
        assert ops.is_subgraph_embedding(query, small_hosting, assignment)

    def test_non_injective_assignment_is_invalid(self, small_hosting, path_query):
        assignment = {"x": "a", "y": "b", "z": "b"}
        assert not ops.is_subgraph_embedding(path_query, small_hosting, assignment)

    def test_missing_edge_is_invalid(self, small_hosting, path_query):
        # a and e are not adjacent in the small hosting network.
        assignment = {"x": "a", "y": "e", "z": "f"}
        assert not ops.is_subgraph_embedding(path_query, small_hosting, assignment)

    def test_partial_coverage_is_invalid(self, small_hosting, path_query):
        assert not ops.is_subgraph_embedding(path_query, small_hosting, {"x": "a"})

    def test_degree_sorted_nodes(self, small_hosting):
        ordered = ops.degree_sorted_nodes(small_hosting)
        degrees = [small_hosting.degree(node) for node in ordered]
        assert degrees == sorted(degrees, reverse=True)

    def test_edge_induced_nodes(self):
        assert ops.edge_induced_nodes([("a", "b"), ("b", "c"), ("a", "c")]) == ["a", "b", "c"]
