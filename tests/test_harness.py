"""Tests for repro.harness — scenario configs, open-loop driver, reports.

These run live (in-process) servers at tiny scale; each scenario horizon
is under two seconds, so the suite stays test-tier-sized while covering
the honest-measurement contract end to end: latency from the scheduled
offset, null percentiles on empty samples, deterministic accounting, and
the scenario matrix (steady / overload / burst / diurnal / churn /
allshed / cluster).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.harness import (
    DEFAULT_MATRIX,
    SCENARIOS,
    ScenarioConfig,
    build_scene,
    build_trace,
    classify_outcomes,
    load_scenario,
    run_scenario,
    scenario_summary,
    write_scenario_artifacts,
)


def tiny(name: str, **overrides) -> ScenarioConfig:
    """A sub-second steady scenario for fast end-to-end runs."""
    base = dict(name=name, rate=12.0, horizon=0.6, hosting_nodes=16,
                num_workloads=2, query_size=4)
    base.update(overrides)
    return ScenarioConfig(**base)


class TestScenarioConfig:
    def test_named_matrix_is_complete(self):
        assert set(DEFAULT_MATRIX) <= set(SCENARIOS)
        for name in ("steady", "overload", "burst", "diurnal", "churn",
                     "allshed"):
            assert name in SCENARIOS

    def test_unknown_arrival_kind_raises(self):
        with pytest.raises(ValueError, match="arrival"):
            ScenarioConfig(name="bad", arrival="lunar")

    def test_nonpositive_horizon_raises(self):
        with pytest.raises(ValueError, match="horizon"):
            ScenarioConfig(name="bad", horizon=0.0)

    def test_reserve_fraction_bounds(self):
        with pytest.raises(ValueError, match="reserve_fraction"):
            ScenarioConfig(name="bad", reserve_fraction=1.5)

    def test_describe_round_trips_through_load_scenario(self):
        config = SCENARIOS["burst"]
        assert load_scenario(config.describe()) == config


class TestLoadScenario:
    def test_by_name(self):
        assert load_scenario("steady") is SCENARIOS["steady"]

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="steady"):
            load_scenario("no-such-scenario")

    def test_json_config_file(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(json.dumps({"name": "custom", "rate": 5.0,
                                    "horizon": 0.5}))
        config = load_scenario(path)
        assert config.name == "custom"
        assert config.rate == 5.0

    def test_extends_named_base(self, tmp_path):
        path = tmp_path / "bigger.json"
        path.write_text(json.dumps({"extends": "overload", "rate": 120.0}))
        config = load_scenario(path)
        assert config.rate == 120.0
        assert config.queue_depth == SCENARIOS["overload"].queue_depth

    def test_unknown_field_raises(self, tmp_path):
        path = tmp_path / "typo.json"
        path.write_text(json.dumps({"name": "typo", "ratee": 5.0}))
        with pytest.raises(ValueError, match="ratee"):
            load_scenario(path)

    def test_extends_unknown_base_raises(self):
        with pytest.raises(ValueError, match="extends"):
            load_scenario({"extends": "no-such-base"})


class TestTraceLowering:
    def test_steady_trace_matches_rate_roughly(self):
        trace = build_trace(SCENARIOS["steady"], seed=2)
        assert trace.arrivals
        assert all(0 <= a.offset < SCENARIOS["steady"].horizon
                   for a in trace.arrivals)

    def test_envelope_violation_raises(self):
        # A diurnal scenario whose declared envelope sits below the true
        # peak must fail at trace-lowering time: thinning against a wrong
        # envelope would record a process that is not Poisson(λ(t)).
        lying = dataclasses.replace(SCENARIOS["diurnal"], rate_max=10.0)
        assert lying.peak_rate > 10.0
        with pytest.raises(ValueError, match="rate_max"):
            build_trace(lying, seed=2)

    def test_burst_arrivals_cluster_in_burst_window(self):
        config = SCENARIOS["burst"]
        trace = build_trace(config, seed=2)
        start = config.burst_start
        stop = config.burst_start + config.burst_duration
        inside = sum(1 for a in trace.arrivals if start <= a.offset < stop)
        outside = len(trace.arrivals) - inside
        window = config.burst_duration
        rest = config.horizon - window
        assert inside / window > (outside / rest if outside else 0.0)

    def test_tenants_round_robin_from_config(self):
        trace = build_trace(SCENARIOS["steady"], seed=2)
        assert {a.tenant for a in trace.arrivals} <= {"open", "capped"}


class TestRunScenario:
    def test_steady_serves_everything(self):
        run = run_scenario(tiny("t-steady"), seed=3)
        summary = scenario_summary(run)
        assert summary["outcomes"]["offered"] == len(run.trace.arrivals)
        assert summary["outcomes"]["errors"] == 0
        assert summary["accounting"]["consistent"] is True
        assert summary["latency"]["p50_seconds"] is not None
        # Honest latency: measured from the *scheduled* offset, so it is
        # never smaller than the dispatch-measured time and slip >= 0.
        for outcome in run.outcomes:
            assert outcome.latency_seconds >= (
                outcome.done_offset - outcome.send_offset) - 1e-9
            assert outcome.slip_seconds >= -1e-9

    def test_allshed_reports_null_percentiles(self):
        run = run_scenario(tiny("t-allshed", deadline=1e-6), seed=3)
        summary = scenario_summary(run)
        assert summary["outcomes"]["served"] == 0
        assert summary["outcomes"]["shed"] == summary["outcomes"]["offered"]
        assert summary["latency"]["served"] == 0
        assert summary["latency"]["p50_seconds"] is None
        assert summary["latency"]["p99_seconds"] is None
        assert summary["latency"]["max_seconds"] is None
        assert summary["accounting"]["consistent"] is True

    def test_capped_tenant_sheds_deterministically(self):
        run = run_scenario(tiny("t-capped", rate=40.0, capped_rate=3.0),
                           seed=3)
        summary = scenario_summary(run)
        assert summary["outcomes"]["shed_reasons"].get("tenant-rate", 0) > 0
        assert summary["accounting"]["consistent"] is True

    def test_replay_same_trace_classifies_identically(self):
        config = tiny("t-replay")
        trace = build_trace(config, seed=5)
        first = run_scenario(config, seed=5, trace=trace)
        second = run_scenario(config, seed=5, trace=trace)
        assert classify_outcomes(first.outcomes) == \
            classify_outcomes(second.outcomes)

    def test_replay_against_wrong_scene_raises(self):
        config = tiny("t-wrong")
        trace = build_trace(config, seed=5)
        with pytest.raises(ValueError, match="different scene"):
            run_scenario(config, seed=6, trace=trace)

    def test_reservations_release_during_replay(self):
        config = tiny("t-resv", reserve_fraction=0.5, lifetime_mean=0.2,
                      capacity=4.0, horizon=0.8)
        run = run_scenario(config, seed=7)
        summary = scenario_summary(run)
        assert summary["reservations"]["requested"] > 0
        assert summary["reservations"]["granted"] > 0
        assert summary["reservations"]["release_failures"] == 0
        assert summary["accounting"]["consistent"] is True

    def test_churn_during_traffic(self):
        config = tiny("t-churn", churn_ticks=2, horizon=0.8)
        run = run_scenario(config, seed=7)
        assert run.churn_ticks_applied == 2
        assert scenario_summary(run)["accounting"]["consistent"] is True

    def test_cluster_path(self):
        config = tiny("t-cluster", partitions=2)
        run = run_scenario(config, seed=3)
        summary = scenario_summary(run)
        assert summary["outcomes"]["served"] > 0
        assert summary["accounting"]["consistent"] is True

    def test_churn_through_cluster_rejected(self):
        config = tiny("t-bad", churn_ticks=1, partitions=2)
        with pytest.raises(ValueError, match="cluster"):
            run_scenario(config, seed=3)


class TestArtifacts:
    def test_write_scenario_artifacts(self, tmp_path):
        run = run_scenario(tiny("t-artifacts"), seed=3)
        paths = write_scenario_artifacts(run, tmp_path)
        csv_text = paths["requests_csv"].read_text()
        assert csv_text.splitlines()[0].startswith("index,tenant,workload")
        assert len(csv_text.splitlines()) == len(run.outcomes) + 1
        summary = json.loads(paths["summary_json"].read_text())
        assert summary["scenario"] == "t-artifacts"
        assert summary["schedule_slip"]["count"] == len(run.outcomes)

    def test_capacity_stamped_when_configured(self):
        hosting, _ = build_scene(tiny("t-cap", capacity=3.5), seed=1)
        node = next(iter(hosting.nodes()))
        assert hosting.available_capacity(node) == pytest.approx(3.5)


class TestCliLoadtest:
    def test_loadtest_named_scenario(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["loadtest", "--scenario", "allshed", "--seed", "3",
                     "--output-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "p50 n/a" in out
        combined = json.loads((tmp_path / "loadtest.json").read_text())
        assert combined["scenarios"]["allshed"]["latency"]["p50_seconds"] is None
        assert (tmp_path / "allshed" / "requests.csv").exists()

    def test_loadtest_list(self, capsys):
        from repro.cli import main

        assert main(["loadtest", "--list"]) == 0
        out = capsys.readouterr().out
        for name in DEFAULT_MATRIX:
            assert name in out

    def test_loadtest_record_requires_single_scenario(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["loadtest", "--record", str(tmp_path / "t.jsonl"),
                     "--scenario", "steady", "--scenario", "allshed",
                     "--output-dir", str(tmp_path)])
        assert code == 2

    def test_loadtest_rejects_unknown_scenario(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["loadtest", "--scenario", "nope",
                     "--output-dir", str(tmp_path)]) == 2
