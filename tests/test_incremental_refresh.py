"""The delta-aware recompile path: journal, filter patching, plan refresh.

The acceptance property of the incremental engine: **after any
journal-replayable mutation sequence, the patched artifacts are element
identical to a from-scratch rebuild** — same filter cells, same candidate
masks, same node-screening fallbacks, same visiting order — so a patched
plan is observationally indistinguishable from a freshly prepared one.
This suite drives that property with randomised attribute-churn sequences
(relevant and irrelevant attributes alike), plus unit coverage of the
mutation journal itself and of the plan-cache ``patched``/``recompiled``
refresh routing.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import SearchRequest
from repro.constraints import ConstraintExpression
from repro.core import (
    ECF,
    LNS,
    RWB,
    build_filters,
    clear_hosting_compile,
    compile_hosting,
    patch_filters,
)
from repro.graphs import MutationJournal
from repro.graphs.hosting import HostingNetwork
from repro.graphs.journal import EDGE_ATTRS, NODE_ATTRS
from repro.graphs.query import QueryNetwork
from repro.service import NetEmbedService, QuerySpec

WINDOW = ("rEdge.avgDelay >= vEdge.minDelay && "
          "rEdge.avgDelay <= vEdge.maxDelay")
UP = "rNode.up == true"


# --------------------------------------------------------------------------- #
# Workload + churn generators
# --------------------------------------------------------------------------- #

def build_workload(seed: int, with_node_constraint: bool):
    """A random embedding problem with churnable attributes."""
    rng = random.Random(seed)
    num_hosts = rng.randint(5, 10)
    hosting = HostingNetwork("hosting")
    for i in range(num_hosts):
        hosting.add_node(f"h{i}", up=True, cpuLoad=rng.uniform(0.0, 1.0))
    for i in range(num_hosts):
        for j in range(i + 1, num_hosts):
            if rng.random() < 0.55:
                attrs = {}
                if rng.random() < 0.85:   # some links lack the delay metric
                    attrs["avgDelay"] = rng.uniform(5.0, 60.0)
                hosting.add_edge(f"h{i}", f"h{j}", **attrs)

    num_query = rng.randint(2, 5)
    query = QueryNetwork("query")
    for i in range(num_query):
        query.add_node(f"q{i}")
    for i in range(1, num_query):
        low = rng.uniform(0.0, 30.0)
        query.add_edge(f"q{rng.randrange(i)}", f"q{i}",
                       minDelay=round(low, 3),
                       maxDelay=round(low + rng.uniform(5.0, 40.0), 3))
    constraint = ConstraintExpression(WINDOW)
    node_constraint = ConstraintExpression(UP) if with_node_constraint else None
    return query, hosting, constraint, node_constraint


def apply_attr_churn(hosting: HostingNetwork, seed: int, steps: int) -> None:
    """Random attribute-only mutations: relevant and irrelevant alike."""
    rng = random.Random(seed)
    edges = hosting.edges()
    nodes = hosting.nodes()
    for _ in range(steps):
        roll = rng.random()
        if edges and roll < 0.5:
            u, v = rng.choice(edges)
            hosting.update_edge(u, v, avgDelay=round(rng.uniform(1.0, 80.0), 3))
        elif edges and roll < 0.6:
            u, v = rng.choice(edges)
            # Irrelevant to the delay window: must be a no-op for the filters.
            hosting.update_edge(u, v, lossRate=round(rng.random(), 3))
        elif roll < 0.8:
            hosting.update_node(rng.choice(nodes), up=rng.random() < 0.7)
        else:
            # Irrelevant unless the node constraint reads it (it never does).
            hosting.update_node(rng.choice(nodes),
                                cpuLoad=round(rng.random(), 3))


def assert_filters_identical(patched, rebuilt):
    """Element-identity, the acceptance criterion of the patch path."""
    assert patched.match_masks == rebuilt.match_masks
    assert patched.non_match_masks == rebuilt.non_match_masks
    assert patched.node_candidate_masks == rebuilt.node_candidate_masks
    assert patched.node_allowed_masks == rebuilt.node_allowed_masks
    assert patched.entry_count == rebuilt.entry_count
    assert patched.cell_count == rebuilt.cell_count


# --------------------------------------------------------------------------- #
# The mutation journal
# --------------------------------------------------------------------------- #

class TestMutationJournal:
    def test_mutators_journal_kinds_and_attrs(self):
        net = HostingNetwork("n")
        net.add_node("a")
        net.add_node("b")
        net.add_edge("a", "b", avgDelay=10.0)
        net.update_node("a", up=False, cpuLoad=0.5)
        net.update_edge("a", "b", avgDelay=12.0)
        net.remove_edge("a", "b")
        kinds = [r.kind for r in net.mutation_journal.records()]
        assert kinds == ["node-added", "node-added", "edge-added",
                         "node-attrs", "edge-attrs", "edge-removed"]
        node_record = net.mutation_journal.records()[3]
        assert set(node_record.attrs) == {"up", "cpuLoad"}
        assert node_record.epoch == 4

    def test_delta_aggregates_and_classifies(self):
        net = HostingNetwork("n")
        for name in "abc":
            net.add_node(name)
        net.add_edge("a", "b")
        base = net.mutation_count
        net.update_edge("a", "b", avgDelay=5.0)
        net.update_node("c", up=False)
        delta = net.delta_since(base)
        assert not delta.structural and delta.attrs_only and not delta.empty
        assert delta.touched_nodes == {"c"}
        assert delta.touches_edge("b", "a")         # either orientation
        assert delta.touched_edge_attrs[("a", "b")] == {"avgDelay"}
        assert delta.touched_node_attrs["c"] == {"up"}

        net.remove_edge("a", "b")
        structural = net.delta_since(base)
        assert structural.structural

    def test_empty_delta_and_future_epoch(self):
        net = HostingNetwork("n")
        net.add_node("a")
        delta = net.delta_since(net.mutation_count)
        assert delta is not None and delta.empty
        assert net.delta_since(net.mutation_count + 5) is None

    def test_overflow_makes_old_deltas_unavailable(self):
        journal = MutationJournal(capacity=3)
        for epoch in range(1, 6):
            journal.record(epoch, NODE_ATTRS, (f"n{epoch}",), ("x",))
        assert len(journal) == 3
        assert journal.floor_epoch == 2
        assert journal.delta_since(1, 5) is None      # truncated past epoch 1
        delta = journal.delta_since(2, 5)
        assert delta is not None
        assert delta.touched_nodes == {"n3", "n4", "n5"}

    def test_pickled_network_ships_a_reset_journal(self):
        net = HostingNetwork("n")
        net.add_node("a")
        net.update_node("a", up=False)
        clone = pickle.loads(pickle.dumps(net))
        assert clone.mutation_count == net.mutation_count
        assert len(clone.mutation_journal) == 0
        # The clone cannot reconstruct deltas for epochs it never saw...
        assert clone.delta_since(0) is None
        # ...but its own future mutations journal normally.
        base = clone.mutation_count
        clone.update_node("a", up=True)
        assert clone.delta_since(base).touched_nodes == {"a"}

    def test_journal_capacity_validation(self):
        with pytest.raises(ValueError):
            MutationJournal(capacity=0)

    def test_edge_attr_records_both_orientations_match(self):
        journal = MutationJournal()
        journal.record(1, EDGE_ATTRS, ("u", "v"), ("avgDelay",))
        delta = journal.delta_since(0, 1)
        assert delta.touches_edge("u", "v") and delta.touches_edge("v", "u")
        assert not delta.touches_edge("u", "w")


# --------------------------------------------------------------------------- #
# Filter patch vs from-scratch rebuild (the acceptance property)
# --------------------------------------------------------------------------- #

class TestFilterPatchParity:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), with_node=st.booleans(),
           churn_seed=st.integers(0, 10_000), steps=st.integers(1, 25),
           record_non_matches=st.booleans())
    def test_patched_filters_equal_rebuilt_filters(self, seed, with_node,
                                                   churn_seed, steps,
                                                   record_non_matches):
        query, hosting, constraint, node_constraint = build_workload(
            seed, with_node)
        filters = build_filters(query, hosting, constraint, node_constraint,
                                record_non_matches=record_non_matches)
        epoch = hosting.mutation_count

        apply_attr_churn(hosting, churn_seed, steps)
        delta = hosting.delta_since(epoch)
        assert delta is not None and delta.attrs_only

        patched = patch_filters(filters, query, hosting, constraint,
                                node_constraint, delta=delta,
                                max_row_fraction=1.0)
        assert patched is not None
        rebuilt = build_filters(query, hosting, constraint, node_constraint,
                                record_non_matches=record_non_matches)
        assert_filters_identical(patched, rebuilt)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), churn_seed=st.integers(0, 10_000))
    def test_repeated_patching_does_not_drift(self, seed, churn_seed):
        """Patch-of-a-patch across several churn rounds stays identical."""
        query, hosting, constraint, node_constraint = build_workload(seed, True)
        filters = build_filters(query, hosting, constraint, node_constraint)
        epoch = hosting.mutation_count
        for round_index in range(4):
            apply_attr_churn(hosting, churn_seed + round_index, 5)
            delta = hosting.delta_since(epoch)
            filters = patch_filters(filters, query, hosting, constraint,
                                    node_constraint, delta=delta,
                                    max_row_fraction=1.0)
            assert filters is not None
            epoch = hosting.mutation_count
        rebuilt = build_filters(query, hosting, constraint, node_constraint)
        assert_filters_identical(filters, rebuilt)
        assert filters.patches >= 1

    def test_irrelevant_churn_is_a_no_op(self):
        """Mutations to attributes nothing reads return the input filters."""
        query, hosting, constraint, node_constraint = build_workload(3, False)
        filters = build_filters(query, hosting, constraint, node_constraint)
        epoch = hosting.mutation_count
        for node in hosting.nodes():
            hosting.update_node(node, cpuLoad=0.123)
        patched = patch_filters(filters, query, hosting, constraint,
                                node_constraint,
                                delta=hosting.delta_since(epoch))
        assert patched is filters   # no copy, no re-evaluation

    def test_patch_declines_structural_and_oversized_deltas(self):
        query, hosting, constraint, node_constraint = build_workload(4, True)
        filters = build_filters(query, hosting, constraint, node_constraint)
        epoch = hosting.mutation_count

        edges = hosting.edges()
        hosting.remove_edge(*edges[0])
        assert patch_filters(filters, query, hosting, constraint,
                             node_constraint,
                             delta=hosting.delta_since(epoch)) is None

        # Rebuild and jitter everything: the row fraction gate declines.
        filters = build_filters(query, hosting, constraint, node_constraint)
        epoch = hosting.mutation_count
        for u, v in hosting.edges():
            hosting.update_edge(u, v, avgDelay=1.0)
        assert patch_filters(filters, query, hosting, constraint,
                             node_constraint,
                             delta=hosting.delta_since(epoch),
                             max_row_fraction=0.1) is None

    def test_patch_never_mutates_the_input_filters(self):
        query, hosting, constraint, node_constraint = build_workload(5, True)
        filters = build_filters(query, hosting, constraint, node_constraint)
        epoch = hosting.mutation_count
        before = (dict(filters.match_masks), dict(filters.non_match_masks),
                  dict(filters.node_candidate_masks))
        apply_attr_churn(hosting, 7, 10)
        patched = patch_filters(filters, query, hosting, constraint,
                                node_constraint,
                                delta=hosting.delta_since(epoch),
                                max_row_fraction=1.0)
        assert patched is not None and patched is not filters
        assert (filters.match_masks, filters.non_match_masks,
                filters.node_candidate_masks) == before


class TestHostingCompilePatch:
    def test_compile_hosting_patches_in_place_for_attr_churn(self):
        _, hosting, constraint, _ = build_workload(6, False)
        compiled = compile_hosting(hosting)
        u, v = hosting.edges()[0]
        hosting.update_edge(u, v, avgDelay=42.5)
        again = compile_hosting(hosting)
        assert again is compiled            # patched, not rebuilt
        assert again.epoch == hosting.mutation_count

    def test_compile_hosting_rebuilds_on_structural_churn(self):
        _, hosting, _, _ = build_workload(6, False)
        compiled = compile_hosting(hosting)
        hosting.remove_edge(*hosting.edges()[0])
        again = compile_hosting(hosting)
        assert again is not compiled
        assert again.epoch == hosting.mutation_count

    def test_patched_columns_feed_the_vectorized_build(self):
        """A fresh vectorized build over a patched compile must agree with a
        build over a cold compile (the columns were patched correctly)."""
        query, hosting, constraint, node_constraint = build_workload(8, True)
        build_filters(query, hosting, constraint, node_constraint)  # warm memo
        apply_attr_churn(hosting, 9, 12)
        warm = build_filters(query, hosting, constraint, node_constraint)
        clear_hosting_compile(hosting)
        cold = build_filters(query, hosting, constraint, node_constraint)
        assert_filters_identical(warm, cold)


# --------------------------------------------------------------------------- #
# Plan-level refresh routing
# --------------------------------------------------------------------------- #

ALGORITHMS = [("ECF", lambda: ECF()), ("RWB", lambda: RWB()),
              ("LNS", lambda: LNS())]


@pytest.fixture
def patch_everything(monkeypatch):
    """Lift the cost-based row-fraction gate: these tests exercise patch
    *correctness* on deliberately tiny networks, where any delta exceeds the
    production threshold that keeps patching profitable at scale."""
    import repro.core.filters as filters_module
    monkeypatch.setattr(filters_module, "PATCH_ROW_FRACTION", 1.0)


class TestPlanRefreshRouting:
    @pytest.mark.parametrize("name,factory", ALGORITHMS,
                             ids=[a[0] for a in ALGORITHMS])
    def test_patched_plan_matches_fresh_prepare(self, name, factory,
                                                patch_everything):
        query, hosting, constraint, node_constraint = build_workload(11, True)
        request = SearchRequest.build(query, hosting, constraint=constraint,
                                      node_constraint=node_constraint,
                                      max_results=5)
        plan = factory().prepare(request)
        apply_attr_churn(hosting, 13, 6)
        refreshed = plan.refresh()
        assert refreshed.refresh_mode == "patched"
        assert not refreshed.stale
        rng = 1 if name == "RWB" else None
        fresh = factory().prepare(request)
        planned = refreshed.execute(rng=rng)
        rebuilt = fresh.execute(rng=rng)
        assert ([m.assignment for m in planned.mappings]
                == [m.assignment for m in rebuilt.mappings])
        assert planned.status == rebuilt.status
        for stat in ("nodes_expanded", "candidates_considered", "backtracks"):
            assert getattr(planned.stats, stat) == getattr(rebuilt.stats, stat)

    def test_refresh_on_a_fresh_plan_returns_self(self):
        query, hosting, constraint, _ = build_workload(12, False)
        plan = ECF().prepare(SearchRequest.build(query, hosting,
                                                 constraint=constraint))
        assert plan.refresh() is plan
        assert plan.refresh(incremental=False) is not plan

    def test_structural_churn_recompiles(self):
        query, hosting, constraint, _ = build_workload(12, False)
        plan = ECF().prepare(SearchRequest.build(query, hosting,
                                                 constraint=constraint))
        hosting.remove_edge(*hosting.edges()[0])
        refreshed = plan.refresh()
        assert refreshed.refresh_mode == "recompiled"
        assert not refreshed.stale

    def test_journal_overflow_recompiles(self):
        query, hosting, constraint, _ = build_workload(14, False)
        plan = ECF().prepare(SearchRequest.build(query, hosting,
                                                 constraint=constraint))
        u, v = hosting.edges()[0]
        for _ in range(hosting.mutation_journal.capacity + 1):
            hosting.update_edge(u, v, avgDelay=10.0)
        assert not plan.patchable
        refreshed = plan.refresh()
        assert refreshed.refresh_mode == "recompiled"

    def test_query_mutation_recompiles(self):
        query, hosting, constraint, _ = build_workload(15, False)
        plan = ECF().prepare(SearchRequest.build(query, hosting,
                                                 constraint=constraint))
        edge = query.edges()[0]
        query.update_edge(*edge, maxDelay=99.0)
        refreshed = plan.refresh()
        assert refreshed.refresh_mode == "recompiled"

    def test_infeasibility_flips_both_ways_under_patch(self, patch_everything):
        """Downing every host makes a patched plan infeasible; bringing the
        hosts back makes a later patch feasible again."""
        query, hosting, constraint, node_constraint = build_workload(16, True)
        request = SearchRequest.build(query, hosting, constraint=constraint,
                                      node_constraint=node_constraint)
        plan = ECF().prepare(request)
        for node in hosting.nodes():
            hosting.update_node(node, up=False)
        down = plan.refresh()
        assert down.refresh_mode == "patched"
        assert down.prepared.infeasible
        assert down.execute().mappings == []

        for node in hosting.nodes():
            hosting.update_node(node, up=True)
        back = down.refresh()
        assert back.refresh_mode == "patched"
        fresh = ECF().prepare(request)
        assert ([m.assignment for m in back.execute().mappings]
                == [m.assignment for m in fresh.execute().mappings])


# --------------------------------------------------------------------------- #
# Service plan-cache routing: patched vs recompiled statistics
# --------------------------------------------------------------------------- #

class TestServicePatchRouting:
    def _service_and_spec(self, seed=21):
        query, hosting, constraint, node_constraint = build_workload(seed, True)
        service = NetEmbedService(default_timeout=10.0)
        service.register_network(hosting, name="lab")
        spec = QuerySpec(query=query, constraint=constraint,
                         node_constraint=node_constraint, algorithm="ECF")
        return service, spec, hosting

    def test_sparse_tick_patches_instead_of_recompiling(self):
        service, spec, hosting = self._service_and_spec()
        service.submit(spec)
        u, v = hosting.edges()[0]
        hosting.update_edge(u, v, avgDelay=33.3)
        service.registry.touch("lab")
        service.submit(spec)
        stats = service.plans.stats()
        assert stats["patched"] == 1 and stats["recompiled"] == 0
        # The patched plan serves the new version from the cache afterwards.
        service.submit(spec)
        assert service.plans.stats()["hits"] >= 1

    def test_structural_tick_counts_a_recompile(self):
        service, spec, hosting = self._service_and_spec(seed=22)
        service.submit(spec)
        hosting.remove_edge(*hosting.edges()[0])
        service.registry.touch("lab")
        service.submit(spec)
        stats = service.plans.stats()
        assert stats["recompiled"] == 1 and stats["patched"] == 0

    def test_post_tick_results_match_a_fresh_search(self):
        service, spec, hosting = self._service_and_spec(seed=23)
        service.submit(spec)
        for _ in range(2):
            u, v = hosting.edges()[0]
            hosting.update_edge(u, v, avgDelay=50.0)
            service.registry.touch("lab")
            served = service.submit(spec)
            fresh = ECF().request(spec.to_request(hosting,
                                                  default_timeout=10.0))
            assert ([m.assignment for m in served.mappings]
                    == [m.assignment for m in fresh.mappings])

    def test_replaced_network_is_never_patched(self):
        """Re-registering a name must recompile against the new object, not
        patch the old object's plan."""
        service, spec, hosting = self._service_and_spec(seed=24)
        service.submit(spec)
        replacement = hosting.copy()
        service.register_network(replacement, name="lab")
        service.submit(spec)
        stats = service.plans.stats()
        assert stats["patched"] == 0
