"""End-to-end integration tests crossing module boundaries.

These exercise the realistic flows a NETEMBED user would run: GraphML in →
service → embeddings out; monitored models; reservations shrinking the
candidate space; the full experiment harness feeding the reporting layer.
"""

from __future__ import annotations

import pytest

from repro import (
    ECF,
    ConstraintExpression,
    NetEmbedService,
    QueryNetwork,
    is_valid_mapping,
    read_graphml,
    write_graphml,
)
from repro.analysis import aggregate_series, format_figure, run_workloads
from repro.analysis.experiments import default_algorithms
from repro.constraints.builder import (
    all_of,
    host_delay_within_query_window,
    node_attribute_binding,
)
from repro.extensions import best_mapping, total_delay_cost
from repro.service import MonitorConfig, NegotiationSession
from repro.workloads import (
    SuiteScale,
    build_subgraph_suite,
    planetlab_host,
    subgraph_query,
)


@pytest.fixture(scope="module")
def hosting():
    return planetlab_host(32, rng=77)


class TestGraphmlToServiceFlow:
    def test_full_pipeline(self, hosting, tmp_path):
        """GraphML file -> service registration -> query -> valid embeddings."""
        host_path = write_graphml(hosting, tmp_path / "planetlab.graphml")

        # The query also travels through GraphML, as a real client would send it.
        workload = subgraph_query(hosting, 6, rng=1)
        query_path = write_graphml(workload.query, tmp_path / "query.graphml")

        service = NetEmbedService(rng=5)
        service.register_network_from_graphml(host_path, name="planetlab")
        query = read_graphml(query_path, cls=QueryNetwork)

        response = service.embed(query, constraint=workload.constraint,
                                 algorithm="ECF", max_results=5)
        assert response.found
        reloaded_host = service.registry.get("planetlab")
        for mapping in response.mappings:
            assert is_valid_mapping(mapping, query, reloaded_host,
                                    workload.constraint)

    def test_os_binding_constraint_through_service(self, hosting):
        """A query with OS requirements only lands on hosts with that OS."""
        workload = subgraph_query(hosting, 4, rng=3)
        query = workload.query
        for node in query.nodes():
            query.update_node(node, osType="linux-2.6")
        constraint = ConstraintExpression(all_of(
            host_delay_within_query_window(),
            node_attribute_binding("osType", "vSource", "rSource"),
            node_attribute_binding("osType", "vTarget", "rTarget"),
        ))
        service = NetEmbedService()
        service.register_network(hosting)
        response = service.embed(query, constraint=constraint, algorithm="ECF",
                                 max_results=3)
        for mapping in response.mappings:
            for host in mapping.hosting_nodes():
                assert hosting.get_node_attr(host, "osType") == "linux-2.6"


class TestMonitoredServiceFlow:
    def test_node_failures_exclude_hosts(self, hosting):
        service = NetEmbedService(rng=2)
        service.register_network(hosting, name="pl")
        monitor = service.attach_monitor(
            "pl", config=MonitorConfig(failure_probability=0.3,
                                       recovery_probability=0.0), rng=11)
        monitor.tick()
        down = set(monitor.down_nodes())
        assert down, "expected some nodes to fail with probability 0.3"

        workload = subgraph_query(hosting, 5, rng=4)
        response = service.embed(workload.query, constraint=workload.constraint,
                                 node_constraint="rNode.up == true",
                                 algorithm="LNS", max_results=1)
        if response.found:
            assert not (set(response.first.hosting_nodes()) & down)

    def test_negotiation_after_monitor_shift(self, hosting):
        service = NetEmbedService(rng=2)
        service.register_network(hosting, name="pl")
        workload = subgraph_query(hosting, 5, slack=0.10, rng=9)
        # Jitter the delays so the tight windows may stop matching, then let
        # the negotiation session relax them until they match again.  Each
        # relaxation round widens every window by `relaxation_step` times its
        # width on both sides, so two rounds (±0.2·d on top of the ±0.1·d
        # window) are guaranteed to re-cover the ±20% monitor jitter.
        service.attach_monitor("pl", config=MonitorConfig(delay_jitter=0.2,
                                                          failure_probability=0.0),
                               rng=13).run(2)
        session = NegotiationSession(service, relaxation_step=1.0, max_rounds=5)
        outcome = session.negotiate(workload.query, constraint=workload.constraint,
                                    algorithm="ECF")
        assert outcome.succeeded


class TestReservationFlow:
    def test_capacity_shrinks_candidate_space_across_requests(self, hosting):
        for node in hosting.nodes():
            hosting.set_capacity(node, 1.0)
        service = NetEmbedService(rng=6)
        service.register_network(hosting, name="pl")

        from repro.service import CAPACITY_NODE_CONSTRAINT, with_default_demand

        first = subgraph_query(hosting, 5, rng=21)
        with_default_demand(first.query)
        response_a = service.embed(first.query, constraint=first.constraint,
                                   node_constraint=CAPACITY_NODE_CONSTRAINT,
                                   algorithm="ECF", max_results=1, reserve=True)
        assert response_a.found and response_a.reservation_id

        second = subgraph_query(hosting, 5, rng=22)
        with_default_demand(second.query)
        response_b = service.embed(second.query, constraint=second.constraint,
                                   node_constraint=CAPACITY_NODE_CONSTRAINT,
                                   algorithm="ECF", max_results=1, reserve=True)
        if response_b.found:
            # The second embedding cannot reuse any host held by the first.
            assert not (set(response_a.first.hosting_nodes())
                        & set(response_b.first.hosting_nodes()))


class TestOptimisationFlow:
    def test_min_delay_embedding_is_selected(self, hosting):
        workload = subgraph_query(hosting, 5, rng=31)
        result = ECF().search(workload.query, hosting, constraint=workload.constraint,
                              max_results=25)
        assert result.found
        best = best_mapping(result, workload.query, hosting, total_delay_cost)
        costs = [total_delay_cost(workload.query, hosting, m) for m in result.mappings]
        assert best.cost == pytest.approx(min(costs))


class TestHarnessToReportingFlow:
    def test_rows_aggregate_and_render(self, hosting):
        scale = SuiteScale(hosting_nodes=hosting.num_nodes, query_sizes=(4, 6),
                           queries_per_size=2)
        workloads = build_subgraph_suite(hosting, scale, rng=41)
        rows = run_workloads(hosting, workloads, default_algorithms(42), timeout=5,
                             max_results=1)
        series = aggregate_series(rows, value_field="total_ms")
        rendered = format_figure(series, title="integration smoke")
        assert "integration smoke" in rendered
        assert "ECF" in rendered and "LNS" in rendered
        sizes_in_series = {row["size"] for row in series}
        assert sizes_in_series == {4, 6}
