"""Kernel backend parity: compiled search loops vs. the reference engine.

The compiled ECF/RWB kernels (``repro.core.kernel``) must be
*byte-identical* to the legacy explicit-stack/recursive loops: same mapping
streams in the same dict-key order, same ``SearchStats`` counters, under
result caps, chunk pauses, pickling and sharded execution.  The legacy
engine — reachable via ``REPRO_KERNEL=legacy`` — is the oracle here, just
as the set-semantics reference is the oracle for the bitset engine.
"""

from __future__ import annotations

import random
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import SearchRequest
from repro.api.request import Budget
from repro.constraints import ConstraintExpression
from repro.core import ECF, RWB
from repro.core import kernel
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork

WINDOW = ConstraintExpression(
    "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")


def random_workload(seed: int, min_hosts: int = 6, max_hosts: int = 14):
    """A random embedding problem with delay-window constraints."""
    rng = random.Random(seed)
    num_hosts = rng.randint(min_hosts, max_hosts)
    hosting = HostingNetwork("hosting")
    for i in range(num_hosts):
        hosting.add_node(f"h{i}", name=f"h{i}",
                         osType=rng.choice(["linux", "bsd"]))
    for i in range(num_hosts):
        for j in range(i + 1, num_hosts):
            if rng.random() < 0.45:
                hosting.add_edge(f"h{i}", f"h{j}",
                                 avgDelay=rng.uniform(5.0, 60.0))
    query = QueryNetwork("query")
    num_query = rng.randint(2, 5)
    for i in range(num_query):
        query.add_node(f"q{i}")
    for i in range(num_query - 1):
        query.add_edge(f"q{i}", f"q{i + 1}",
                       minDelay=0.0, maxDelay=rng.uniform(30.0, 70.0))
    if num_query > 2 and rng.random() < 0.5:
        query.add_edge("q0", f"q{num_query - 1}",
                       minDelay=0.0, maxDelay=rng.uniform(30.0, 70.0))
    return query, hosting


def observables(result):
    """Mapping stream (with key order) + search counters."""
    return (
        [list(m.as_dict().items()) for m in result.mappings],
        result.status,
        result.timed_out,
        result.truncated,
        result.stats.nodes_expanded,
        result.stats.candidates_considered,
        result.stats.backtracks,
        result.stats.constraint_evaluations,
    )


def run(name: str, query, hosting, backend: str, seed: int = 0,
        cap=None, parallelism=None):
    budget = Budget(max_results=cap) if cap else (
        Budget(max_results=10 ** 6) if name == "RWB" else Budget())
    request = SearchRequest.build(query, hosting, constraint=WINDOW,
                                  budget=budget)
    algo = RWB() if name == "RWB" else ECF()
    rng = seed if name == "RWB" else None
    with kernel.forced(backend):
        plan = algo.prepare(request)
        if parallelism:
            return plan.execute(parallelism=parallelism, rng=rng)
        return plan.execute(rng=rng)


# --------------------------------------------------------------------------- #
# Randomized stream/counter parity
# --------------------------------------------------------------------------- #

class TestKernelStreamParity:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           name=st.sampled_from(["ECF", "RWB"]))
    def test_random_workloads(self, seed, name):
        query, hosting = random_workload(seed)
        legacy = run(name, query, hosting, "legacy", seed=seed)
        fast = run(name, query, hosting, "python", seed=seed)
        assert observables(legacy) == observables(fast)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           cap=st.integers(min_value=1, max_value=5),
           name=st.sampled_from(["ECF", "RWB"]))
    def test_result_cap_truncation(self, seed, cap, name):
        """Caps must stop the kernel at exactly the capping leaf."""
        query, hosting = random_workload(seed)
        legacy = run(name, query, hosting, "legacy", seed=seed, cap=cap)
        fast = run(name, query, hosting, "python", seed=seed, cap=cap)
        assert observables(legacy) == observables(fast)

    def test_chunk_pause_resume_is_invisible(self, monkeypatch):
        """Tiny chunk budgets force pauses mid-search; results can't change."""
        query, hosting = random_workload(42, min_hosts=10, max_hosts=10)
        baseline = run("ECF", query, hosting, "python")
        monkeypatch.setattr(kernel, "CHUNK_STEPS", 3)
        monkeypatch.setattr(kernel, "CHUNK_LEAVES", 1)
        chunked = run("ECF", query, hosting, "python")
        assert observables(baseline) == observables(chunked)
        legacy = run("ECF", query, hosting, "legacy")
        assert observables(legacy) == observables(chunked)

    def test_describe_reports_kernel(self):
        query, hosting = random_workload(3)
        request = SearchRequest.build(query, hosting, constraint=WINDOW)
        plan = ECF().prepare(request)
        assert plan.describe()["kernel"] == kernel.active_backend()


# --------------------------------------------------------------------------- #
# Sharded execution (process and thread backends)
# --------------------------------------------------------------------------- #

class TestShardedKernelParity:
    @pytest.mark.parametrize("name", ["ECF", "RWB"])
    def test_process_shards_match_serial(self, name):
        query, hosting = random_workload(11, min_hosts=10, max_hosts=12)
        serial = run(name, query, hosting, "python", seed=5)
        sharded = run(name, query, hosting, "python", seed=5, parallelism=2)
        assert observables(serial) == observables(sharded)

    @pytest.mark.parametrize("name", ["ECF", "RWB"])
    def test_thread_shards_match_serial(self, name, monkeypatch):
        from repro.core import parallel

        monkeypatch.setenv("REPRO_SHARD_BACKEND", "thread")
        assert parallel.shard_backend() == "thread"
        pool = parallel.make_pool(2)
        from concurrent.futures import ThreadPoolExecutor

        assert isinstance(pool, ThreadPoolExecutor)
        try:
            query, hosting = random_workload(23, min_hosts=10, max_hosts=12)
            budget = Budget(max_results=10 ** 6) if name == "RWB" else Budget()
            request = SearchRequest.build(query, hosting, constraint=WINDOW,
                                          budget=budget)
            algo = RWB() if name == "RWB" else ECF()
            rng = 5 if name == "RWB" else None
            serial = algo.prepare(request).execute(rng=rng)
            sharded = algo.prepare(request).execute(parallelism=2, pool=pool,
                                                    rng=rng)
            assert observables(serial) == observables(sharded)
            assert not parallel._INPROC_GROUPS  # popped when the run ended
        finally:
            pool.shutdown()

    def test_invalid_shard_backend_rejected(self, monkeypatch):
        from repro.core import parallel

        monkeypatch.setenv("REPRO_SHARD_BACKEND", "fibers")
        with pytest.raises(ValueError):
            parallel.shard_backend()


# --------------------------------------------------------------------------- #
# Backend selection
# --------------------------------------------------------------------------- #

class TestBackendSelection:
    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "legacy")
        assert kernel._init_from_env() == "legacy"
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert kernel._init_from_env() == "python"
        monkeypatch.delenv("REPRO_KERNEL")
        assert kernel._init_from_env() in ("python", "numba")

    def test_invalid_env_warns_and_uses_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "fortran")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = kernel._init_from_env()
        assert backend in ("python", "numba")
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)

    def test_forced_restores_previous_backend(self):
        before = kernel.active_backend()
        with kernel.forced("legacy"):
            assert kernel.active_backend() == "legacy"
        assert kernel.active_backend() == before

    def test_require_backend(self):
        kernel.require_backend(kernel.active_backend())
        with pytest.raises(RuntimeError):
            with kernel.forced("legacy"):
                kernel.require_backend("numba")

    @pytest.mark.skipif(kernel.HAVE_NUMBA, reason="numba is installed")
    def test_numba_request_without_numba_warns_and_falls_back(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with kernel.forced("numba"):
                assert kernel.active_backend() == "python"
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)

    def test_legacy_backend_skips_plan(self):
        from repro.core import build_filters
        from repro.core.base import placed_neighbor_plan

        query, hosting = random_workload(3)
        filters = build_filters(query, hosting, WINDOW, None)
        order = sorted(query.nodes(), key=str)
        prior = placed_neighbor_plan(query, order)
        with kernel.forced("legacy"):
            assert kernel.plan_for(filters, order, prior) is None
        with kernel.forced("python"):
            assert kernel.plan_for(filters, order, prior) is not None

    def test_plan_cache_invalidation_on_order_change(self):
        from repro.core import build_filters
        from repro.core.base import placed_neighbor_plan

        query, hosting = random_workload(7)
        filters = build_filters(query, hosting, WINDOW, None)
        order = sorted(query.nodes(), key=str)
        prior = placed_neighbor_plan(query, order)
        with kernel.forced("python"):
            first = kernel.plan_for(filters, order, prior)
            assert kernel.plan_for(filters, order, prior) is first  # cached
            reordered = list(reversed(order))
            re_prior = placed_neighbor_plan(query, reordered)
            second = kernel.plan_for(filters, reordered, re_prior)
            assert second is not first
            assert second.order == tuple(reordered)

    def test_plan_cache_invalidation_on_prior_change(self):
        from repro.core import build_filters
        from repro.core.base import placed_neighbor_plan

        query, hosting = random_workload(7)
        filters = build_filters(query, hosting, WINDOW, None)
        order = sorted(query.nodes(), key=str)
        prior = placed_neighbor_plan(query, order)
        assert any(prior)   # the workload has placed-neighbour slots
        with kernel.forced("python"):
            first = kernel.plan_for(filters, order, prior)
            # Same order, different prior: the cached plan's cell tables
            # would be stale — the cache must miss.
            blank = [tuple()] * len(order)
            second = kernel.plan_for(filters, order, blank)
            assert second is not first
            assert second.prior == tuple(blank)


# --------------------------------------------------------------------------- #
# Patched filters keep their word tables fresh
# --------------------------------------------------------------------------- #

class TestPatchedWordParity:
    def test_patch_carries_word_tables(self):
        from repro.core import build_filters
        from repro.core.filters import patch_filters

        query, hosting = random_workload(9, min_hosts=8, max_hosts=8)
        filters = build_filters(query, hosting, WINDOW, None)
        base_words = filters.words()
        epoch = hosting.mutation_count
        edges = list(hosting.edges())
        u, v = edges[0][0], edges[0][1]
        hosting.update_edge(u, v, avgDelay=1000.0)
        delta = hosting.delta_since(epoch)
        assert delta is not None and delta.attrs_only
        patched = patch_filters(filters, query, hosting, WINDOW, None,
                                delta=delta, max_row_fraction=1.0)
        if patched is None:
            pytest.skip("patch fell back to rebuild on this workload")
        words = patched.words()
        assert words is not base_words
        assert words.match.to_masks() == patched.match_masks
        assert words.non_match.to_masks() == patched.non_match_masks
        assert words.node_candidates.to_masks() == patched.node_candidate_masks

    @staticmethod
    def _reorder_workload(flip: bool):
        """Six hosts where h0's only in-window edge swaps under churn."""
        in_delay, out_delay = 10.0, 1000.0
        if flip:
            in_delay, out_delay = out_delay, in_delay
        hosting = HostingNetwork("hosting")
        for i in range(6):
            hosting.add_node(f"h{i}", name=f"h{i}", osType="linux")
        hosting.add_edge("h0", "h1", avgDelay=in_delay)
        hosting.add_edge("h0", "h2", avgDelay=out_delay)
        hosting.add_edge("h1", "h2", avgDelay=10.0)
        hosting.add_edge("h2", "h3", avgDelay=10.0)
        hosting.add_edge("h3", "h4", avgDelay=10.0)
        hosting.add_edge("h4", "h5", avgDelay=10.0)
        query = QueryNetwork("query")
        query.add_node("q0")
        query.add_node("q1")
        query.add_edge("q0", "q1", minDelay=5.0, maxDelay=30.0)
        return query, hosting

    def test_patch_reorder_keeps_word_rows_aligned(self):
        # A patch that empties a cell deletes its key; a later row in the
        # SAME patch can re-set the cell, re-inserting the key at the end
        # of the dict — identical key set, different enumeration order.
        # KernelPlan assigns kernel row ids from dict enumeration order, so
        # the carried word table must follow the new order exactly or the
        # numba backend intersects the wrong match masks.
        from repro.core import build_filters
        from repro.core.filters import patch_filters

        reordered_any = False
        for flip in (False, True):
            query, hosting = self._reorder_workload(flip)
            filters = build_filters(query, hosting, WINDOW, None)
            filters.words()     # materialise so the patch carries tables
            base_order = list(filters.match_masks)
            epoch = hosting.mutation_count
            # Swap which h0 edge satisfies the window: h0's cells empty
            # under one touched row and re-fill under the other.
            hosting.update_edge("h0", "h1",
                                avgDelay=1000.0 if not flip else 10.0)
            hosting.update_edge("h0", "h2",
                                avgDelay=10.0 if not flip else 1000.0)
            delta = hosting.delta_since(epoch)
            assert delta is not None and delta.attrs_only
            patched = patch_filters(filters, query, hosting, WINDOW, None,
                                    delta=delta, max_row_fraction=1.0)
            assert patched is not None
            reordered_any |= list(patched.match_masks) != base_order
            words = patched.words()
            assert tuple(words.match.keys) == tuple(patched.match_masks)
            assert (list(words.match.to_masks().items())
                    == list(patched.match_masks.items()))
            assert (list(words.non_match.to_masks().items())
                    == list(patched.non_match_masks.items()))
            rebuilt = build_filters(query, hosting, WINDOW, None)
            assert patched.match_masks == rebuilt.match_masks
            assert patched.node_candidate_masks == rebuilt.node_candidate_masks
        assert reordered_any    # the churn really moved a key's position
