"""The word-array mask backing: encoding, tables, pickling, boundaries.

The kernel refactor re-backs every ``FilterMatrices`` mask as a numpy
``uint64`` word array behind the existing accessor API.  This suite pins
the encoding itself (bit *i* lives in word ``i // 64``), the boundary
cases the word width introduces (exactly 64 hosts, 65, multiples of 64,
all-zero and all-one words, removals that empty a trailing word), and the
pickling contract: shipped word tables are private copies, never views
aliasing the parent's buffers, and compiled-kernel handles never travel.
"""

from __future__ import annotations

import pickle
import random
import warnings

import pytest

from repro.constraints import ConstraintExpression
from repro.constraints.vectorizer import HAVE_NUMPY, np
from repro.core import ECF, build_filters
from repro.core import kernel
from repro.core.indexing import WORD_BITS, word_count
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork

if HAVE_NUMPY:
    from repro.core.words import (WordTable, mask_to_words, pack_masks,
                                  unpack_masks, words_to_mask)

pytestmark = pytest.mark.skipif(not HAVE_NUMPY,
                                reason="word arrays require numpy")

WINDOW = ConstraintExpression(
    "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay")


# --------------------------------------------------------------------------- #
# Encoding round-trips
# --------------------------------------------------------------------------- #

class TestWordEncoding:
    @pytest.mark.parametrize("num_bits", [1, 63, 64, 65, 128, 130])
    def test_round_trip_structured(self, num_bits):
        nw = word_count(num_bits)
        masks = [
            0,                           # all-zero words
            (1 << num_bits) - 1,         # all-one (up to width)
            1,                           # lowest bit
            1 << (num_bits - 1),         # highest bit
        ]
        if num_bits > WORD_BITS:
            masks += [1 << 63, 1 << 64, (1 << 64) | 1]  # word-boundary bits
        for mask in masks:
            row = mask_to_words(mask, nw)
            assert row.shape == (nw,)
            assert row.dtype == np.uint64
            assert words_to_mask(row) == mask

    def test_round_trip_random(self):
        rng = random.Random(7)
        for num_bits in (64, 65, 127, 128, 192, 300):
            nw = word_count(num_bits)
            for _ in range(50):
                mask = rng.getrandbits(num_bits)
                assert words_to_mask(mask_to_words(mask, nw)) == mask

    def test_bit_position_convention(self):
        # Bit i lives in word i // 64 at in-word position i % 64 — the
        # little-endian layout the compiled kernels assume.
        row = mask_to_words(1 << 70, word_count(128))
        assert row[0] == 0
        assert int(row[1]) == 1 << (70 - 64)

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            mask_to_words(-1, 1)

    def test_too_wide_mask_rejected(self):
        with pytest.raises(OverflowError):
            mask_to_words(1 << 64, 1)

    def test_pack_unpack(self):
        masks = {"a": 0, "b": (1 << 65) | 3, "c": 1 << 64}
        words = pack_masks(masks.values(), word_count(66))
        assert words.shape == (3, 2)
        assert unpack_masks(words) == list(masks.values())

    def test_pack_empty(self):
        words = pack_masks([], word_count(10))
        assert words.shape == (0, 1)
        assert unpack_masks(words) == []


class TestWordTable:
    def test_round_trip_preserves_zero_masks_and_order(self):
        masks = {("q0", "h1"): 5, ("q1", "h0"): 0, ("q2", "h2"): 1 << 64}
        table = WordTable.from_masks(masks, num_bits=65)
        assert table.to_masks() == masks
        assert list(table.to_masks()) == list(masks)  # insertion order kept
        assert table.mask_of(("q1", "h0")) == 0
        assert table.row_of(("missing",)) == -1

    def test_updated_rewrites_rows_in_place(self):
        masks = {"a": 1, "b": 2, "c": 3}
        table = WordTable.from_masks(masks, num_bits=8)
        masks2 = {"a": 1, "b": 7, "c": 3}
        patched = table.updated(masks2, touched={"b"})
        assert patched.to_masks() == masks2
        assert table.to_masks() == masks  # original untouched

    def test_updated_key_set_change_falls_back_to_rebuild(self):
        table = WordTable.from_masks({"a": 1, "b": 2}, num_bits=8)
        patched = table.updated({"a": 1, "b": 2, "c": 4}, touched={"c"})
        assert patched.to_masks() == {"a": 1, "b": 2, "c": 4}

    def test_updated_key_reorder_falls_back_to_rebuild(self):
        # A patch can empty a cell (its key is deleted) and re-set it later
        # in the same pass, re-inserting the key at the end of the dict:
        # identical key *set*, different order.  Row ids downstream
        # (KernelPlan) come from dict enumeration order, so the fast path
        # must rebuild rather than carry the stale row order.
        table = WordTable.from_masks({"a": 1, "b": 2, "c": 3}, num_bits=8)
        reordered = {"a": 1, "c": 3, "b": 4}   # "b" deleted, re-set at end
        patched = table.updated(reordered, touched={"b"})
        assert list(patched.to_masks()) == ["a", "c", "b"]
        assert patched.to_masks() == reordered
        assert [patched.row_of(k) for k in reordered] == [0, 1, 2]

    def test_pickle_copies_storage(self):
        table = WordTable.from_masks({"a": 3, "b": 1 << 64}, num_bits=70)
        clone = pickle.loads(pickle.dumps(table))
        assert clone.to_masks() == table.to_masks()
        assert not np.shares_memory(clone.words, table.words)


# --------------------------------------------------------------------------- #
# Workload helpers
# --------------------------------------------------------------------------- #

def ring_workload(num_hosts: int, num_query: int = 3):
    """A hosting ring of *num_hosts* nodes and a path query over it."""
    hosting = HostingNetwork(f"ring-{num_hosts}")
    for i in range(num_hosts):
        hosting.add_node(f"h{i}", name=f"h{i}", osType="linux")
    for i in range(num_hosts):
        hosting.add_edge(f"h{i}", f"h{(i + 1) % num_hosts}",
                         avgDelay=10.0 + (i % 5))
    query = QueryNetwork("path")
    for i in range(num_query):
        query.add_node(f"q{i}")
    for i in range(num_query - 1):
        query.add_edge(f"q{i}", f"q{i + 1}", minDelay=5.0, maxDelay=30.0)
    return query, hosting


def search_signature(result):
    """Everything the byte-identity contract covers, as a comparable value."""
    return (
        [list(m.as_dict().items()) for m in result.mappings],
        result.stats.nodes_expanded,
        result.stats.candidates_considered,
        result.stats.backtracks,
        result.stats.constraint_evaluations,
    )


def ecf_search(query, hosting, backend):
    with kernel.forced(backend):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return ECF().search(query, hosting, constraint=WINDOW)


# --------------------------------------------------------------------------- #
# Boundary cases around the 64-bit word width
# --------------------------------------------------------------------------- #

class TestWordBoundaries:
    @pytest.mark.parametrize("num_hosts", [63, 64, 65, 128])
    def test_kernel_matches_legacy_at_boundary(self, num_hosts):
        query, hosting = ring_workload(num_hosts)
        legacy = ecf_search(query, hosting, "legacy")
        fast = ecf_search(query, hosting, "python")
        assert search_signature(legacy) == search_signature(fast)
        assert legacy.mappings  # the workload is feasible, not vacuous

    @pytest.mark.parametrize("num_hosts", [64, 65])
    def test_filter_words_round_trip_at_boundary(self, num_hosts):
        query, hosting = ring_workload(num_hosts)
        filters = build_filters(query, hosting, WINDOW, None)
        words = filters.words()
        assert words.match.num_words == word_count(num_hosts)
        assert words.match.to_masks() == filters.match_masks
        assert words.node_candidates.to_masks() == filters.node_candidate_masks

    def test_all_one_and_all_zero_words(self):
        # A trivially-true constraint makes every candidate mask all-ones
        # over a 64-host clique row; an unsatisfiable one makes them zero.
        query, hosting = ring_workload(64)
        always = build_filters(query, hosting,
                               ConstraintExpression.always_true(), None)
        full = (1 << 64) - 1
        assert any(mask == full
                   for mask in always.node_candidate_masks.values()) or all(
            words_to_mask(mask_to_words(mask, 1)) == mask
            for mask in always.node_candidate_masks.values())
        never = build_filters(
            query, hosting,
            ConstraintExpression("rEdge.avgDelay >= 1000.0"), None)
        assert all(mask == 0 for mask in never.match_masks.values())
        # Both extremes survive the word round-trip.
        for filters in (always, never):
            assert filters.words().match.to_masks() == filters.match_masks

    def test_node_removal_empties_trailing_word(self):
        # 65 hosts: h64 is alone in the second word.  Remove it and rebuild;
        # the shrunken table must stay consistent with the kernel search.
        query, hosting = ring_workload(65)
        before = ecf_search(query, hosting, "python")
        assert before.mappings
        hosting.remove_node("h64")
        hosting.add_edge("h63", "h0", avgDelay=10.0)
        filters = build_filters(query, hosting, WINDOW, None)
        assert filters.words().match.num_words == word_count(64)
        legacy = ecf_search(query, hosting, "legacy")
        fast = ecf_search(query, hosting, "python")
        assert search_signature(legacy) == search_signature(fast)


# --------------------------------------------------------------------------- #
# Pickling: no aliasing, no compiled handles
# --------------------------------------------------------------------------- #

class TestPickleHygiene:
    def test_filters_round_trip(self):
        query, hosting = ring_workload(65)
        filters = build_filters(query, hosting, WINDOW, None)
        filters.words()  # populate the cache that __getstate__ must strip
        clone = pickle.loads(pickle.dumps(filters))
        assert clone.match_masks == filters.match_masks
        assert clone.non_match_masks == filters.non_match_masks
        assert clone.node_candidate_masks == filters.node_candidate_masks
        assert clone.node_allowed_masks == filters.node_allowed_masks

    def test_filters_pickle_shares_no_memory(self):
        query, hosting = ring_workload(65)
        filters = build_filters(query, hosting, WINDOW, None)
        parent_words = filters.words()
        clone = pickle.loads(pickle.dumps(filters))
        clone_words = clone.words()
        assert not np.shares_memory(parent_words.match.words,
                                    clone_words.match.words)
        assert not np.shares_memory(parent_words.node_candidates.words,
                                    clone_words.node_candidates.words)

    def test_filters_pickle_drops_kernel_plan(self):
        from repro.core.base import placed_neighbor_plan

        query, hosting = ring_workload(24)
        filters = build_filters(query, hosting, WINDOW, None)
        order = sorted(query.nodes(), key=str)
        with kernel.forced("python"):
            plan = kernel.plan_for(filters, order,
                                   placed_neighbor_plan(query, order))
        assert plan is not None
        assert getattr(filters, "_kernel_plan", None) is plan
        clone = pickle.loads(pickle.dumps(filters))
        assert getattr(clone, "_kernel_plan", None) is None

    def test_network_pickle_drops_derived_caches(self):
        query, hosting = ring_workload(24)
        build_filters(query, hosting, WINDOW, None)  # memoises the compile
        assert getattr(hosting, "_hosting_compile", None) is not None
        clone = pickle.loads(pickle.dumps(hosting))
        assert getattr(clone, "_hosting_compile", None) is None

    def test_register_derived_cache_extends_strip_list(self):
        from repro.graphs.network import Network

        original = Network._DERIVED_CACHE_ATTRS
        try:
            Network.register_derived_cache("_test_cache_attr")
            assert "_test_cache_attr" in Network._DERIVED_CACHE_ATTRS
            Network.register_derived_cache("_test_cache_attr")  # idempotent
            assert Network._DERIVED_CACHE_ATTRS.count("_test_cache_attr") == 1
            query, hosting = ring_workload(6)
            hosting._test_cache_attr = object()
            clone = pickle.loads(pickle.dumps(hosting))
            assert getattr(clone, "_test_cache_attr", None) is None
        finally:
            Network._DERIVED_CACHE_ATTRS = original

    def test_prepared_search_round_trip(self):
        from repro.api import SearchRequest

        query, hosting = ring_workload(65)
        request = SearchRequest.build(query, hosting, constraint=WINDOW)
        plan = ECF().prepare(request)
        prepared = plan.prepared
        clone = pickle.loads(pickle.dumps(prepared))
        assert clone.allowed_masks == prepared.allowed_masks
        assert clone.adjacency_masks == prepared.adjacency_masks
        assert clone.order == prepared.order
