"""Budget, deadline and failure semantics of the sharded parallel engine.

Three contracts beyond stream parity (tests/test_parallel_parity.py):

* a run whose shards hit the shared wall-clock deadline surfaces the same
  budget-exhaustion accounting as serial — ``timed_out``, status
  classification and ``proved_infeasible`` all agree;
* result caps are enforced across shards exactly as serial enforces them
  (``truncated`` + the stream cut at the same mapping);
* exceptions raised inside a worker process — including
  :class:`~repro.core.plan.PlanInvalidatedError` — propagate to the caller
  with their original type intact.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.api import Budget, SearchRequest
from repro.core import ECF, LNS, RWB, PlanInvalidatedError, ResultStatus
from repro.core.parallel import split_contiguous
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork

WINDOW = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"

#: Worker-side classes defined in this test module pickle by reference,
#: which only resolves in workers that inherit the parent's modules — i.e.
#: when the platform's default start method is fork (shard pools follow the
#: platform default).
HAVE_FORK = multiprocessing.get_start_method(allow_none=True) in (None, "fork") \
    and "fork" in multiprocessing.get_all_start_methods()


def dense_workload(num_hosts: int = 14, num_query: int = 5, seed: int = 2):
    """A workload big enough that an expired deadline always fires first."""
    rng = random.Random(seed)
    hosting = HostingNetwork("hosting")
    for i in range(num_hosts):
        hosting.add_node(f"h{i}", name=f"h{i}")
    for i in range(num_hosts):
        for j in range(i + 1, num_hosts):
            hosting.add_edge(f"h{i}", f"h{j}", avgDelay=rng.uniform(5.0, 60.0))
    query = QueryNetwork("query")
    for i in range(num_query):
        query.add_node(f"q{i}")
    for i in range(num_query - 1):
        query.add_edge(f"q{i}", f"q{i + 1}", minDelay=0.0, maxDelay=70.0)
    return query, hosting


@pytest.mark.parametrize("name,factory", [
    ("ECF", ECF), ("RWB", RWB), ("LNS", LNS)])
def test_expired_deadline_classifies_like_serial(name, factory):
    """Shards hitting the shared deadline surface serial's exhaustion state."""
    query, hosting = dense_workload()
    request = SearchRequest.build(query, hosting, constraint=WINDOW)
    plan = factory().prepare(request)
    # The budget is exhausted before any shard (or the serial loop) can try
    # a single candidate, so both runs are deterministic.
    budget = Budget(timeout=1e-9)
    serial = plan.execute(budget=budget)
    parallel = plan.refresh().execute(budget=budget, parallelism=4)
    for result in (serial, parallel):
        assert result.timed_out is True
        assert result.truncated is False
        assert result.status is ResultStatus.INCONCLUSIVE
        assert result.count == 0
        assert result.proved_infeasible is False


def test_generous_deadline_never_times_out_under_sharding():
    """The wall-clock budget is shared, not divided: N shards under one
    generous deadline must not each burn a slice of it."""
    query, hosting = dense_workload(num_hosts=8, num_query=3)
    request = SearchRequest.build(query, hosting, constraint=WINDOW)
    result = ECF().prepare(request).execute(
        budget=Budget(timeout=60.0), parallelism=7)
    assert result.timed_out is False
    assert result.status is ResultStatus.COMPLETE


@pytest.mark.parametrize("cap", [1, 3, 17])
def test_result_cap_accounting_matches_serial(cap):
    query, hosting = dense_workload(num_hosts=9, num_query=3)
    request = SearchRequest.build(query, hosting, constraint=WINDOW)
    plan = ECF().prepare(request)
    serial = plan.execute(budget=Budget(max_results=cap))
    parallel = plan.execute(budget=Budget(max_results=cap), parallelism=4)
    assert [m.as_dict() for m in parallel.mappings] == \
        [m.as_dict() for m in serial.mappings]
    assert parallel.truncated is serial.truncated
    assert parallel.timed_out is serial.timed_out
    assert parallel.status is serial.status


def test_stale_plan_raises_before_any_shard_runs():
    query, hosting = dense_workload(num_hosts=7, num_query=3)
    request = SearchRequest.build(query, hosting, constraint=WINDOW)
    plan = ECF().prepare(request)
    hosting.update_node("h0", cpuLoad=0.9)
    with pytest.raises(PlanInvalidatedError):
        plan.execute(parallelism=4)


class InvalidatingECF(ECF):
    """An ECF whose shards report staleness from inside the worker.

    Simulates the race the real engine cannot reproduce on demand (worker
    memory is a fork-time snapshot): what matters is that the exception
    type crosses the process boundary intact.
    """

    def _run_shard(self, context, prepared, spec):
        raise PlanInvalidatedError("model mutated under a running shard")


class CrashingECF(ECF):
    """An ECF whose shards raise an arbitrary application error."""

    def _run_shard(self, context, prepared, spec):
        raise ValueError("constraint evaluation exploded in a worker")


@pytest.mark.skipif(not HAVE_FORK,
                    reason="worker-side classes require the fork start method")
@pytest.mark.parametrize("algorithm_cls,expected", [
    (InvalidatingECF, PlanInvalidatedError),
    (CrashingECF, ValueError),
])
def test_worker_exceptions_propagate_intact(algorithm_cls, expected):
    query, hosting = dense_workload(num_hosts=7, num_query=3)
    request = SearchRequest.build(query, hosting, constraint=WINDOW)
    plan = algorithm_cls().prepare(request)
    with pytest.raises(expected):
        plan.execute(parallelism=2)


def _break_pool(pool) -> None:
    """Kill a pool's worker and wait for the executor to notice."""
    import os
    import time

    try:
        pool.submit(os._exit, 13)
    except Exception:
        pass
    for _ in range(200):
        if getattr(pool, "_broken", False):
            return
        try:
            pool.submit(os.getpid).result(timeout=0.5)
        except Exception:
            return
        time.sleep(0.02)


@pytest.mark.skipif(not HAVE_FORK,
                    reason="deterministic worker kill needs the fork start method")
def test_broken_pool_degrades_to_byte_identical_serial_run():
    """A pool that breaks before any commit falls back to in-process specs."""
    from repro.core import make_pool

    query, hosting = dense_workload(num_hosts=8, num_query=3)
    request = SearchRequest.build(query, hosting, constraint=WINDOW)
    plan = ECF().prepare(request)
    expected = plan.execute()
    pool = make_pool(1)
    try:
        _break_pool(pool)
        result = plan.execute(parallelism=4, pool=pool)
    finally:
        pool.shutdown(wait=False)
    assert [m.as_dict() for m in result.mappings] == \
        [m.as_dict() for m in expected.mappings]
    assert result.stats.nodes_expanded == expected.stats.nodes_expanded
    assert result.status is expected.status


@pytest.mark.skipif(not HAVE_FORK,
                    reason="deterministic worker kill needs the fork start method")
def test_service_replaces_broken_process_pool():
    """One dead worker must not disable parallel execution for the service."""
    from repro.service import NetEmbedService, QuerySpec

    query, hosting = dense_workload(num_hosts=8, num_query=3)
    with NetEmbedService(parallel_workers=1) as service:
        service.register_network(hosting, name="net")
        spec = QuerySpec(query=query, constraint=WINDOW, algorithm="ECF",
                         parallelism=2)
        expected = service.submit(QuerySpec(query=query, constraint=WINDOW,
                                            algorithm="ECF"))
        first_pool = service._ensure_process_pool()
        _break_pool(first_pool)
        # Each submit fetches the pool through _ensure_process_pool, which
        # discards the broken executor and builds a fresh one.
        first = service.submit(spec)
        second = service.submit(spec)
        assert service.process_pool is not first_pool
        for response in (first, second):
            assert [m.as_dict() for m in response.mappings] == \
                [m.as_dict() for m in expected.mappings]


def test_split_contiguous_preserves_order_and_coverage():
    items = list(range(23))
    for shards in (1, 2, 4, 7, 23, 40):
        blocks = split_contiguous(items, shards)
        assert [x for block in blocks for x in block] == items
        assert len(blocks) == min(shards, len(items))
        sizes = [len(block) for block in blocks]
        assert max(sizes) - min(sizes) <= 1
    assert split_contiguous([], 4) == []
