"""Supervised parallel execution under injected faults.

The promises under test (see :mod:`repro.core.parallel`):

* a worker crash mid-merge retries the uncommitted shards on a fresh pool
  and the merged stream stays **byte-identical** to serial;
* exhausted retries degrade to in-process execution — counted, observable,
  and still byte-identical;
* repeated failures trip the circuit breaker, which short-circuits later
  runs straight to serial until the cooldown lapses (fake-clock tested);
* spill temp files are cleaned up on *every* exit path, fault or not.
"""

from __future__ import annotations

import glob
import os
import random
import tempfile

import pytest

from repro import faults
from repro.api import Budget, SearchRequest
from repro.core import ECF
from repro.core.parallel import (
    PoolSupervisor,
    ShardRetryPolicy,
    default_supervisor,
)
from repro.faults import FaultPlan, FaultSpec, InjectedShardError
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork

WINDOW = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"


@pytest.fixture(autouse=True)
def fresh_supervisor():
    """Each test starts (and leaves) the process-wide supervisor pristine."""
    default_supervisor().reset()
    yield
    default_supervisor().reset()


def workload(seed: int = 3):
    """A deterministic random embedding problem with several shard roots."""
    rng = random.Random(seed)
    hosting = HostingNetwork("hosting")
    num_hosts = 10
    for i in range(num_hosts):
        hosting.add_node(f"h{i}", name=f"h{i}")
    for i in range(num_hosts):
        for j in range(i + 1, num_hosts):
            if rng.random() < 0.5:
                hosting.add_edge(f"h{i}", f"h{j}",
                                 avgDelay=rng.uniform(5.0, 60.0))
    query = QueryNetwork("query")
    for i in range(3):
        query.add_node(f"q{i}")
    for i in range(2):
        query.add_edge(f"q{i}", f"q{i + 1}", minDelay=0.0, maxDelay=55.0)
    return query, hosting


def stream(result) -> str:
    return repr([m.as_dict() for m in result.mappings])


def run_pair(plan: FaultPlan, parallelism: int = 2):
    """One serial run and one fault-injected parallel run of the workload."""
    query, hosting = workload()
    request = SearchRequest.build(query, hosting, constraint=WINDOW,
                                  budget=Budget())
    serial = ECF().prepare(request).execute()
    prepared = ECF().prepare(request)
    with faults.injecting(plan) as injector:
        parallel = prepared.execute(parallelism=parallelism)
        fired = injector.stats()
    return serial, parallel, fired


class TestRetryParity:
    def test_worker_crash_retries_and_stays_byte_identical(self):
        plan = FaultPlan.fixed(
            FaultSpec("parallel.shard-result", "worker-crash", hits=(2,)))
        serial, parallel, fired = run_pair(plan)
        assert fired["fired_counts"] == {"worker-crash": 1}
        assert stream(parallel) == stream(serial)
        assert parallel.status == serial.status
        stats = default_supervisor().stats()
        assert stats["pool_failures"] == 1
        assert stats["shard_retries"] >= 1
        assert stats["serial_degradations"] == 0
        assert stats["state"] == "closed"       # success closed it again

    def test_two_crashes_still_within_the_retry_budget(self):
        plan = FaultPlan.fixed(
            FaultSpec("parallel.shard-result", "worker-crash", hits=(1, 4)))
        serial, parallel, fired = run_pair(plan)
        assert fired["fired_counts"] == {"worker-crash": 2}
        assert stream(parallel) == stream(serial)
        stats = default_supervisor().stats()
        assert stats["pool_failures"] == 2
        assert stats["state"] == "closed"

    def test_same_plan_same_outcome(self):
        """The whole point: a fault run is reproducible, not flaky."""
        plan = FaultPlan.fixed(
            FaultSpec("parallel.shard-result", "worker-crash", hits=(2,)))
        _, first, fired_first = run_pair(plan)
        default_supervisor().reset()
        _, second, fired_second = run_pair(plan)
        assert stream(first) == stream(second)
        assert fired_first["fired"] == fired_second["fired"]


class TestDegradation:
    def test_exhausted_retries_degrade_to_serial_byte_identically(self):
        # Every pool submission breaks: the initial attempt and both
        # restarts fail, the run finishes in-process, and the breaker
        # (threshold 3) trips.
        plan = FaultPlan.fixed(
            FaultSpec("parallel.pool-submit", "pool-broken",
                      hits=tuple(range(1, 200))))
        serial, parallel, fired = run_pair(plan)
        assert fired["fired_counts"]["pool-broken"] == 3
        assert stream(parallel) == stream(serial)
        assert parallel.status == serial.status
        stats = default_supervisor().stats()
        assert stats["pool_failures"] == 3
        assert stats["serial_degradations"] == 1
        assert stats["breaker_trips"] == 1
        assert stats["state"] == "open"

    def test_open_breaker_short_circuits_the_next_run(self):
        plan = FaultPlan.fixed(
            FaultSpec("parallel.pool-submit", "pool-broken",
                      hits=tuple(range(1, 200))))
        serial, degraded, _ = run_pair(plan)
        assert default_supervisor().stats()["state"] == "open"
        # Second run, no faults installed: refused a pool, ran serial,
        # and the answer is still identical.
        query, hosting = workload()
        request = SearchRequest.build(query, hosting, constraint=WINDOW,
                                      budget=Budget())
        short_circuited = ECF().prepare(request).execute(parallelism=2)
        assert stream(short_circuited) == stream(serial)
        stats = default_supervisor().stats()
        assert stats["short_circuits"] >= 1
        assert stats["pool_failures"] == 3      # no new failures


class TestCircuitBreaker:
    def make(self, cooldown: float = 30.0):
        clock = {"now": 0.0}
        supervisor = PoolSupervisor(
            retry=ShardRetryPolicy(max_pool_restarts=2),
            trip_threshold=3, cooldown=cooldown,
            clock=lambda: clock["now"])
        return supervisor, clock

    def test_trips_after_threshold_consecutive_failures(self):
        supervisor, clock = self.make()
        assert supervisor.state() == "closed" and supervisor.allow_pool()
        for _ in range(3):
            supervisor.record_pool_failure()
        assert supervisor.state() == "open"
        assert not supervisor.allow_pool()
        stats = supervisor.stats()
        assert stats["breaker_trips"] == 1 and stats["short_circuits"] == 1

    def test_success_resets_the_consecutive_count(self):
        supervisor, clock = self.make()
        supervisor.record_pool_failure()
        supervisor.record_pool_failure()
        supervisor.record_pool_success()
        supervisor.record_pool_failure()
        assert supervisor.state() == "closed"   # 1 consecutive, not 3

    def test_half_open_probe_success_closes(self):
        supervisor, clock = self.make(cooldown=30.0)
        for _ in range(3):
            supervisor.record_pool_failure()
        clock["now"] = 31.0
        assert supervisor.state() == "half-open"
        assert supervisor.allow_pool()          # the probe goes through
        supervisor.record_pool_success()
        assert supervisor.state() == "closed"
        assert supervisor.stats()["consecutive_failures"] == 0

    def test_failed_probe_reopens_without_a_new_trip(self):
        supervisor, clock = self.make(cooldown=30.0)
        for _ in range(3):
            supervisor.record_pool_failure()
        clock["now"] = 31.0
        assert supervisor.allow_pool()
        supervisor.record_pool_failure()        # the probe failed
        assert supervisor.state() == "open"     # cooldown restarted
        assert not supervisor.allow_pool()
        assert supervisor.stats()["breaker_trips"] == 1
        clock["now"] = 62.0
        assert supervisor.state() == "half-open"

    def test_trip_threshold_validated(self):
        with pytest.raises(ValueError, match="trip_threshold"):
            PoolSupervisor(trip_threshold=0)

    def test_backoff_is_capped_exponential(self):
        policy = ShardRetryPolicy(backoff_base=0.05, backoff_cap=1.0)
        assert policy.backoff(1) == pytest.approx(0.05)
        assert policy.backoff(2) == pytest.approx(0.10)
        assert policy.backoff(3) == pytest.approx(0.20)
        assert policy.backoff(10) == 1.0        # capped


class TestSpillCleanup:
    @staticmethod
    def spill_files():
        pattern = os.path.join(tempfile.gettempdir(), "repro-shard-*")
        return set(glob.glob(pattern))

    def test_no_spill_leak_on_the_happy_path(self, monkeypatch):
        monkeypatch.setattr("repro.core.parallel._INLINE_GROUP_LIMIT", 0)
        before = self.spill_files()
        query, hosting = workload()
        request = SearchRequest.build(query, hosting, constraint=WINDOW,
                                      budget=Budget())
        result = ECF().prepare(request).execute(parallelism=2)
        assert result.mappings
        assert self.spill_files() == before

    def test_no_spill_leak_when_a_shard_raises(self, monkeypatch):
        monkeypatch.setattr("repro.core.parallel._INLINE_GROUP_LIMIT", 0)
        before = self.spill_files()
        plan = FaultPlan.fixed(
            FaultSpec("parallel.shard-result", "shard-exception", hits=(1,)))
        query, hosting = workload()
        request = SearchRequest.build(query, hosting, constraint=WINDOW,
                                      budget=Budget())
        prepared = ECF().prepare(request)
        with faults.injecting(plan):
            with pytest.raises(InjectedShardError):
                prepared.execute(parallelism=2)
        assert self.spill_files() == before

    def test_no_spill_leak_across_pool_restarts(self, monkeypatch):
        monkeypatch.setattr("repro.core.parallel._INLINE_GROUP_LIMIT", 0)
        before = self.spill_files()
        plan = FaultPlan.fixed(
            FaultSpec("parallel.shard-result", "worker-crash", hits=(1,)))
        serial, parallel, _ = run_pair(plan)
        assert stream(parallel) == stream(serial)
        assert self.spill_files() == before
