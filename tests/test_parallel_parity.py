"""Parity: the sharded parallel engine vs. serial execution.

The parallel engine (:mod:`repro.core.parallel`) promises that for any shard
count the merged mapping stream is **byte-identical** to a serial run, and
that full-enumeration search counters are identical too.  This suite is the
property-based differential harness behind that promise: randomised
workloads plus PlanetLab- and BRITE-style topologies, across ECF, RWB and
LNS, for parallelism 2 / 4 / 7, including the post-mutation ``refresh()``
path and the service's warm plan-cache path.

Set ``REPRO_PARITY_PARALLELISM`` to restrict the sweep to one worker count
(the CI parallelism axis does this).
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Budget, SearchRequest
from repro.core import ECF, LNS, RWB, PlanInvalidatedError
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork
from repro.service import NetEmbedService, QuerySpec
from repro.topology import barabasi_albert, synthetic_planetlab_trace

_ENV_PARALLELISM = os.environ.get("REPRO_PARITY_PARALLELISM")
PARALLELISMS = ([int(_ENV_PARALLELISM)] if _ENV_PARALLELISM
                else [2, 4, 7])

WINDOW = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"

#: Factories keyed by algorithm name; RWB gets its seed per run via
#: ``execute(rng=...)`` so plans stay seed-agnostic, exactly as the service
#: drives it.
ALGORITHMS = {
    "ECF": lambda: ECF(),
    "RWB": lambda: RWB(),
    "LNS": lambda: LNS(),
}


def random_workload(seed: int):
    """A small random embedding problem with delay-window constraints."""
    rng = random.Random(seed)
    num_hosts = rng.randint(6, 12)
    hosting = HostingNetwork("hosting")
    for i in range(num_hosts):
        hosting.add_node(f"h{i}", name=f"h{i}")
    for i in range(num_hosts):
        for j in range(i + 1, num_hosts):
            if rng.random() < 0.5:
                hosting.add_edge(f"h{i}", f"h{j}",
                                 avgDelay=rng.uniform(5.0, 60.0))
    query = QueryNetwork("query")
    num_query = rng.randint(2, 4)
    for i in range(num_query):
        query.add_node(f"q{i}")
    for i in range(num_query - 1):
        query.add_edge(f"q{i}", f"q{i + 1}",
                       minDelay=0.0, maxDelay=rng.uniform(30.0, 70.0))
    if num_query > 2 and rng.random() < 0.5:
        query.add_edge("q0", f"q{num_query - 1}",
                       minDelay=0.0, maxDelay=rng.uniform(30.0, 70.0))
    return query, hosting


def subgraph_query(hosting: HostingNetwork, size: int, seed: int,
                   slack: float = 0.3) -> QueryNetwork:
    """A query cut out of *hosting* (guaranteed feasible at ±slack windows)."""
    rng = random.Random(seed)
    nodes = [rng.choice(list(hosting.nodes()))]
    while len(nodes) < size:
        frontier = [n for node in nodes for n in hosting.neighbors(node)
                    if n not in nodes]
        if not frontier:
            break
        nodes.append(rng.choice(sorted(frontier, key=str)))
    query = QueryNetwork("sub")
    renamed = {node: f"q{i}" for i, node in enumerate(nodes)}
    for node in nodes:
        query.add_node(renamed[node])
    for u in nodes:
        for v in nodes:
            if str(u) < str(v) and hosting.has_edge(u, v):
                delay = hosting.edge_attrs(u, v).get("avgDelay", 10.0) or 10.0
                query.add_edge(renamed[u], renamed[v],
                               minDelay=delay * (1 - slack),
                               maxDelay=delay * (1 + slack))
    return query


def streams_and_counters(result):
    """The two parity observables of one run."""
    stream = repr([m.as_dict() for m in result.mappings])
    counters = (result.status, result.timed_out, result.truncated,
                result.stats.nodes_expanded,
                result.stats.candidates_considered,
                result.stats.backtracks,
                result.stats.constraint_evaluations)
    return stream, counters


def assert_parity(name: str, query, hosting, parallelism: int,
                  constraint: str = WINDOW, budget: Budget = None,
                  seed: int = 0, full_counters: bool = True) -> None:
    """Serial vs. sharded execution of one (algorithm, workload) pair."""
    budget = budget or (Budget(max_results=10 ** 6) if name == "RWB"
                        else Budget())
    request = SearchRequest.build(query, hosting, constraint=constraint,
                                  budget=budget)
    rng = seed if name == "RWB" else None
    serial = ALGORITHMS[name]().prepare(request).execute(rng=rng)
    plan = ALGORITHMS[name]().prepare(request)
    parallel = plan.execute(parallelism=parallelism, rng=rng)
    s_stream, s_counters = streams_and_counters(serial)
    p_stream, p_counters = streams_and_counters(parallel)
    assert s_stream == p_stream, (
        f"{name} x{parallelism}: mapping stream diverged "
        f"({serial.count} serial vs {parallel.count} parallel mappings)")
    if full_counters:
        assert s_counters == p_counters, (
            f"{name} x{parallelism}: counters diverged "
            f"({s_counters} vs {p_counters})")
    else:
        # Capped runs cannot promise identical work counters (later shards
        # search regions serial never reached), but the result-level budget
        # accounting must agree.
        assert s_counters[:3] == p_counters[:3]


# --------------------------------------------------------------------------- #
# Property-based sweep over random workloads
# --------------------------------------------------------------------------- #

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       parallelism=st.sampled_from(PARALLELISMS),
       name=st.sampled_from(sorted(ALGORITHMS)))
def test_random_workload_stream_and_counter_parity(seed, parallelism, name):
    query, hosting = random_workload(seed)
    assert_parity(name, query, hosting, parallelism, seed=seed)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       parallelism=st.sampled_from(PARALLELISMS),
       name=st.sampled_from(sorted(ALGORITHMS)),
       cap=st.integers(min_value=1, max_value=5))
def test_random_workload_capped_stream_parity(seed, parallelism, name, cap):
    """max_results truncation falls on the same mapping as serial."""
    query, hosting = random_workload(seed)
    assert_parity(name, query, hosting, parallelism, seed=seed,
                  budget=Budget(max_results=cap), full_counters=False)


# --------------------------------------------------------------------------- #
# Named topologies
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("parallelism", PARALLELISMS)
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_planetlab_topology_parity(name, parallelism):
    hosting = synthetic_planetlab_trace(num_sites=18, rng=5)
    query = subgraph_query(hosting, size=4, seed=11)
    assert_parity(name, query, hosting, parallelism, seed=3)


@pytest.mark.parametrize("parallelism", PARALLELISMS)
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_brite_topology_parity(name, parallelism):
    hosting = barabasi_albert(16, edges_per_node=2, rng=7)
    query = subgraph_query(hosting, size=3, seed=23)
    assert_parity(name, query, hosting, parallelism, seed=9)


# --------------------------------------------------------------------------- #
# Mutation / refresh and cache-hit paths
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_post_mutation_refresh_keeps_parity(name):
    """A refreshed plan is parity-checked against the *mutated* model."""
    query, hosting = random_workload(91)
    budget = Budget(max_results=10 ** 6) if name == "RWB" else Budget()
    request = SearchRequest.build(query, hosting, constraint=WINDOW,
                                  budget=budget)
    plan = ALGORITHMS[name]().prepare(request)
    plan.execute(parallelism=2, rng=1 if name == "RWB" else None)

    edge = next(iter(hosting.edges()))
    hosting.update_edge(*edge, avgDelay=32.5)
    with pytest.raises(PlanInvalidatedError):
        plan.execute(parallelism=2)

    fresh = plan.refresh()
    rng = 1 if name == "RWB" else None
    serial = fresh.execute(rng=rng)
    parallel = fresh.refresh().execute(parallelism=4, rng=rng)
    assert streams_and_counters(serial) == streams_and_counters(parallel)


@pytest.mark.parametrize("parallelism", PARALLELISMS)
def test_service_cache_hit_path_keeps_parity(parallelism):
    """Warm plan-cache executions shard identically to the cold path."""
    query, hosting = random_workload(137)
    with NetEmbedService(parallel_workers=2) as service:
        service.register_network(hosting, name="net")
        spec = QuerySpec(query=query, constraint=WINDOW, algorithm="ECF",
                         parallelism=parallelism)
        serial = service.submit(QuerySpec(query=query, constraint=WINDOW,
                                          algorithm="ECF"))
        cold = service.submit(spec)
        warm = service.submit(spec)
        assert service.plans.stats()["hits"] >= 2  # serial warmed the plan
        expected = repr([m.as_dict() for m in serial.mappings])
        assert repr([m.as_dict() for m in cold.mappings]) == expected
        assert repr([m.as_dict() for m in warm.mappings]) == expected


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_streaming_surface_matches_execute(name):
    """plan.stream(parallelism=N) yields the execute() stream lazily."""
    query, hosting = random_workload(57)
    budget = Budget(max_results=10 ** 6) if name == "RWB" else Budget()
    request = SearchRequest.build(query, hosting, constraint=WINDOW,
                                  budget=budget)
    plan = ALGORITHMS[name]().prepare(request)
    rng = 4 if name == "RWB" else None
    expected = [m.as_dict() for m in plan.execute(rng=rng).mappings]
    streamed = [m.as_dict()
                for m in plan.stream(parallelism=2, rng=rng)]
    assert streamed == expected


def test_early_stream_close_aborts_parallel_search():
    """Closing a parallel stream does not leak or deadlock."""
    query, hosting = random_workload(3)
    request = SearchRequest.build(query, hosting, constraint=WINDOW)
    plan = ECF().prepare(request)
    stream = plan.stream(parallelism=2)
    first = next(stream)
    stream.close()
    serial_first = plan.execute().first
    assert first.as_dict() == serial_first.as_dict()
