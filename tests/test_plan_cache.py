"""The two-phase prepare/execute API: plans, the plan cache and the service.

Covers the plan-cache semantics end to end: hits on an unchanged model
version, misses after ``registry.touch()`` (monitor refresh) and after direct
network mutation, LRU eviction at capacity, per-entry statistics, the
thread-safety of the model registry under concurrent touch/read traffic, and
the deprecation of the legacy ``search(**kwargs)`` shim.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import Budget, SearchRequest
from repro.core import ECF, PlanCache
from repro.graphs.query import QueryNetwork
from repro.service import NetEmbedService, NetworkModelRegistry, QuerySpec

WINDOW = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"


def star_query(name: str = "star", arms: int = 2) -> QueryNetwork:
    query = QueryNetwork(name)
    query.add_node("hub")
    for i in range(arms):
        query.add_node(f"leaf{i}")
        query.add_edge("hub", f"leaf{i}", minDelay=5.0, maxDelay=60.0)
    return query


@pytest.fixture
def service(small_hosting) -> NetEmbedService:
    svc = NetEmbedService(default_timeout=10.0)
    svc.register_network(small_hosting, name="lab")
    return svc


# --------------------------------------------------------------------------- #
# Request fingerprints
# --------------------------------------------------------------------------- #

class TestRequestFingerprint:
    def test_identical_requests_share_a_fingerprint(self, small_hosting, path_query):
        a = SearchRequest.build(path_query, small_hosting, constraint=WINDOW)
        b = SearchRequest.build(path_query, small_hosting, constraint=WINDOW)
        assert a.fingerprint() == b.fingerprint()

    def test_budget_does_not_affect_the_fingerprint(self, small_hosting, path_query):
        a = SearchRequest.build(path_query, small_hosting, constraint=WINDOW)
        b = SearchRequest.build(path_query, small_hosting, constraint=WINDOW,
                                timeout=1.0, max_results=1)
        assert a.fingerprint() == b.fingerprint()

    def test_query_and_constraint_changes_change_it(self, small_hosting,
                                                    path_query, triangle_query):
        base = SearchRequest.build(path_query, small_hosting, constraint=WINDOW)
        other_query = SearchRequest.build(triangle_query, small_hosting,
                                          constraint=WINDOW)
        other_constraint = SearchRequest.build(
            path_query, small_hosting, constraint="rEdge.avgDelay <= 20.0")
        with_node = SearchRequest.build(path_query, small_hosting,
                                        constraint=WINDOW,
                                        node_constraint='rNode.osType == "linux"')
        fingerprints = {base.fingerprint(), other_query.fingerprint(),
                        other_constraint.fingerprint(), with_node.fingerprint()}
        assert len(fingerprints) == 4

    def test_strictness_changes_it(self, small_hosting, path_query):
        """strict changes evaluation semantics (missing attributes raise),
        so strict and lenient constraints must not share a plan."""
        from repro.constraints import ConstraintExpression
        lenient = SearchRequest.build(
            path_query, small_hosting,
            constraint=ConstraintExpression(WINDOW, strict=False),
            node_constraint=ConstraintExpression('rNode.osType == "linux"',
                                                 strict=False))
        strict = SearchRequest.build(
            path_query, small_hosting,
            constraint=ConstraintExpression(WINDOW, strict=False),
            node_constraint=ConstraintExpression('rNode.osType == "linux"',
                                                 strict=True))
        assert lenient.fingerprint() != strict.fingerprint()

    def test_query_attribute_changes_change_it(self, small_hosting, path_query):
        before = SearchRequest.build(path_query, small_hosting,
                                     constraint=WINDOW).fingerprint()
        path_query.update_edge("x", "y", maxDelay=99.0)
        after = SearchRequest.build(path_query, small_hosting,
                                    constraint=WINDOW).fingerprint()
        assert before != after


# --------------------------------------------------------------------------- #
# PlanCache unit semantics
# --------------------------------------------------------------------------- #

class TestPlanCache:
    def _plan(self, small_hosting, query):
        return ECF().prepare(SearchRequest.build(query, small_hosting,
                                                 constraint=WINDOW))

    def test_hit_miss_and_per_entry_stats(self, small_hosting, path_query):
        cache = PlanCache(capacity=4)
        plan = self._plan(small_hosting, path_query)
        assert cache.get("k") is None               # cold miss
        cache.put("k", plan)
        assert cache.get("k") is plan
        assert cache.get("k") is plan
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1
        (entry,) = cache.entries()
        assert entry.hits == 2 and entry.key == "k"

    def test_lru_eviction_at_capacity(self, small_hosting):
        cache = PlanCache(capacity=2)
        plans = {i: self._plan(small_hosting, star_query(f"q{i}", arms=i + 1))
                 for i in range(3)}
        cache.put(0, plans[0])
        cache.put(1, plans[1])
        assert cache.get(0) is plans[0]             # 0 is now most recent
        cache.put(2, plans[2])                      # evicts 1, the LRU entry
        assert 1 not in cache
        assert cache.get(1) is None
        assert cache.get(0) is plans[0] and cache.get(2) is plans[2]
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_stale_entries_are_dropped_on_get(self, small_hosting, path_query):
        cache = PlanCache(capacity=4)
        cache.put("k", self._plan(small_hosting, path_query))
        small_hosting.update_edge("a", "b", avgDelay=11.0)
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats["invalidations"] == 1 and stats["size"] == 0

    def test_put_purges_unreachable_unpatchable_stale_entries(
            self, small_hosting, path_query, triangle_query):
        """Entries keyed by superseded versions are unreachable by lookups;
        once the patch path cannot revive them (structural delta) the
        cold-path sweep in put() must free them promptly."""
        cache = PlanCache(capacity=8)
        cache.put(("net", 0, "a"), self._plan(small_hosting, path_query))
        cache.put(("net", 0, "b"), self._plan(small_hosting, triangle_query))
        small_hosting.remove_edge("a", "b")   # structural: both unpatchable
        cache.put(("net", 1, "a"), self._plan(small_hosting, path_query))
        assert len(cache) == 1
        assert cache.stats()["invalidations"] == 2

    def test_put_keeps_patchable_stale_entries_for_the_patch_path(
            self, small_hosting, path_query, triangle_query):
        """Attr-only-stale entries are pop_predecessor() material: the sweep
        must keep them so churned traffic can patch instead of recompile."""
        cache = PlanCache(capacity=8)
        stale_plan = self._plan(small_hosting, triangle_query)
        cache.put(("net", 0, ("ECF",), "fp-b"), stale_plan)
        small_hosting.update_edge("a", "b", avgDelay=12.0)   # attr-only stale
        cache.put(("net", 1, ("ECF",), "fp-a"),
                  self._plan(small_hosting, path_query))
        assert len(cache) == 2
        assert cache.pop_predecessor(("net", 1, ("ECF",), "fp-b")) is stale_plan
        assert cache.pop_predecessor(("net", 1, ("ECF",), "fp-b")) is None
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


# --------------------------------------------------------------------------- #
# Service-level cache routing
# --------------------------------------------------------------------------- #

class TestServicePlanCache:
    def test_hit_on_unchanged_model_version(self, service, path_query):
        first = service.embed(path_query, constraint=WINDOW, algorithm="ECF")
        second = service.embed(path_query, constraint=WINDOW, algorithm="ECF")
        assert first.mappings == second.mappings
        stats = service.plans.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_miss_after_registry_touch(self, service, path_query):
        service.embed(path_query, constraint=WINDOW, algorithm="ECF")
        service.registry.touch("lab")
        service.embed(path_query, constraint=WINDOW, algorithm="ECF")
        stats = service.plans.stats()
        assert stats["misses"] == 2 and stats["hits"] == 0

    def test_miss_after_silent_network_mutation(self, service, small_hosting,
                                                path_query):
        """A mutation nobody reported to the registry still invalidates: the
        version key matches but the plan's epoch check drops the entry."""
        first = service.embed(path_query, constraint=WINDOW, algorithm="ECF")
        small_hosting.remove_edge("a", "b")
        second = service.embed(path_query, constraint=WINDOW, algorithm="ECF")
        stats = service.plans.stats()
        assert stats["misses"] == 2 and stats["invalidations"] == 1
        # and the re-prepared plan reflects the mutated network exactly
        fresh = ECF().request(SearchRequest.build(path_query, small_hosting,
                                                  constraint=WINDOW))
        assert [m.assignment for m in second.mappings] \
            == [m.assignment for m in fresh.mappings]
        assert len(second.mappings) < len(first.mappings)

    def test_monitor_tick_invalidates(self, service, path_query):
        service.embed(path_query, constraint=WINDOW, algorithm="ECF")
        monitor = service.attach_monitor("lab", rng=1)
        monitor.tick()
        service.embed(path_query, constraint=WINDOW, algorithm="ECF")
        assert service.plans.stats()["hits"] == 0

    def test_structurally_identical_queries_share_a_plan(self, service):
        """Fingerprints ignore the query's display name: two structurally
        identical queries are the same traffic and share one cached plan."""
        service.embed(star_query("first"), constraint=WINDOW, algorithm="ECF")
        service.embed(star_query("second"), constraint=WINDOW, algorithm="ECF")
        stats = service.plans.stats()
        assert stats["size"] == 1 and stats["hits"] == 1

    def test_eviction_at_service_capacity(self, small_hosting):
        svc = NetEmbedService(default_timeout=10.0, plan_cache_size=2)
        svc.register_network(small_hosting, name="lab")
        for arms in (1, 2, 3):    # structurally distinct queries
            svc.embed(star_query(f"q{arms}", arms=arms), constraint=WINDOW,
                      algorithm="ECF")
        stats = svc.plans.stats()
        assert stats["size"] == 2 and stats["evictions"] == 1

    def test_seeded_rwb_through_cache_is_reproducible(self, service, path_query):
        a = service.embed(path_query, constraint=WINDOW, algorithm="RWB", seed=5)
        b = service.embed(path_query, constraint=WINDOW, algorithm="RWB", seed=5)
        assert a.mappings == b.mappings
        assert service.plans.stats()["hits"] == 1   # one plan, two seeds ok

    def test_stream_routes_through_cache(self, service, path_query):
        spec = QuerySpec(query=path_query, constraint=WINDOW, algorithm="ECF")
        streamed = [m.assignment for m in service.stream(spec)]
        submitted = [m.assignment for m in service.submit(spec).mappings]
        assert streamed == submitted
        assert service.plans.stats()["hits"] == 1

    def test_stream_falls_back_when_plan_goes_stale_unconsumed(
            self, service, small_hosting, path_query):
        """A mutation between stream() and the first next() must degrade to
        the one-shot path, not leak PlanInvalidatedError to the consumer."""
        spec = QuerySpec(query=path_query, constraint=WINDOW, algorithm="ECF")
        service.submit(spec)                      # warm the cache
        generator = service.stream(spec)
        small_hosting.update_edge("a", "b", avgDelay=10.5)
        streamed = [m.assignment for m in generator]
        fresh = ECF().request(SearchRequest.build(path_query, small_hosting,
                                                  constraint=WINDOW))
        assert streamed == [m.assignment for m in fresh.mappings]

    def test_batch_shares_one_plan(self, service, path_query):
        specs = [QuerySpec(query=path_query, constraint=WINDOW, algorithm="ECF")
                 for _ in range(4)]
        responses = service.submit_batch(specs)
        streams = [[m.assignment for m in r.mappings] for r in responses]
        assert all(stream == streams[0] for stream in streams)
        stats = service.plans.stats()
        # Racing workers may each compile the cold plan; afterwards all
        # traffic shares the cached entry.
        assert stats["size"] == 1 and stats["hits"] + stats["misses"] == 4

    def test_non_preparable_algorithms_bypass_the_cache(self, service,
                                                        path_query):
        response = service.embed(path_query, constraint=WINDOW,
                                 algorithm="bruteforce", max_results=1,
                                 timeout=5.0)
        assert response.found
        assert service.plans.stats()["size"] == 0

    def test_cold_compile_respects_the_spec_timeout(self, service, path_query):
        """A cold cache miss must not compile unboundedly: with a tiny
        timeout the compile aborts, the submit falls back to the one-shot
        path and the response is classified as a timeout, and nothing
        half-built lands in the cache."""
        response = service.embed(path_query, constraint=WINDOW,
                                 algorithm="ECF", timeout=1e-9)
        assert response.result.timed_out
        assert response.status.value == "inconclusive"
        assert service.plans.stats()["size"] == 0

    def test_seeded_prepare_reproduces_submit(self, service, path_query):
        """prepare(spec with seed).execute() must match submit(spec): the
        seed binds to a private (uncached) plan instead of being dropped."""
        spec = QuerySpec(query=path_query, constraint=WINDOW, algorithm="RWB",
                         seed=5, max_results=3)
        plan = service.prepare(spec)
        assert plan.execute().mappings == service.submit(spec).mappings

    def test_service_prepare_returns_executable_plan(self, service, path_query):
        plan = service.prepare(QuerySpec(query=path_query, constraint=WINDOW,
                                         algorithm="ECF"))
        result = plan.execute(budget=Budget(max_results=1))
        assert len(result.mappings) == 1
        # the plan is cached: the next embed() for the same traffic hits
        service.embed(path_query, constraint=WINDOW, algorithm="ECF")
        assert service.plans.stats()["hits"] == 1


# --------------------------------------------------------------------------- #
# Registry thread-safety
# --------------------------------------------------------------------------- #

class TestRegistryThreadSafety:
    def test_concurrent_touch_and_reads(self, small_hosting):
        registry = NetworkModelRegistry()
        registry.register(small_hosting, name="lab")
        errors = []
        ticks_per_thread = 200
        threads_count = 4

        def toucher():
            try:
                for _ in range(ticks_per_thread):
                    registry.touch("lab")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                for _ in range(ticks_per_thread):
                    registry.version("lab")
                    registry.entry("lab")
                    registry.names()
                    assert "lab" in registry
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = ([threading.Thread(target=toucher) for _ in range(threads_count)]
                   + [threading.Thread(target=reader) for _ in range(2)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # every touch is accounted for: the lock made increments atomic
        assert registry.version("lab") == threads_count * ticks_per_thread

    def test_register_replacement_bumps_version(self, small_hosting):
        registry = NetworkModelRegistry()
        registry.register(small_hosting, name="lab")
        assert registry.version("lab") == 0
        registry.register(small_hosting.copy(), name="lab")
        assert registry.version("lab") == 1


# --------------------------------------------------------------------------- #
# Legacy shim deprecation
# --------------------------------------------------------------------------- #

class TestSearchDeprecation:
    def test_search_emits_deprecation_warning(self, small_hosting, path_query):
        with pytest.warns(DeprecationWarning, match="request\\(\\)"):
            result = ECF().search(path_query, small_hosting, constraint=WINDOW)
        assert result.found

    def test_request_and_prepare_do_not_warn(self, small_hosting, path_query,
                                             recwarn):
        request = SearchRequest.build(path_query, small_hosting,
                                      constraint=WINDOW)
        ECF().request(request)
        ECF().prepare(request).execute()
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]
