"""The embedding-repair engine and its service surface.

The acceptance property: **repaired mappings pass the same validity checks
as fresh embeddings** (:func:`~repro.core.mapping.validate_mapping` finds no
violations), while only the assignments the churn actually broke move.
Covers the violation classifier, the pinned-region local search with its
rippling release set, capacity transfer on rebind, and the
``NetEmbedService.repair`` self-healing flow under randomised churn.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints import ConstraintExpression
from repro.core import ECF, repair_mapping, validate_mapping, violated_query_nodes
from repro.core.mapping import Mapping
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork
from repro.service import (
    NetEmbedService,
    QuerySpec,
    ReservationError,
    with_default_demand,
)
from repro.workloads import ChurnConfig, ChurnProcess, churn_embedding_suite
from repro.workloads.suites import planetlab_host

WINDOW = ConstraintExpression("rEdge.avgDelay >= vEdge.minDelay && "
                              "rEdge.avgDelay <= vEdge.maxDelay")
UP = ConstraintExpression("rNode.up == true")


def line_world():
    """A deterministic scene: hosts in a dense band, one embedded path query.

    Every hosting link starts at delay 15 inside the query's [10, 20]
    window, so the identity-style first mapping is valid and any single
    link/node breakage has plenty of repair room.
    """
    hosting = HostingNetwork("host")
    for i in range(8):
        hosting.add_node(f"h{i}", up=True)
    for i in range(8):
        for j in range(i + 1, 8):
            hosting.add_edge(f"h{i}", f"h{j}", avgDelay=15.0)
    query = QueryNetwork("path")
    for i in range(4):
        query.add_node(f"q{i}")
    for i in range(3):
        query.add_edge(f"q{i}", f"q{i + 1}", minDelay=10.0, maxDelay=20.0)
    mapping = Mapping({f"q{i}": f"h{i}" for i in range(4)})
    assert validate_mapping(mapping, query, hosting, WINDOW, UP) == []
    return hosting, query, mapping


class TestViolationClassifier:
    def test_valid_mapping_has_no_violated_nodes(self):
        hosting, query, mapping = line_world()
        assert violated_query_nodes(mapping, query, hosting, WINDOW, UP) == set()

    def test_broken_edge_implicates_both_endpoints(self):
        hosting, query, mapping = line_world()
        hosting.update_edge("h1", "h2", avgDelay=99.0)
        assert violated_query_nodes(mapping, query, hosting, WINDOW, UP) \
            == {"q1", "q2"}

    def test_down_host_implicates_its_node(self):
        hosting, query, mapping = line_world()
        hosting.update_node("h3", up=False)
        assert violated_query_nodes(mapping, query, hosting, WINDOW, UP) \
            == {"q3"}

    def test_removed_host_and_unmapped_nodes(self):
        hosting, query, mapping = line_world()
        hosting.remove_node("h0")
        partial = Mapping({"q1": "h1", "q2": "h2", "q3": "h3"})
        assert violated_query_nodes(partial, query, hosting, WINDOW, UP) \
            == {"q0"}
        assert "q0" in violated_query_nodes(mapping, query, hosting,
                                            WINDOW, UP)

    def test_injectivity_collision_implicates_all_parties(self):
        hosting, query, _ = line_world()
        clashing = Mapping({"q0": "h0", "q1": "h1", "q2": "h1", "q3": "h2"})
        violated = violated_query_nodes(clashing, query, hosting, None, None)
        assert {"q1", "q2"} <= violated


class TestRepairMapping:
    def test_intact_mapping_is_untouched(self):
        hosting, query, mapping = line_world()
        result = repair_mapping(query, hosting, mapping, WINDOW, UP)
        assert result.status == "intact"
        assert result.mapping is mapping
        assert result.moved == {}

    def test_single_link_breakage_moves_minimally(self):
        hosting, query, mapping = line_world()
        hosting.update_edge("h1", "h2", avgDelay=99.0)
        result = repair_mapping(query, hosting, mapping, WINDOW, UP)
        assert result.status == "repaired"
        assert result.rounds == 1
        assert set(result.moved) <= {"q1", "q2"}
        assert validate_mapping(result.mapping, query, hosting, WINDOW, UP) == []
        # Unbroken assignments stay pinned.
        assert result.mapping["q0"] == "h0" and result.mapping["q3"] == "h3"

    def test_down_host_repair_respects_node_constraint(self):
        hosting, query, mapping = line_world()
        hosting.update_node("h2", up=False)
        result = repair_mapping(query, hosting, mapping, WINDOW, UP)
        assert result.status == "repaired"
        assert result.mapping["q2"] != "h2"
        assert validate_mapping(result.mapping, query, hosting, WINDOW, UP) == []

    def test_ripple_releases_neighbors_when_needed(self):
        """Break q1's host so that every replacement host conflicts with the
        pinned neighbours, forcing the release set to grow."""
        hosting = HostingNetwork("host")
        for i in range(5):
            hosting.add_node(f"h{i}", up=True)
        # A 5-cycle: each host connects only to its ring neighbours.
        for i in range(5):
            hosting.add_edge(f"h{i}", f"h{(i + 1) % 5}", avgDelay=15.0)
        query = QueryNetwork("path")
        for i in range(3):
            query.add_node(f"q{i}")
        query.add_edge("q0", "q1", minDelay=10.0, maxDelay=20.0)
        query.add_edge("q1", "q2", minDelay=10.0, maxDelay=20.0)
        mapping = Mapping({"q0": "h0", "q1": "h1", "q2": "h2"})
        assert validate_mapping(mapping, query, hosting, WINDOW, UP) == []
        # Down h1: the only host adjacent to both h0 and h2 on the ring.
        hosting.update_node("h1", up=False)
        result = repair_mapping(query, hosting, mapping, WINDOW, UP)
        assert result.status == "repaired"
        assert result.rounds > 1
        assert len(result.released_nodes) > 1
        assert validate_mapping(result.mapping, query, hosting, WINDOW, UP) == []

    def test_unrepairable_reports_failed_after_full_release(self):
        hosting, query, mapping = line_world()
        for node in hosting.nodes():
            hosting.update_node(node, up=False)
        result = repair_mapping(query, hosting, mapping, WINDOW, UP)
        assert result.status == "failed"
        assert result.mapping is None
        assert set(result.released_nodes) == set(query.nodes())

    def test_max_rounds_caps_the_ripple(self):
        hosting, query, mapping = line_world()
        for node in hosting.nodes():
            hosting.update_node(node, up=False)
        result = repair_mapping(query, hosting, mapping, WINDOW, UP,
                                max_rounds=1)
        assert result.status == "failed" and result.rounds == 1

    def test_timeout_is_reported(self):
        hosting, query, mapping = line_world()
        hosting.update_edge("h1", "h2", avgDelay=99.0)
        result = repair_mapping(query, hosting, mapping, WINDOW, UP,
                                timeout=1e-9)
        assert result.status == "timeout"
        assert result.mapping is None

    def test_candidate_filter_is_honoured(self):
        hosting, query, mapping = line_world()
        hosting.update_edge("h1", "h2", avgDelay=99.0)
        held = set(mapping.hosting_nodes())
        vetoed = {"h4"}

        def candidate_ok(query_node, host):
            return host in held or host not in vetoed

        result = repair_mapping(query, hosting, mapping, WINDOW, UP,
                                candidate_ok=candidate_ok)
        assert result.status == "repaired"
        for _, new in result.moved.values():
            assert new not in vetoed

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), ticks=st.integers(1, 5))
    def test_repaired_mappings_validate_like_fresh_embeddings(self, seed,
                                                              ticks):
        """The acceptance property, under randomised sparse churn."""
        rng = random.Random(seed)
        hosting = planetlab_host(16, rng=rng)
        for node in hosting.nodes():
            hosting.update_node(node, up=True)
        workloads = churn_embedding_suite(hosting, num_queries=2,
                                          query_size=5, slack=0.3, rng=rng)
        mappings = []
        for workload in workloads:
            result = ECF().find_first(workload.query, hosting,
                                      constraint=workload.constraint,
                                      node_constraint=UP)
            assert result.found
            mappings.append((workload, result.first))

        churn = ChurnProcess(hosting, ChurnConfig(
            link_fraction=0.1, node_fraction=0.1, delay_jitter=0.4,
            failure_probability=0.2), rng=seed + 1)
        for _ in range(ticks):
            churn.tick()
            for workload, mapping in mappings:
                repair = repair_mapping(workload.query, hosting, mapping,
                                        workload.constraint, UP)
                if repair.ok:
                    assert validate_mapping(repair.mapping, workload.query,
                                            hosting, workload.constraint,
                                            UP) == []
                else:
                    # A failed repair must mean no embedding exists at all:
                    # a fresh complete search agrees.
                    fresh = ECF().find_first(workload.query, hosting,
                                             constraint=workload.constraint,
                                             node_constraint=UP)
                    assert not fresh.found


class TestServiceRepair:
    def _world(self, capacity=2.0):
        hosting, query, _ = line_world()
        for node in hosting.nodes():
            hosting.set_capacity(node, capacity)
        service = NetEmbedService(default_timeout=10.0)
        service.register_network(hosting, name="lab")
        with_default_demand(query)
        response = service.submit(QuerySpec(
            query=query, constraint=WINDOW, node_constraint=UP,
            algorithm="ECF", max_results=1, reserve=True))
        assert response.reservation_id is not None
        return service, hosting, query, response

    def test_intact_reservation_reports_intact(self):
        service, _, _, response = self._world()
        repair = service.repair(response.reservation_id)
        assert repair.status == "intact" and repair.ok

    def test_repair_rebinds_and_transfers_capacity(self):
        service, hosting, query, response = self._world()
        reservation = service.reservations.get(response.reservation_id)
        old_host = reservation.mapping["q2"]
        hosting.update_node(old_host, up=False)
        service.registry.touch("lab")

        repair = service.repair(response.reservation_id)
        assert repair.status == "repaired" and repair.ok
        updated = service.reservations.get(response.reservation_id)
        assert updated.rebinds == 1
        new_host = updated.mapping["q2"]
        assert new_host != old_host
        # Capacity followed the move.
        assert hosting.available_capacity(old_host) == 2.0
        assert hosting.available_capacity(new_host) == 1.0
        assert validate_mapping(updated.mapping, query, hosting,
                                WINDOW, UP) == []

    def test_repair_only_moves_to_hosts_with_spare_capacity(self):
        service, hosting, query, response = self._world(capacity=1.0)
        reservation = service.reservations.get(response.reservation_id)
        held = set(reservation.mapping.hosting_nodes())
        # Exhaust every host outside the reservation except h6.
        for node in hosting.nodes():
            if node not in held and node != "h6":
                hosting.consume_capacity(node, 1.0)
        broken = reservation.mapping["q1"]
        hosting.update_node(broken, up=False)
        repair = service.repair(response.reservation_id)
        assert repair.status == "repaired" and repair.ok
        updated = service.reservations.get(response.reservation_id)
        moved_to = {new for _, new in repair.moved.values()} - held
        assert moved_to <= {"h6"}
        assert hosting.available_capacity("h6") == 0.0 or not moved_to
        assert validate_mapping(updated.mapping, query, hosting,
                                WINDOW, UP) == []

    def test_repair_without_query_context_is_rejected(self):
        service, hosting, query, _ = self._world()
        mapping = Mapping({f"q{i}": f"h{i + 4}" for i in range(4)})
        bare = service.reservations.reserve(hosting, "lab", mapping)
        with pytest.raises(ReservationError):
            service.repair(bare.reservation_id)

    def test_repair_of_released_reservation_is_rejected(self):
        service, _, _, response = self._world()
        service.release(response.reservation_id)
        with pytest.raises(ReservationError):
            service.repair(response.reservation_id)

    def test_failed_repair_keeps_the_reservation_unchanged(self):
        service, hosting, _, response = self._world()
        before = service.reservations.get(response.reservation_id).mapping
        for node in hosting.nodes():
            hosting.update_node(node, up=False)
        repair = service.repair(response.reservation_id)
        assert repair.status == "failed" and not repair.ok
        after = service.reservations.get(response.reservation_id)
        assert after.mapping == before and after.rebinds == 0

    def test_repair_survives_a_removed_host(self):
        """Structural churn: a mapped host disappears outright; the repair
        re-places its node and the vanished host's capacity is not
        'released' anywhere."""
        service, hosting, query, response = self._world()
        reservation = service.reservations.get(response.reservation_id)
        doomed = reservation.mapping["q3"]
        hosting.remove_node(doomed)
        service.registry.touch("lab")
        repair = service.repair(response.reservation_id)
        assert repair.status == "repaired" and repair.ok
        updated = service.reservations.get(response.reservation_id)
        assert doomed not in updated.mapping.hosting_nodes()
        assert validate_mapping(updated.mapping, query, hosting,
                                WINDOW, UP) == []


class TestRebind:
    def test_rebind_rejects_different_query_nodes(self):
        hosting, query, mapping = line_world()
        for node in hosting.nodes():
            hosting.set_capacity(node, 2.0)
        service = NetEmbedService()
        service.register_network(hosting, name="lab")
        reservation = service.reservations.reserve(hosting, "lab", mapping,
                                                   query=query)
        with pytest.raises(ReservationError):
            service.reservations.rebind(
                reservation.reservation_id, hosting,
                Mapping({"q0": "h0"}))

    def test_rebind_nets_out_swaps_between_held_hosts(self):
        hosting, query, mapping = line_world()
        for node in hosting.nodes():
            hosting.set_capacity(node, 1.0)   # zero slack anywhere
        service = NetEmbedService()
        service.register_network(hosting, name="lab")
        reservation = service.reservations.reserve(hosting, "lab", mapping,
                                                   query=query)
        # Swapping two held hosts needs no new capacity even at zero slack.
        swapped = Mapping({"q0": "h1", "q1": "h0", "q2": "h2", "q3": "h3"})
        service.reservations.rebind(reservation.reservation_id, hosting,
                                    swapped)
        assert service.reservations.get(
            reservation.reservation_id).mapping == swapped
        for host in ("h0", "h1", "h2", "h3"):
            assert hosting.available_capacity(host) == 0.0
