"""Unit tests for the serving tier's admission controller.

The controller is driven synchronously with a fake monotonic clock, so
every rate-limit and deadline scenario is deterministic: no sleeps, no real
wall time, no event loop.
"""

from __future__ import annotations

import pytest

from repro.server.admission import (
    PRIORITY_CLASSES,
    AdmissionConfig,
    AdmissionController,
    CostModel,
    TenantPolicy,
    Ticket,
)
from repro.utils.timing import Deadline


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_controller(clock=None, workers=1, **config_kwargs):
    return AdmissionController(AdmissionConfig(**config_kwargs),
                               clock=clock if clock is not None else FakeClock(),
                               workers=workers)


def ticket(tenant="default", priority="standard", deadline=None, key="w0"):
    return Ticket(tenant=tenant, priority=priority,
                  deadline=Deadline(deadline) if deadline is not None else None,
                  cost_key=key)


# --------------------------------------------------------------------------- #
# Basic admission / dispatch
# --------------------------------------------------------------------------- #

class TestBasicFlow:
    def test_admit_then_dispatch_then_finish(self):
        controller = make_controller()
        t = ticket()
        assert controller.admit(t) is None
        assert controller.queued == 1
        popped = controller.pop_ready()
        assert popped is t and popped.shed is None
        assert controller.queued == 0 and controller.inflight == 1
        controller.finish(popped, cost_seconds=0.5)
        assert controller.inflight == 0
        stats = controller.stats()
        assert stats["offered"] == stats["admitted"] == 1
        assert stats["completed"] == 1 and stats["shed_total"] == 0

    def test_fifo_within_priority_class(self):
        controller = make_controller()
        tickets = [ticket(key=f"w{i}") for i in range(3)]
        for t in tickets:
            assert controller.admit(t) is None
        assert [controller.pop_ready() for _ in range(3)] == tickets

    def test_pop_empty_queue_returns_none(self):
        assert make_controller().pop_ready() is None

    def test_unknown_priority_rejected_at_construction(self):
        with pytest.raises(ValueError, match="priority"):
            Ticket(priority="vip")
        assert PRIORITY_CLASSES == ("interactive", "standard", "batch")


# --------------------------------------------------------------------------- #
# Queue bound and priority classes
# --------------------------------------------------------------------------- #

class TestBoundedQueue:
    def test_queue_full_rejection(self):
        controller = make_controller(max_queue_depth=2)
        assert controller.admit(ticket()) is None
        assert controller.admit(ticket()) is None
        decision = controller.admit(ticket())
        assert decision is not None and decision.reason == "queue-full"
        assert controller.queued == 2
        assert controller.stats()["shed"]["queue-full"] == 1

    def test_higher_priority_preempts_when_full(self):
        controller = make_controller(max_queue_depth=2)
        keeper = ticket(priority="standard")
        victim = ticket(priority="batch")
        assert controller.admit(keeper) is None
        assert controller.admit(victim) is None
        vip = ticket(priority="interactive")
        assert controller.admit(vip) is None      # preempts the batch ticket
        evicted = controller.take_evicted()
        assert evicted == [victim]
        assert victim.shed is not None and victim.shed.reason == "preempted"
        assert controller.queued == 2
        # The evicted ticket never dispatches; the queue drains vip first.
        assert controller.pop_ready() is vip
        assert controller.pop_ready() is keeper
        assert controller.pop_ready() is None

    def test_equal_priority_does_not_preempt(self):
        controller = make_controller(max_queue_depth=1)
        assert controller.admit(ticket(priority="interactive")) is None
        decision = controller.admit(ticket(priority="interactive"))
        assert decision is not None and decision.reason == "queue-full"
        assert controller.take_evicted() == []

    def test_priority_ordering_on_dispatch(self):
        controller = make_controller()
        batch = ticket(priority="batch")
        standard = ticket(priority="standard")
        interactive = ticket(priority="interactive")
        for t in (batch, standard, interactive):
            assert controller.admit(t) is None
        order = [controller.pop_ready() for _ in range(3)]
        assert order == [interactive, standard, batch]


# --------------------------------------------------------------------------- #
# Per-tenant QoS
# --------------------------------------------------------------------------- #

class TestTenantQoS:
    def test_rate_limit_sheds_and_refills(self):
        clock = FakeClock()
        controller = make_controller(
            clock=clock,
            default_policy=TenantPolicy(rate=1.0, burst=2))
        assert controller.admit(ticket(tenant="a")) is None
        assert controller.admit(ticket(tenant="a")) is None
        decision = controller.admit(ticket(tenant="a"))
        assert decision is not None and decision.reason == "tenant-rate"
        assert decision.retry_after == pytest.approx(1.0)
        # Other tenants have their own buckets.
        assert controller.admit(ticket(tenant="b")) is None
        # After a second the bucket holds one token again.
        clock.advance(1.0)
        assert controller.admit(ticket(tenant="a")) is None

    def test_tenant_queue_quota(self):
        controller = make_controller(
            tenants={"small": TenantPolicy(max_queued=1)})
        assert controller.admit(ticket(tenant="small")) is None
        decision = controller.admit(ticket(tenant="small"))
        assert decision is not None and decision.reason == "tenant-queue-quota"
        # The default policy is unlimited: other tenants are unaffected.
        for _ in range(5):
            assert controller.admit(ticket(tenant="big")) is None

    def test_tenant_inflight_quota_defers_not_sheds(self):
        controller = make_controller(
            workers=4,
            tenants={"t": TenantPolicy(max_inflight=1)})
        first, second = ticket(tenant="t"), ticket(tenant="t")
        other = ticket(tenant="other")
        for t in (first, second, other):
            assert controller.admit(t) is None
        assert controller.pop_ready() is first
        # t is at its pool quota: its second ticket is skipped, not shed,
        # and the other tenant's work proceeds.
        assert controller.pop_ready() is other
        assert controller.pop_ready() is None
        assert second.shed is None and controller.queued == 1
        controller.finish(first)
        assert controller.pop_ready() is second

    def test_cache_quota_bypasses_cache_beyond_budget(self):
        controller = make_controller(
            tenants={"t": TenantPolicy(max_plans=2)})
        a = ticket(tenant="t", key="w-a")
        b = ticket(tenant="t", key="w-b")
        c = ticket(tenant="t", key="w-c")
        a2 = ticket(tenant="t", key="w-a")
        for t in (a, b, c, a2):
            assert controller.admit(t) is None
        assert a.cache and b.cache
        assert not c.cache                 # third distinct workload: bypass
        assert a2.cache                    # repeats of budgeted workloads hit
        assert controller.stats()["cache_bypassed"] == 1


# --------------------------------------------------------------------------- #
# Deadline-aware shedding
# --------------------------------------------------------------------------- #

class TestDeadlineShedding:
    def test_expired_deadline_shed_at_admission(self):
        controller = make_controller()
        dead = Ticket(deadline=Deadline(1e-9))
        while dead.deadline.remaining > 0:
            pass
        decision = controller.admit(dead)
        assert decision is not None and decision.reason == "deadline-expired"
        assert controller.queued == 0
        # It must never reach dispatch.
        assert controller.pop_ready() is None

    def test_expired_in_queue_shed_at_dispatch_never_executes(self):
        controller = make_controller()
        doomed = ticket(deadline=0.05)   # alive at admission...
        assert controller.admit(doomed) is None
        while doomed.deadline.remaining > 0:   # ...expired by dispatch
            pass
        popped = controller.pop_ready()
        assert popped is doomed
        assert popped.shed is not None
        assert popped.shed.reason == "deadline-expired"
        # Shed-at-dispatch tickets are not counted as executing.
        assert controller.inflight == 0
        assert controller.stats()["executed"] == 0

    def test_unreachable_deadline_shed_by_cost_model(self):
        controller = make_controller()
        controller.cost_model.observe("w0", 10.0)
        decision = controller.admit(ticket(deadline=1.0, key="w0"))
        assert decision is not None
        assert decision.reason == "deadline-unreachable"
        # A generous deadline for the same workload is admitted.
        assert controller.admit(ticket(deadline=60.0, key="w0")) is None

    def test_unknown_cost_admits(self):
        controller = make_controller()
        assert controller.admit(ticket(deadline=0.001, key="never-seen",
                                       )) is None

    def test_queue_wait_counts_against_deadline(self):
        controller = make_controller(workers=1)
        controller.cost_model.observe("w0", 1.0)
        # Fill the queue with work worth ~3s of backlog.
        for _ in range(3):
            assert controller.admit(ticket(deadline=60.0, key="w0")) is None
        # 2s deadline cannot cover ~3s backlog + 1s own cost.
        decision = controller.admit(ticket(deadline=2.0, key="w0"))
        assert decision is not None
        assert decision.reason == "deadline-unreachable"


# --------------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------------- #

class TestCostModel:
    def test_ewma_converges(self):
        model = CostModel(alpha=0.5)
        assert model.estimate("k") is None
        model.observe("k", 1.0)
        assert model.estimate("k") == pytest.approx(1.0)
        model.observe("k", 2.0)
        assert model.estimate("k") == pytest.approx(1.5)

    def test_global_fallback_for_unknown_keys(self):
        model = CostModel()
        model.observe("a", 2.0)
        assert model.estimate("b") == pytest.approx(2.0)
        assert model.global_estimate == pytest.approx(2.0)

    def test_negative_observations_ignored(self):
        model = CostModel()
        model.observe("k", -1.0)
        assert model.estimate("k") is None


# --------------------------------------------------------------------------- #
# Shutdown / accounting
# --------------------------------------------------------------------------- #

class TestAccounting:
    def test_drain_sheds_everything_queued(self):
        controller = make_controller()
        tickets = [ticket(key=f"w{i}") for i in range(4)]
        for t in tickets:
            controller.admit(t)
        drained = controller.drain()
        assert set(drained) == set(tickets)
        assert all(t.shed is not None and t.shed.reason == "server-shutdown"
                   for t in tickets)
        assert controller.queued == 0

    def test_offered_equals_admitted_plus_shed(self):
        controller = make_controller(max_queue_depth=2)
        for index in range(5):
            controller.admit(ticket(key=f"w{index}"))
        stats = controller.stats()
        assert stats["offered"] == 5
        assert stats["admitted"] + stats["shed_total"] == 5
        tenant = stats["tenants"]["default"]
        assert tenant["offered"] == 5
        assert tenant["admitted"] + tenant["shed"] == 5

    def test_stats_are_json_serialisable(self):
        import json

        controller = make_controller()
        controller.admit(ticket())
        json.dumps(controller.stats())
