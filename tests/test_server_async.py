"""End-to-end tests for the asyncio serving tier.

Each test spins up a real :class:`EmbeddingServer` on a loopback socket
(port 0) inside ``asyncio.run`` and talks to it with the real
:class:`AsyncNetEmbedClient` — the full protocol path, not mocks.  Tests
that need to control timing inject a stub service whose ``submit`` blocks
on an event, so overload scenarios are deterministic rather than sleep-based.
"""

from __future__ import annotations

import asyncio
import threading
from types import SimpleNamespace

import pytest

from repro.server import (
    AdmissionConfig,
    AsyncNetEmbedClient,
    EmbeddingServer,
    ServerConfig,
    ServiceRegistry,
    TenantPolicy,
    mapping_payload,
)
from repro.service import NetEmbedService, QuerySpec


def run(coro):
    return asyncio.run(coro)


def make_registry(small_hosting, **admission_kwargs) -> ServiceRegistry:
    service = NetEmbedService(default_timeout=5.0)
    service.register_network(small_hosting)
    config = ServerConfig(default_timeout=5.0, engine_workers=1,
                          admission=AdmissionConfig(**admission_kwargs))
    return ServiceRegistry(config=config, service=service)


class StubAlgorithms:
    def names(self):
        return ["stub"]

    def __contains__(self, name):
        return name == "stub"


class BlockingService:
    """A stand-in engine whose ``submit`` blocks until released.

    Lets overload tests decide exactly when the (single) engine worker
    frees up, instead of racing against real search latency.
    """

    def __init__(self) -> None:
        self.release = threading.Event()
        self.calls = []
        self.algorithms = StubAlgorithms()

    def submit(self, spec):
        self.calls.append(spec)
        self.release.wait(timeout=10.0)
        return SimpleNamespace(status=SimpleNamespace(value="ok"),
                               algorithm_used="stub", network_name="stub-net",
                               mappings=[], elapsed_seconds=0.0)

    def stats(self):
        return {"calls": len(self.calls)}


def blocking_registry(**admission_kwargs) -> tuple:
    service = BlockingService()
    config = ServerConfig(engine_workers=1,
                          admission=AdmissionConfig(**admission_kwargs))
    registry = ServiceRegistry(config=config, service=service)
    return registry, service


# --------------------------------------------------------------------------- #
# Round trips and parity
# --------------------------------------------------------------------------- #

class TestRoundTrip:
    def test_ping(self, small_hosting):
        async def scenario():
            async with EmbeddingServer(make_registry(small_hosting)) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await client.ping()

        pong = run(scenario())
        assert pong["kind"] == "pong" and pong["protocol"] == 1

    def test_embed_matches_direct_service_call(self, small_hosting,
                                               path_query):
        """Accepted responses are byte-identical to direct engine calls."""
        constraint = "rEdge.avgDelay <= vEdge.maxDelay"
        spec = QuerySpec(query=path_query, constraint=constraint,
                         algorithm="ecf", seed=7)

        async def scenario():
            async with EmbeddingServer(make_registry(small_hosting)) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await client.embed(
                        path_query, constraint=constraint,
                        algorithm="ecf", seed=7)

        response = run(scenario())
        direct = NetEmbedService(default_timeout=5.0)
        direct.register_network(small_hosting)
        expected = direct.submit(spec)
        assert response["kind"] == "result"
        assert response["status"] == expected.status.value
        assert response["algorithm"] == expected.algorithm_used
        assert response["mappings"] == [mapping_payload(m)
                                        for m in expected.mappings]
        assert response["mappings"]  # the scenario actually finds embeddings

    def test_concurrent_requests_correlated_by_id(self, small_hosting,
                                                  path_query, triangle_query):
        """Interleaved requests come back matched to their callers."""
        async def scenario():
            async with EmbeddingServer(make_registry(small_hosting)) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await asyncio.gather(*[
                        client.embed(path_query if i % 2 == 0
                                     else triangle_query,
                                     algorithm="ecf")
                        for i in range(6)
                    ])

        responses = run(scenario())
        assert all(r["kind"] == "result" for r in responses)
        # Every path-query answer found mappings; the triangle has none on
        # this hosting graph — so a mix-up would be visible immediately.
        for i, response in enumerate(responses):
            if i % 2 == 0:
                assert response["mappings"]
            else:
                assert response["mappings"] == []


# --------------------------------------------------------------------------- #
# Overload: bounded queue, structured sheds
# --------------------------------------------------------------------------- #

class TestOverload:
    def test_burst_beyond_queue_sheds_rest(self, path_query):
        """1 worker + depth-2 queue + 5 requests = 3 served, 2 shed."""
        registry, engine = blocking_registry(max_queue_depth=2)

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    tasks = [asyncio.ensure_future(
                        client.embed(path_query, algorithm="stub"))
                        for _ in range(5)]
                    # Wait until the sheds have answered and the engine is
                    # busy with the first request before releasing it.
                    while sum(t.done() for t in tasks) < 2:
                        await asyncio.sleep(0.01)
                    engine.release.set()
                    responses = await asyncio.gather(*tasks)
                    metrics = await client.metrics()
                    return responses, metrics

        responses, metrics = run(scenario())
        kinds = [r["kind"] for r in responses]
        assert kinds.count("result") == 3
        assert kinds.count("shed") == 2
        assert all(r["reason"] == "queue-full" for r in responses
                   if r["kind"] == "shed")
        admission = metrics["admission"]
        assert admission["offered"] == 5
        assert admission["admitted"] == 3
        assert admission["shed"]["queue-full"] == 2
        assert len(engine.calls) == 3

    def test_tenant_rate_limit_over_the_wire(self, path_query):
        registry, engine = blocking_registry(
            default_policy=TenantPolicy(rate=0.001, burst=1))
        engine.release.set()  # no need to block for this one

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    first = await client.embed(path_query, algorithm="stub",
                                               tenant="t")
                    second = await client.embed(path_query, algorithm="stub",
                                                tenant="t")
                    return first, second

        first, second = run(scenario())
        assert first["kind"] == "result"
        assert second["kind"] == "shed"
        assert second["reason"] == "tenant-rate"
        assert second["tenant"] == "t"
        assert second["retry_after"] > 0

    def test_shutdown_sheds_queued_answers_inflight(self, path_query):
        """stop() answers queued work as shed and finishes inflight work."""
        registry, engine = blocking_registry(max_queue_depth=4)

        async def scenario():
            server = await EmbeddingServer(registry).start()
            client = await AsyncNetEmbedClient.connect(
                server.host, server.port)
            inflight = asyncio.ensure_future(
                client.embed(path_query, algorithm="stub"))
            queued = asyncio.ensure_future(
                client.embed(path_query, algorithm="stub"))
            while not engine.calls or registry.admission.queued < 1:
                await asyncio.sleep(0.01)
            engine.release.set()
            await server.stop()
            responses = await asyncio.gather(inflight, queued)
            await client.close()
            return responses

        inflight_resp, queued_resp = run(scenario())
        assert inflight_resp["kind"] == "result"
        assert queued_resp["kind"] == "shed"
        assert queued_resp["reason"] == "server-shutdown"


# --------------------------------------------------------------------------- #
# Deadlines: expired requests never reach the engine
# --------------------------------------------------------------------------- #

class TestDeadlines:
    def test_dead_on_arrival_never_reaches_engine(self, path_query):
        registry, engine = blocking_registry()

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await client.embed(path_query, algorithm="stub",
                                              deadline=1e-9)

        response = run(scenario())
        assert response["kind"] == "shed"
        assert response["reason"] == "deadline-expired"
        assert engine.calls == []

    def test_predicted_miss_shed_by_cost_model(self, path_query):
        registry, engine = blocking_registry()
        engine.release.set()
        # Prime the model: this workload is known to cost ~10s.
        cost_key = (None, "stub", path_query.name, path_query.num_nodes,
                    path_query.num_edges, None, None)
        registry.cost_model.observe(cost_key, 10.0)

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    hopeless = await client.embed(
                        path_query, algorithm="stub", deadline=0.5)
                    fine = await client.embed(
                        path_query, algorithm="stub", deadline=60.0)
                    return hopeless, fine

        hopeless, fine = run(scenario())
        assert hopeless["kind"] == "shed"
        assert hopeless["reason"] == "deadline-unreachable"
        assert fine["kind"] == "result"
        assert len(engine.calls) == 1  # only the feasible request ran

    def test_expired_in_queue_shed_at_dispatch(self, path_query):
        """A deadline that dies while queued is answered, never executed."""
        registry, engine = blocking_registry(max_queue_depth=4)

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    blocker = asyncio.ensure_future(
                        client.embed(path_query, algorithm="stub"))
                    while not engine.calls:
                        await asyncio.sleep(0.01)
                    doomed = asyncio.ensure_future(
                        client.embed(path_query, algorithm="stub",
                                     deadline=0.05))
                    while registry.admission.queued < 1:
                        await asyncio.sleep(0.01)
                    await asyncio.sleep(0.08)  # let the deadline lapse
                    engine.release.set()
                    return await asyncio.gather(blocker, doomed)

        blocker_resp, doomed_resp = run(scenario())
        assert blocker_resp["kind"] == "result"
        assert doomed_resp["kind"] == "shed"
        assert doomed_resp["reason"] == "deadline-expired"
        assert len(engine.calls) == 1  # the doomed request never executed


# --------------------------------------------------------------------------- #
# Metrics endpoint
# --------------------------------------------------------------------------- #

class TestMetrics:
    def test_metrics_folds_service_admission_and_transport(self, small_hosting,
                                                           path_query):
        async def scenario():
            registry = make_registry(small_hosting)
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    for _ in range(2):  # second hit warms the plan cache
                        await client.embed(path_query, algorithm="ecf")
                    return await client.metrics(), registry

        metrics, registry = run(scenario())
        assert set(metrics) == {"service", "admission", "server"}
        # The service block is NetEmbedService.stats() verbatim.
        assert metrics["service"]["plan_cache"]["hits"] == 1
        assert metrics["service"]["plan_cache"]["misses"] == 1
        assert "small-host" in metrics["service"]["networks"]
        # Admission accounting is consistent with what was offered.
        admission = metrics["admission"]
        assert admission["offered"] == 2
        assert admission["admitted"] + admission["shed_total"] == 2
        assert admission["completed"] == 2
        # Transport counters come from the server itself.
        server_block = metrics["server"]
        assert server_block["requests"]["embed"] == 2
        assert server_block["connections_total"] == 1
        assert server_block["engine_slots_free"] == 1

    def test_metrics_marks_cache_bypass_for_over_quota_tenant(
            self, small_hosting, path_query, triangle_query):
        """Beyond its plan quota a tenant is served via the one-shot path."""
        async def scenario():
            registry = make_registry(
                small_hosting,
                tenants={"t": TenantPolicy(max_plans=1)})
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    first = await client.embed(path_query, algorithm="ecf",
                                               tenant="t")
                    second = await client.embed(triangle_query,
                                                algorithm="ecf", tenant="t")
                    return first, second, await client.metrics()

        first, second, metrics = run(scenario())
        assert first["kind"] == second["kind"] == "result"
        assert first["cache_allowed"] is True
        assert second["cache_allowed"] is False
        assert metrics["admission"]["cache_bypassed"] == 1
        # Only the first workload's plan entered the cache.
        assert metrics["service"]["plan_cache"]["size"] == 1


# --------------------------------------------------------------------------- #
# Protocol errors
# --------------------------------------------------------------------------- #

class TestErrors:
    def test_bad_op(self, small_hosting):
        async def scenario():
            async with EmbeddingServer(make_registry(small_hosting)) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await client.request({"op": "teleport"})

        response = run(scenario())
        assert response["kind"] == "error" and response["error"] == "bad-op"

    def test_unknown_algorithm_is_bad_request(self, small_hosting,
                                              path_query):
        async def scenario():
            async with EmbeddingServer(make_registry(small_hosting)) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await client.embed(path_query,
                                              algorithm="quantum-annealer")

        response = run(scenario())
        assert response["kind"] == "error"
        assert response["error"] == "bad-request"
        assert "quantum-annealer" in response["message"]

    def test_bad_query_payload_is_bad_request(self, small_hosting):
        async def scenario():
            async with EmbeddingServer(make_registry(small_hosting)) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await client.request(
                        {"op": "embed", "query": {"nodes": "oops"}})

        response = run(scenario())
        assert response["kind"] == "error"
        assert response["error"] == "bad-request"

    def test_malformed_json_answers_then_hangs_up(self, small_hosting):
        async def scenario():
            async with EmbeddingServer(make_registry(small_hosting)) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"this is not json\n")
                await writer.drain()
                line = await reader.readline()
                eof = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return line, eof, server.stats()

        line, eof, stats = run(scenario())
        assert b'"error": "protocol"' in line or b'"error":"protocol"' in line
        assert eof == b""  # server hung up after answering
        assert stats["server"]["protocol_errors"] == 1

    def test_engine_exception_becomes_error_response(self, path_query):
        class ExplodingService(BlockingService):
            def submit(self, spec):
                raise RuntimeError("engine on fire")

        service = ExplodingService()
        registry = ServiceRegistry(config=ServerConfig(engine_workers=1),
                                   service=service)

        async def scenario():
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    response = await client.embed(path_query,
                                                  algorithm="stub")
                    follow_up = await client.ping()
                    return response, follow_up

        response, follow_up = run(scenario())
        assert response["kind"] == "error"
        assert response["error"] == "RuntimeError"
        assert "engine on fire" in response["message"]
        assert follow_up["kind"] == "pong"  # the server survived

    def test_deadline_must_be_positive_number(self, small_hosting,
                                              path_query):
        async def scenario():
            async with EmbeddingServer(make_registry(small_hosting)) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await client.embed(path_query, deadline=-1.0)

        response = run(scenario())
        assert response["kind"] == "error"
        assert response["error"] == "bad-request"
        assert "deadline" in response["message"]


# --------------------------------------------------------------------------- #
# Priorities over the wire
# --------------------------------------------------------------------------- #

class TestPriorities:
    def test_interactive_dispatches_before_batch(self, path_query):
        registry, engine = blocking_registry(max_queue_depth=8)

        async def scenario():
            order = []
            async with EmbeddingServer(registry) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    async def tracked(priority):
                        response = await client.embed(
                            path_query, algorithm="stub", priority=priority)
                        order.append(priority)
                        return response

                    blocker = asyncio.ensure_future(tracked("standard"))
                    while not engine.calls:
                        await asyncio.sleep(0.01)
                    order.clear()
                    batch = asyncio.ensure_future(tracked("batch"))
                    while registry.admission.queued < 1:
                        await asyncio.sleep(0.01)
                    vip = asyncio.ensure_future(tracked("interactive"))
                    while registry.admission.queued < 2:
                        await asyncio.sleep(0.01)
                    engine.release.set()
                    await asyncio.gather(blocker, batch, vip)
            return order

        order = run(scenario())
        # The interactive request arrived last but finished first.
        assert order.index("interactive") < order.index("batch")

    def test_unknown_priority_is_bad_request(self, small_hosting, path_query):
        async def scenario():
            async with EmbeddingServer(make_registry(small_hosting)) as server:
                async with await AsyncNetEmbedClient.connect(
                        server.host, server.port) as client:
                    return await client.embed(path_query, priority="vip")

        response = run(scenario())
        assert response["kind"] == "error"
        assert response["error"] == "bad-request"
        assert "priority" in response["message"]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
