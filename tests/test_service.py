"""Tests for the NETEMBED service layer: registry, monitor, reservations,
negotiation sessions and the facade."""

from __future__ import annotations

import pytest

from repro.graphs import QueryNetwork, write_graphml
from repro.service import (
    CAPACITY_NODE_CONSTRAINT,
    MonitorConfig,
    NegotiationSession,
    NetEmbedService,
    NetworkModelRegistry,
    QuerySpec,
    ReservationError,
    ReservationManager,
    SimulatedMonitor,
    UnknownNetworkError,
    with_default_demand,
)
from repro.workloads import planetlab_host


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

class TestRegistry:
    def test_register_and_get(self, small_hosting):
        registry = NetworkModelRegistry()
        name = registry.register(small_hosting)
        assert name == "small-host"
        assert registry.get() is small_hosting
        assert registry.get("small-host") is small_hosting
        assert "small-host" in registry
        assert len(registry) == 1

    def test_first_network_becomes_default(self, small_hosting):
        registry = NetworkModelRegistry()
        registry.register(small_hosting, name="one")
        other = small_hosting.copy(name="two")
        registry.register(other, name="two")
        assert registry.default_name == "one"
        registry.register(other, name="three", default=True)
        assert registry.default_name == "three"

    def test_reregistering_bumps_version(self, small_hosting):
        registry = NetworkModelRegistry()
        registry.register(small_hosting, name="net")
        assert registry.version("net") == 0
        registry.register(small_hosting.copy(), name="net")
        assert registry.version("net") == 1
        registry.touch("net")
        assert registry.version("net") == 2

    def test_unknown_network_raises(self):
        registry = NetworkModelRegistry()
        with pytest.raises(UnknownNetworkError):
            registry.get("ghost")

    def test_only_hosting_networks_accepted(self):
        registry = NetworkModelRegistry()
        with pytest.raises(TypeError):
            registry.register(QueryNetwork("q"))

    def test_unregister(self, small_hosting):
        registry = NetworkModelRegistry()
        registry.register(small_hosting, name="net")
        registry.unregister("net")
        assert len(registry) == 0
        assert registry.default_name is None
        with pytest.raises(UnknownNetworkError):
            registry.unregister("net")


# --------------------------------------------------------------------------- #
# Monitor
# --------------------------------------------------------------------------- #

class TestMonitor:
    def test_tick_bumps_model_version_and_jitters_delays(self, small_hosting):
        registry = NetworkModelRegistry()
        registry.register(small_hosting, name="net")
        monitor = SimulatedMonitor(registry, "net",
                                   config=MonitorConfig(delay_jitter=0.5,
                                                        failure_probability=0.0),
                                   rng=3)
        before = {edge: small_hosting.get_edge_attr(*edge, "avgDelay")
                  for edge in small_hosting.edges()}
        version = monitor.tick()
        assert version == 1
        assert monitor.ticks == 1
        after = {edge: small_hosting.get_edge_attr(*edge, "avgDelay")
                 for edge in small_hosting.edges()}
        assert any(before[edge] != after[edge] for edge in before)
        # min <= avg <= max is preserved.
        for u, v in small_hosting.edges():
            attrs = small_hosting.edge_attrs(u, v)
            assert attrs["minDelay"] <= attrs["avgDelay"] <= attrs["maxDelay"]

    def test_jitter_stays_bounded_around_baseline(self, small_hosting):
        registry = NetworkModelRegistry()
        registry.register(small_hosting, name="net")
        monitor = SimulatedMonitor(registry, "net",
                                   config=MonitorConfig(delay_jitter=0.1,
                                                        failure_probability=0.0),
                                   rng=4)
        monitor.run(cycles=20)
        # After many cycles the delay must stay within ±10% of the baseline
        # (jitter is applied to the baseline, not compounded).
        assert small_hosting.get_edge_attr("a", "b", "avgDelay") == pytest.approx(
            10.0, rel=0.11)

    def test_failures_and_recoveries(self, small_hosting):
        registry = NetworkModelRegistry()
        registry.register(small_hosting, name="net")
        monitor = SimulatedMonitor(registry, "net",
                                   config=MonitorConfig(failure_probability=1.0,
                                                        recovery_probability=1.0),
                                   rng=5)
        monitor.tick()
        assert len(monitor.down_nodes()) == small_hosting.num_nodes
        monitor.tick()
        assert len(monitor.down_nodes()) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MonitorConfig(delay_jitter=1.5)

    def test_run_negative_cycles_rejected(self, small_hosting):
        registry = NetworkModelRegistry()
        registry.register(small_hosting, name="net")
        monitor = SimulatedMonitor(registry, "net")
        with pytest.raises(ValueError):
            monitor.run(-1)


# --------------------------------------------------------------------------- #
# Reservations
# --------------------------------------------------------------------------- #

class TestReservations:
    def _prepared_host(self, small_hosting):
        for node in small_hosting.nodes():
            small_hosting.set_capacity(node, 2.0)
        return small_hosting

    def test_reserve_and_release(self, small_hosting, path_query, window_constraint):
        from repro.core import ECF
        hosting = self._prepared_host(small_hosting)
        result = ECF().search(path_query, hosting, constraint=window_constraint,
                              max_results=1)
        manager = ReservationManager()
        reservation = manager.reserve(hosting, "net", result.first)
        assert len(manager) == 1
        for host in result.first.hosting_nodes():
            assert hosting.available_capacity(host) == pytest.approx(1.0)
        manager.release(reservation.reservation_id, hosting)
        for host in result.first.hosting_nodes():
            assert hosting.available_capacity(host) == pytest.approx(2.0)
        assert len(manager) == 0

    def test_insufficient_capacity_is_atomic(self, small_hosting):
        hosting = self._prepared_host(small_hosting)
        hosting.update_node("b", available_capacity=0.5)
        from repro.core import Mapping
        manager = ReservationManager()
        with pytest.raises(ReservationError):
            manager.reserve(hosting, "net", Mapping({"x": "a", "y": "b"}))
        # Node a must not have been charged.
        assert hosting.available_capacity("a") == pytest.approx(2.0)

    def test_missing_capacity_attribute_rejected(self, small_hosting):
        from repro.core import Mapping
        manager = ReservationManager()
        with pytest.raises(ReservationError):
            manager.reserve(small_hosting, "net", Mapping({"x": "a"}))

    def test_double_release_rejected(self, small_hosting):
        hosting = self._prepared_host(small_hosting)
        from repro.core import Mapping
        manager = ReservationManager()
        reservation = manager.reserve(hosting, "net", Mapping({"x": "a"}))
        manager.release(reservation.reservation_id, hosting)
        with pytest.raises(ReservationError):
            manager.release(reservation.reservation_id, hosting)

    def test_capacity_node_constraint_excludes_full_hosts(self, small_hosting,
                                                          path_query,
                                                          window_constraint):
        from repro.core import ECF
        hosting = self._prepared_host(small_hosting)
        hosting.update_node("a", available_capacity=0.0)
        with_default_demand(path_query, demand=1.0)
        result = ECF().search(path_query, hosting, constraint=window_constraint,
                              node_constraint=CAPACITY_NODE_CONSTRAINT)
        assert result.found
        for mapping in result.mappings:
            assert "a" not in mapping.hosting_nodes()


# --------------------------------------------------------------------------- #
# Service facade
# --------------------------------------------------------------------------- #

class TestNetEmbedService:
    @pytest.fixture
    def service(self, small_hosting):
        service = NetEmbedService(rng=7)
        service.register_network(small_hosting, name="lab")
        return service

    def test_embed_returns_valid_mappings(self, service, path_query,
                                          window_constraint, small_hosting):
        from repro.core import is_valid_mapping
        response = service.embed(path_query, constraint=window_constraint)
        assert response.found
        assert response.network_name == "lab"
        for mapping in response.mappings:
            assert is_valid_mapping(mapping, path_query, small_hosting,
                                    window_constraint)

    def test_submit_full_spec(self, service, path_query, window_constraint):
        spec = QuerySpec(query=path_query, constraint=window_constraint,
                         algorithm="ECF", max_results=2)
        response = service.submit(spec)
        assert response.algorithm_used == "ECF"
        assert 1 <= len(response.mappings) <= 2

    def test_algorithm_selection_explicit(self, service, path_query,
                                          window_constraint):
        for name in ("ECF", "RWB", "LNS"):
            response = service.embed(path_query, constraint=window_constraint,
                                     algorithm=name, max_results=1)
            assert response.algorithm_used == name

    def test_auto_selection_uses_lns_for_dense_single_match(self, path_query,
                                                            window_constraint):
        service = NetEmbedService()
        service.register_network(planetlab_host(24, rng=1), name="dense")
        response = service.embed(path_query, constraint=window_constraint,
                                 max_results=1)
        assert response.algorithm_used == "LNS"

    def test_auto_selection_uses_ecf_for_full_enumeration(self, service, path_query,
                                                          window_constraint):
        response = service.embed(path_query, constraint=window_constraint)
        assert response.algorithm_used == "ECF"

    def test_unknown_network_raises(self, service, path_query):
        with pytest.raises(UnknownNetworkError):
            service.embed(path_query, network="ghost")

    def test_no_network_registered_raises(self, path_query):
        with pytest.raises(ValueError):
            NetEmbedService().embed(path_query)

    def test_invalid_algorithm_rejected_at_spec_level(self, path_query):
        with pytest.raises(ValueError):
            QuerySpec(query=path_query, algorithm="magic")

    def test_register_from_graphml(self, tmp_path, small_hosting, path_query,
                                   window_constraint):
        path = write_graphml(small_hosting, tmp_path / "host.graphml")
        service = NetEmbedService()
        service.register_network_from_graphml(path, name="from-file")
        response = service.embed(path_query, constraint=window_constraint,
                                 algorithm="LNS", max_results=1)
        assert response.network_name == "from-file"
        assert response.found

    def test_reserve_through_service(self, small_hosting, path_query,
                                     window_constraint):
        for node in small_hosting.nodes():
            small_hosting.set_capacity(node, 1.0)
        service = NetEmbedService()
        service.register_network(small_hosting, name="lab")
        response = service.embed(path_query, constraint=window_constraint,
                                 algorithm="ECF", max_results=1, reserve=True)
        assert response.reservation_id is not None
        used = response.first.hosting_nodes()
        assert all(small_hosting.available_capacity(h) == 0.0 for h in used)
        service.release(response.reservation_id)
        assert all(small_hosting.available_capacity(h) == 1.0 for h in used)

    def test_monitor_attachment_and_reembedding(self, service, path_query,
                                                window_constraint):
        monitor = service.attach_monitor("lab", config=MonitorConfig(
            delay_jitter=0.05, failure_probability=0.0), rng=9)
        assert service.monitor("lab") is monitor
        before = service.registry.version("lab")
        monitor.run(3)
        assert service.registry.version("lab") == before + 3
        response = service.embed(path_query, constraint=window_constraint,
                                 algorithm="LNS", max_results=1)
        assert response.found

    def test_default_timeout_validation(self):
        with pytest.raises(ValueError):
            NetEmbedService(default_timeout=0)


# --------------------------------------------------------------------------- #
# Negotiation
# --------------------------------------------------------------------------- #

class TestNegotiation:
    def test_feasible_query_succeeds_without_relaxation(self, small_hosting,
                                                        path_query,
                                                        window_constraint):
        service = NetEmbedService()
        service.register_network(small_hosting)
        session = NegotiationSession(service)
        outcome = session.negotiate(path_query, constraint=window_constraint,
                                    algorithm="ECF")
        assert outcome.succeeded
        assert outcome.relaxation_used == 0.0
        assert len(outcome.rounds) == 1

    def test_tight_query_needs_relaxation(self, small_hosting, window_constraint):
        query = QueryNetwork("tight")
        query.add_node("x")
        query.add_node("y")
        # No hosting link has avgDelay in [11, 12], but widening the window
        # far enough eventually reaches 10ms (edge a-b).
        query.add_edge("x", "y", minDelay=11.0, maxDelay=12.0)
        service = NetEmbedService()
        service.register_network(small_hosting)
        session = NegotiationSession(service, relaxation_step=1.0, max_rounds=4)
        outcome = session.negotiate(query, constraint=window_constraint,
                                    algorithm="ECF")
        assert outcome.succeeded
        assert outcome.relaxation_used > 0.0
        # The caller's query object must not have been modified.
        assert query.get_edge_attr("x", "y", "minDelay") == 11.0

    def test_impossible_query_fails_after_max_rounds(self, small_hosting,
                                                     window_constraint):
        query = QueryNetwork("impossible")
        for node in ("x", "y", "z"):
            query.add_node(node)
        query.add_edge("x", "y", minDelay=1.0, maxDelay=2.0)
        query.add_edge("y", "z", minDelay=1.0, maxDelay=2.0)
        query.add_edge("x", "z", minDelay=1.0, maxDelay=2.0)   # triangle: impossible
        service = NetEmbedService()
        service.register_network(small_hosting)
        session = NegotiationSession(service, relaxation_step=0.1, max_rounds=2)
        outcome = session.negotiate(query, constraint=window_constraint)
        assert not outcome.succeeded
        assert len(outcome.rounds) == 2

    def test_parameter_validation(self, small_hosting):
        service = NetEmbedService()
        service.register_network(small_hosting)
        with pytest.raises(ValueError):
            NegotiationSession(service, relaxation_step=0)
        with pytest.raises(ValueError):
            NegotiationSession(service, max_rounds=0)
