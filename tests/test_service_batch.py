"""Tests for the batch/streaming service layer: submit_batch ordering,
per-request timeout isolation, thread-pool reuse, per-request seeds and the
unregistered-network error surface."""

from __future__ import annotations

import pytest

from repro.graphs import QueryNetwork
from repro.service import (
    FixedSelectionPolicy,
    NetEmbedService,
    QuerySpec,
    UnknownNetworkError,
)
from repro.workloads import planetlab_host

WINDOW = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"


def _query(name: str = "q", nodes: int = 3) -> QueryNetwork:
    query = QueryNetwork(name)
    labels = [f"{name}-{i}" for i in range(nodes)]
    for label in labels:
        query.add_node(label)
    for left, right in zip(labels, labels[1:]):
        query.add_edge(left, right, minDelay=0.0, maxDelay=10_000.0)
    return query


@pytest.fixture
def service(small_hosting):
    with NetEmbedService(rng=7, max_workers=4) as service:
        service.register_network(small_hosting, name="lab")
        yield service


class TestSubmitBatch:
    def test_responses_come_back_in_input_order(self, service, window_constraint):
        algorithms = ["ECF", "LNS", "RWB", "stress", "ECF", "bruteforce"]
        specs = [QuerySpec(query=_query(f"q{i}"), constraint=window_constraint,
                           algorithm=name, max_results=1, seed=3)
                 for i, name in enumerate(algorithms)]
        responses = service.submit_batch(specs)
        assert len(responses) == len(specs)
        for spec, response in zip(specs, responses):
            assert response.spec is spec
            assert response.found

    def test_many_specs_on_small_pool_preserve_order(self, small_hosting,
                                                     window_constraint):
        with NetEmbedService(max_workers=2) as service:
            service.register_network(small_hosting, name="lab")
            specs = [QuerySpec(query=_query(f"q{i}"), constraint=window_constraint,
                               algorithm="ECF") for i in range(12)]
            responses = service.submit_batch(specs)
        assert [r.spec.query.name for r in responses] == \
            [f"q{i}" for i in range(12)]

    def test_per_request_timeouts_are_independent(self, window_constraint):
        # One spec gets a budget far too small for full enumeration on a
        # dense network; its neighbours in the batch must still complete.
        with NetEmbedService(max_workers=3) as service:
            service.register_network(planetlab_host(30, rng=1), name="dense")
            slow = QuerySpec(query=_query("slow", nodes=6), algorithm="ECF",
                             timeout=0.02)
            fast_before = QuerySpec(query=_query("fast0"), algorithm="LNS",
                                    max_results=1, timeout=10.0)
            fast_after = QuerySpec(query=_query("fast1"), algorithm="LNS",
                                   max_results=1, timeout=10.0)
            responses = service.submit_batch([fast_before, slow, fast_after])
        assert responses[1].result.timed_out
        assert not responses[0].result.timed_out and responses[0].found
        assert not responses[2].result.timed_out and responses[2].found

    def test_thread_pool_is_created_lazily_and_reused(self, service,
                                                      window_constraint):
        assert service.executor is None
        specs = [QuerySpec(query=_query("a"), constraint=window_constraint,
                           algorithm="ECF")]
        service.submit_batch(specs)
        pool = service.executor
        assert pool is not None
        service.submit_batch(specs)
        assert service.executor is pool

    def test_shutdown_clears_the_pool(self, small_hosting, window_constraint):
        service = NetEmbedService()
        service.register_network(small_hosting, name="lab")
        service.submit_batch([QuerySpec(query=_query("a"),
                                        constraint=window_constraint)])
        assert service.executor is not None
        service.shutdown()
        assert service.executor is None

    def test_return_exceptions_keeps_slots(self, service, window_constraint):
        good = QuerySpec(query=_query("good"), constraint=window_constraint,
                         algorithm="ECF")
        bad = QuerySpec(query=_query("bad"), network="ghost")
        results = service.submit_batch([good, bad, good],
                                       return_exceptions=True)
        assert results[0].found and results[2].found
        assert isinstance(results[1], UnknownNetworkError)

    def test_default_raises_first_failure(self, service):
        with pytest.raises(UnknownNetworkError):
            service.submit_batch([QuerySpec(query=_query("bad"), network="ghost")])

    def test_per_request_seeds_make_batches_reproducible(self, service,
                                                         window_constraint):
        specs = [QuerySpec(query=_query("q", nodes=3), constraint=window_constraint,
                           algorithm="RWB", max_results=1, seed=seed)
                 for seed in (1, 2, 3, 4)]
        first = service.submit_batch(specs)
        second = service.submit_batch(specs)
        for a, b in zip(first, second):
            assert [m.as_dict() for m in a.mappings] == \
                [m.as_dict() for m in b.mappings]


class TestUnknownNetworkSurface:
    def test_error_is_not_a_keyerror_and_lists_names(self, service):
        with pytest.raises(UnknownNetworkError) as excinfo:
            service.embed(_query("q"), network="ghost")
        error = excinfo.value
        assert not isinstance(error, KeyError)
        message = str(error)
        assert "ghost" in message and "lab" in message
        assert error.available == ["lab"]

    def test_empty_registry_message_points_at_register(self, path_query):
        with pytest.raises(ValueError, match="register_network"):
            NetEmbedService().embed(path_query)


class TestServiceStreaming:
    def test_stream_yields_lazily(self, service, window_constraint):
        spec = QuerySpec(query=_query("s"), constraint=window_constraint,
                         algorithm="ECF")
        stream = service.stream(spec)
        first = next(stream)
        assert first.is_injective()
        rest = list(stream)
        eager = service.submit(spec)
        assert 1 + len(rest) == len(eager.mappings)

    def test_stream_rejects_reservations(self, service):
        spec = QuerySpec(query=_query("s"), reserve=True)
        with pytest.raises(ValueError, match="reserve"):
            service.stream(spec)


class TestSelectionPolicyWiring:
    def test_service_honours_custom_policy(self, small_hosting, window_constraint):
        service = NetEmbedService(selection_policy=FixedSelectionPolicy("stress"))
        service.register_network(small_hosting, name="lab")
        response = service.embed(_query("q"), constraint=window_constraint)
        assert response.algorithm_used == "Greedy-stress"

    def test_explicit_baseline_name_accepted(self, service, window_constraint):
        response = service.embed(_query("q"), constraint=window_constraint,
                                 algorithm="bruteforce", max_results=1)
        assert response.algorithm_used == "BruteForceCSP"
        assert response.found


class TestQuerySpecValidation:
    def test_seed_type_checked(self, path_query):
        with pytest.raises(TypeError):
            QuerySpec(query=path_query, seed="seven")

    def test_budget_fields_validated(self, path_query):
        with pytest.raises(ValueError):
            QuerySpec(query=path_query, timeout=0)
        with pytest.raises(ValueError):
            QuerySpec(query=path_query, max_results=0)

    def test_unknown_algorithm_rejected_with_names(self, path_query):
        with pytest.raises(ValueError, match="auto"):
            QuerySpec(query=path_query, algorithm="magic")

    def test_custom_registry_names_validate(self, path_query):
        from repro.api import AlgorithmRegistry, Capability
        from repro.core import LNS

        registry = AlgorithmRegistry()
        registry.register("novel", LNS, tags=["core"], capabilities=[
            Capability.COMPLETE_ENUMERATION, Capability.SUPPORTS_DIRECTED])
        spec = QuerySpec(query=path_query, algorithm="novel", registry=registry)
        assert spec.algorithm == "novel"
        with pytest.raises(ValueError):
            QuerySpec(query=path_query, algorithm="novel")   # not in default
