"""SimulatedMonitor tick semantics (§III component 1).

Pins down the monitor contract the churn/repair machinery builds on:
baseline-anchored delay jitter (repeated ticks never drift away from the
first-observed delays), the two-state up/down process and its transition
probabilities, first-tick ``up`` initialisation, delay-window consistency,
and the registry version bump that invalidates cached plans per tick.
"""

from __future__ import annotations

import pytest

from repro.graphs.hosting import HostingNetwork
from repro.service import MonitorConfig, NetworkModelRegistry, SimulatedMonitor
from repro.service.monitor import UP_ATTR


def small_network(num_nodes: int = 6, delay: float = 20.0) -> HostingNetwork:
    network = HostingNetwork("mon")
    for i in range(num_nodes):
        network.add_node(f"h{i}", cpuLoad=0.5)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            network.add_edge(f"h{i}", f"h{j}", avgDelay=delay)
    return network


def monitored(config: MonitorConfig, seed: int = 7, **kwargs):
    registry = NetworkModelRegistry()
    network = small_network(**kwargs)
    registry.register(network, name="mon")
    monitor = SimulatedMonitor(registry, network_name="mon", config=config,
                               rng=seed)
    return registry, network, monitor


class TestDelayJitter:
    def test_jitter_is_anchored_to_the_baseline_not_the_last_tick(self):
        """Multiplicative jitter around the previous value would drift
        unboundedly; the monitor must stay inside the baseline band forever."""
        config = MonitorConfig(delay_jitter=0.10, failure_probability=0.0,
                               load_jitter=0.0)
        _, network, monitor = monitored(config, delay=20.0)
        for _ in range(60):
            monitor.tick()
            for u, v in network.edges():
                delay = network.get_edge_attr(u, v, "avgDelay")
                # 20.0 * (1 ± 0.1), with the monitor's 3-decimal rounding.
                assert 17.999 <= delay <= 22.001

    def test_zero_jitter_keeps_delays_at_the_baseline(self):
        config = MonitorConfig(delay_jitter=0.0, failure_probability=0.0,
                               load_jitter=0.0)
        _, network, monitor = monitored(config, delay=20.0)
        monitor.run(5)
        assert all(network.get_edge_attr(u, v, "avgDelay") == 20.0
                   for u, v in network.edges())

    def test_delay_window_stays_consistent(self):
        """min/max are widened to contain every observed average."""
        config = MonitorConfig(delay_jitter=0.5, failure_probability=0.0)
        _, network, monitor = monitored(config)
        monitor.run(20)
        for u, v in network.edges():
            avg = network.get_edge_attr(u, v, "avgDelay")
            assert network.get_edge_attr(u, v, "minDelay") <= avg
            assert network.get_edge_attr(u, v, "maxDelay") >= avg

    def test_edges_without_the_delay_attribute_are_left_alone(self):
        registry = NetworkModelRegistry()
        network = HostingNetwork("mon")
        network.add_node("a")
        network.add_node("b")
        network.add_edge("a", "b", bandwidth=100.0)
        registry.register(network, name="mon")
        SimulatedMonitor(registry, "mon", rng=1).tick()
        assert network.get_edge_attr("a", "b", "avgDelay") is None
        assert network.get_edge_attr("a", "b", "bandwidth") == 100.0


class TestUpDownProcess:
    def test_first_tick_initialises_up_on_every_node(self):
        config = MonitorConfig(failure_probability=0.0)
        _, network, monitor = monitored(config)
        assert all(network.get_node_attr(n, UP_ATTR) is None
                   for n in network.nodes())
        monitor.tick()
        assert all(network.get_node_attr(n, UP_ATTR) is True
                   for n in network.nodes())
        assert monitor.down_nodes() == []

    def test_certain_failure_then_certain_recovery(self):
        config = MonitorConfig(failure_probability=1.0,
                               recovery_probability=1.0)
        _, network, monitor = monitored(config)
        monitor.tick()
        assert set(monitor.down_nodes()) == set(network.nodes())
        monitor.tick()
        assert monitor.down_nodes() == []

    def test_zero_failure_probability_never_downs_a_node(self):
        config = MonitorConfig(failure_probability=0.0)
        _, _, monitor = monitored(config)
        for _ in range(30):
            monitor.tick()
            assert monitor.down_nodes() == []

    def test_zero_recovery_probability_keeps_nodes_down(self):
        config = MonitorConfig(failure_probability=1.0,
                               recovery_probability=0.0)
        _, network, monitor = monitored(config)
        monitor.run(5)
        assert set(monitor.down_nodes()) == set(network.nodes())

    def test_transition_frequencies_match_the_probabilities(self):
        """Over many node-ticks the observed down fraction approaches the
        stationary distribution p_fail / (p_fail + p_recover)."""
        config = MonitorConfig(failure_probability=0.2,
                               recovery_probability=0.2,
                               delay_jitter=0.0, load_jitter=0.0)
        _, network, monitor = monitored(config, seed=3, num_nodes=12)
        down_observations = total = 0
        for _ in range(200):
            monitor.tick()
            down_observations += len(monitor.down_nodes())
            total += network.num_nodes
        assert 0.35 <= down_observations / total <= 0.65   # stationary = 0.5


class TestVersioningAndJournal:
    def test_every_tick_bumps_the_registry_version_once(self):
        registry, _, monitor = monitored(MonitorConfig())
        start = registry.version("mon")
        assert monitor.tick() == start + 1
        assert monitor.tick() == start + 2
        assert registry.version("mon") == start + 2
        assert monitor.ticks == 2

    def test_run_returns_the_final_version(self):
        registry, _, monitor = monitored(MonitorConfig())
        assert monitor.run(4) == registry.version("mon")
        assert monitor.ticks == 4
        with pytest.raises(ValueError):
            monitor.run(-1)

    def test_ticks_journal_as_attribute_only_mutations(self):
        """A monitor refresh is exactly the delta the patch path consumes:
        attribute-only, touching delay/load/up."""
        _, network, monitor = monitored(MonitorConfig(failure_probability=0.0))
        base = network.mutation_count
        monitor.tick()
        delta = network.delta_since(base)
        assert delta is not None and delta.attrs_only and not delta.empty
        touched_attrs = set()
        for names in delta.touched_edge_attrs.values():
            touched_attrs |= names
        for names in delta.touched_node_attrs.values():
            touched_attrs |= names
        assert touched_attrs <= {"avgDelay", "minDelay", "maxDelay",
                                 UP_ATTR, "cpuLoad"}
