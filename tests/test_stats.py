"""Tests for repro.analysis.stats — honest summary statistics.

The percentile definition is pinned hard: ceil-based nearest-rank (the
value at 1-based rank ``ceil(fraction * n)``), and ``None`` — never a
fabricated 0.0 — on an empty sample.  Both properties regressed once
(the old serving benchmark rounded half-to-even and returned 0.0 for
an all-shed run), so these tests are the contract.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import latency_block, percentile, slip_block


class TestPercentileEmptySample:
    def test_empty_returns_none_not_zero(self):
        assert percentile([], 0.50) is None
        assert percentile([], 0.99) is None

    def test_empty_generator_returns_none(self):
        assert percentile(iter(()), 0.95) is None


class TestPercentileNearestRank:
    """Ceil-based nearest-rank, pinned at the sizes that expose rounding."""

    def test_single_sample_is_every_percentile(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.50) == 7.0
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([7.0], 1.0) == 7.0

    def test_two_samples(self):
        # rank(0.50) = ceil(1.0) = 1 -> the smaller value; anything above
        # 0.5 lands on rank 2.  Banker's rounding used to send 0.5 to
        # rank 0-of-1 (the *first* element) via round(0.5) == 0.
        assert percentile([1.0, 2.0], 0.50) == 1.0
        assert percentile([1.0, 2.0], 0.51) == 2.0
        assert percentile([1.0, 2.0], 0.99) == 2.0

    def test_three_samples(self):
        values = [10.0, 20.0, 30.0]
        assert percentile(values, 0.333) == 10.0   # ceil(0.999) = 1
        assert percentile(values, 0.334) == 20.0   # ceil(1.002) = 2
        assert percentile(values, 0.50) == 20.0
        assert percentile(values, 0.667) == 30.0   # ceil(2.001) = 3
        assert percentile(values, 1.0) == 30.0

    def test_hundred_samples(self):
        values = list(range(1, 101))   # value k at rank k
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99
        assert percentile(values, 0.999) == 100
        assert percentile(values, 1.0) == 100
        assert percentile(values, 0.0) == 1       # rank clamps to 1

    def test_input_order_is_irrelevant(self):
        assert percentile([3.0, 1.0, 2.0], 0.99) == 3.0

    def test_fraction_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


class TestLatencyBlock:
    def test_empty_sample_is_all_none(self):
        block = latency_block([])
        assert block["served"] == 0
        assert block["p50_seconds"] is None
        assert block["p95_seconds"] is None
        assert block["p99_seconds"] is None
        assert block["mean_seconds"] is None
        assert block["max_seconds"] is None

    def test_populated_sample(self):
        block = latency_block([0.004, 0.001, 0.002, 0.003])
        assert block["served"] == 4
        assert block["p50_seconds"] == 0.002
        assert block["max_seconds"] == 0.004
        assert block["mean_seconds"] == pytest.approx(0.0025)

    def test_never_nan(self):
        block = latency_block([0.001])
        for value in block.values():
            if isinstance(value, float):
                assert not math.isnan(value)


class TestSlipBlock:
    def test_empty(self):
        block = slip_block([])
        assert block["count"] == 0
        assert block["max_seconds"] is None
        assert block["total_seconds"] == 0.0

    def test_populated(self):
        block = slip_block([0.001, 0.003, 0.002])
        assert block["count"] == 3
        assert block["max_seconds"] == 0.003
        assert block["total_seconds"] == pytest.approx(0.006)
        assert block["mean_seconds"] == pytest.approx(0.002)
