"""Tests for the hosting-network generators: PlanetLab-like, BRITE-like,
transit-stub, composites and delay models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import HostingNetwork, QueryNetwork
from repro.topology import (
    CompositeSpec,
    barabasi_albert,
    composite,
    composite_series,
    connected_gnp,
    connected_graph_with_edges,
    delay_band_summary,
    level_edges,
    paper_hosting_networks,
    random_tree,
    synthetic_planetlab_trace,
    transit_stub,
    waxman,
)
from repro.topology.delays import delay_from_distance, delay_triple, euclidean_distance


class TestDelayModel:
    def test_delay_triple_ordering(self):
        for seed in range(10):
            triple = delay_triple(25.0, rng=seed)
            assert triple["minDelay"] <= triple["avgDelay"] <= triple["maxDelay"]

    def test_delay_triple_rejects_non_positive_base(self):
        with pytest.raises(ValueError):
            delay_triple(0.0)

    def test_delay_from_distance_has_floor(self):
        assert delay_from_distance(0.0) > 0

    def test_euclidean_distance(self):
        assert euclidean_distance((0, 0), (3, 4)) == pytest.approx(5.0)

    @settings(max_examples=30, deadline=None)
    @given(base=st.floats(min_value=0.5, max_value=500.0),
           seed=st.integers(min_value=0, max_value=1000))
    def test_delay_triple_property(self, base, seed):
        triple = delay_triple(base, rng=seed)
        assert triple["minDelay"] <= triple["avgDelay"] <= triple["maxDelay"]
        assert triple["minDelay"] >= 0.1


class TestPlanetLabTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthetic_planetlab_trace(num_sites=120, rng=42)

    def test_scale_and_connectivity(self, trace):
        assert trace.num_nodes == 120
        # ~66% of all pairs measured: expect a dense near-clique.
        full_clique = 120 * 119 // 2
        assert 0.55 * full_clique <= trace.num_edges <= 0.8 * full_clique
        assert trace.is_connected()
        assert isinstance(trace, HostingNetwork)

    def test_every_edge_has_a_delay_triple(self, trace):
        for u, v in trace.edges():
            attrs = trace.edge_attrs(u, v)
            assert attrs["minDelay"] <= attrs["avgDelay"] <= attrs["maxDelay"]

    def test_node_attributes_present(self, trace):
        for node in trace.nodes():
            attrs = trace.node_attrs(node)
            assert attrs["region"]
            assert attrs["osType"]
            assert "x" in attrs and "y" in attrs

    def test_delay_bands_match_paper_structure(self, trace):
        """The bands the paper's experiments rely on must be well populated."""
        bands = delay_band_summary(trace)
        # 25–175 ms: the paper quotes ~70 % of links; allow a generous window.
        assert 0.5 <= bands["25-175ms"] <= 0.95
        # 10–100 ms (clique experiment): thousands of links, i.e. a sizeable fraction.
        assert bands["10-100ms"] >= 0.15
        # Both intra-site (1–75 ms) and wide-area (75–350 ms) links are abundant.
        assert bands["1-75ms"] >= 0.15
        assert bands["75-350ms"] >= 0.15

    def test_regions_are_all_represented(self, trace):
        regions = {trace.get_node_attr(node, "region") for node in trace.nodes()}
        assert len(regions) >= 4

    def test_reproducible_with_seed(self):
        first = synthetic_planetlab_trace(num_sites=40, rng=7)
        second = synthetic_planetlab_trace(num_sites=40, rng=7)
        assert sorted(first.nodes()) == sorted(second.nodes())
        assert sorted(first.edges()) == sorted(second.edges())
        assert first.get_edge_attr(*first.edges()[0], "avgDelay") == \
            second.get_edge_attr(*second.edges()[0], "avgDelay")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            synthetic_planetlab_trace(num_sites=1)
        with pytest.raises(ValueError):
            synthetic_planetlab_trace(edge_probability=0.0)


class TestBrite:
    def test_barabasi_albert_scale(self):
        net = barabasi_albert(200, edges_per_node=2, rng=3)
        assert net.num_nodes == 200
        # E ≈ 2N (the paper's BRITE settings): seed clique + 2 per added node.
        assert 350 <= net.num_edges <= 450
        assert net.is_connected()

    def test_barabasi_albert_power_law_ish_degrees(self):
        net = barabasi_albert(300, edges_per_node=2, rng=5)
        degrees = sorted((net.degree(node) for node in net.nodes()), reverse=True)
        # Heavy tail: the best-connected node far exceeds the median degree.
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_barabasi_albert_delay_attributes(self):
        net = barabasi_albert(50, rng=1)
        for u, v in net.edges():
            attrs = net.edge_attrs(u, v)
            assert attrs["minDelay"] <= attrs["avgDelay"] <= attrs["maxDelay"]

    def test_barabasi_albert_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, edges_per_node=5)
        with pytest.raises(ValueError):
            barabasi_albert(10, edges_per_node=0)

    def test_waxman_connected(self):
        net = waxman(60, rng=9)
        assert net.num_nodes == 60
        assert net.is_connected()

    def test_waxman_validation(self):
        with pytest.raises(ValueError):
            waxman(10, alpha=0.0)
        with pytest.raises(ValueError):
            waxman(10, beta=-1.0)

    def test_paper_hosting_networks_scaled(self):
        hosts = paper_hosting_networks(rng=1, scale=0.02)
        assert len(hosts) == 3
        sizes = [host.num_nodes for host in hosts]
        assert sizes == sorted(sizes)
        assert all(host.is_connected() for host in hosts)


class TestTransitStub:
    def test_structure(self):
        net = transit_stub(num_transit_domains=2, transit_size=3,
                           stubs_per_transit_node=2, stub_size=3, rng=4)
        assert net.is_connected()
        tiers = {net.get_node_attr(node, "tier") for node in net.nodes()}
        assert tiers == {"transit", "stub"}
        transit_nodes = [n for n in net.nodes() if net.get_node_attr(n, "tier") == "transit"]
        stub_nodes = [n for n in net.nodes() if net.get_node_attr(n, "tier") == "stub"]
        assert len(transit_nodes) == 6
        assert len(stub_nodes) == 6 * 2 * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            transit_stub(num_transit_domains=0)


class TestComposite:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CompositeSpec(root_shape="torus")
        with pytest.raises(ValueError):
            CompositeSpec(num_groups=1)
        with pytest.raises(ValueError):
            CompositeSpec(group_size=0)

    def test_total_nodes(self):
        spec = CompositeSpec(root_shape="ring", num_groups=3, group_shape="star",
                             group_size=4)
        assert spec.total_nodes == 12
        net = composite(spec)
        assert net.num_nodes == 12

    def test_level_attributes(self):
        spec = CompositeSpec(root_shape="ring", num_groups=4, group_shape="clique",
                             group_size=3)
        net = composite(spec)
        root = level_edges(net, 0)
        local = level_edges(net, 1)
        assert len(root) == 4            # ring of 4 groups
        assert len(local) == 4 * 3       # clique of 3 per group
        assert len(root) + len(local) == net.num_edges

    def test_gateways_carry_root_level_edges(self):
        net = composite(CompositeSpec(root_shape="ring", num_groups=3,
                                      group_shape="star", group_size=3))
        for u, v in level_edges(net, 0):
            assert net.get_node_attr(u, "gateway") is True
            assert net.get_node_attr(v, "gateway") is True

    def test_single_node_groups(self):
        net = composite(CompositeSpec(root_shape="clique", num_groups=3,
                                      group_shape="star", group_size=1))
        assert net.num_nodes == 3
        assert net.num_edges == 3

    def test_composite_series_sizes(self):
        series = composite_series([8, 16, 24], group_size=4)
        assert [net.num_nodes for net in series] == [8, 16, 24]
        assert all(isinstance(net, QueryNetwork) for net in series)


class TestRandomGraphHelpers:
    def test_random_tree(self):
        net = random_tree(10, rng=2)
        assert net.num_edges == 9
        assert net.is_connected()

    def test_connected_gnp(self):
        net = connected_gnp(15, 0.2, rng=3)
        assert net.is_connected()
        assert net.num_edges >= 14

    def test_connected_graph_with_edges_exact(self):
        net = connected_graph_with_edges(8, 12, rng=4)
        assert net.num_nodes == 8
        assert net.num_edges == 12
        assert net.is_connected()

    def test_connected_graph_with_edges_validation(self):
        with pytest.raises(ValueError):
            connected_graph_with_edges(5, 2)
        with pytest.raises(ValueError):
            connected_graph_with_edges(5, 100)
