"""Tests for the regular topology generators (rings, stars, cliques, ...)."""

from __future__ import annotations

import pytest

from repro.graphs import Network, QueryNetwork
from repro.topology.regular import (
    REGULAR_SHAPES,
    balanced_tree,
    clique,
    grid,
    hypercube,
    line,
    regular_by_name,
    ring,
    star,
)


class TestShapes:
    def test_ring(self):
        net = ring(5)
        assert net.num_nodes == 5
        assert net.num_edges == 5
        assert all(net.degree(node) == 2 for node in net.nodes())
        assert net.is_connected()

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring(2)

    def test_line(self):
        net = line(4)
        assert net.num_nodes == 4
        assert net.num_edges == 3
        degrees = sorted(net.degree(node) for node in net.nodes())
        assert degrees == [1, 1, 2, 2]

    def test_star(self):
        net = star(6)
        assert net.num_nodes == 7
        assert net.num_edges == 6
        assert net.degree("n0") == 6
        assert all(net.degree(f"n{i}") == 1 for i in range(1, 7))

    def test_clique(self):
        net = clique(5)
        assert net.num_nodes == 5
        assert net.num_edges == 10
        assert all(net.degree(node) == 4 for node in net.nodes())

    def test_clique_minimum_size(self):
        with pytest.raises(ValueError):
            clique(1)

    def test_balanced_tree(self):
        net = balanced_tree(branching=2, depth=3)
        assert net.num_nodes == 1 + 2 + 4 + 8
        assert net.num_edges == net.num_nodes - 1
        assert net.is_connected()

    def test_grid(self):
        net = grid(3, 4)
        assert net.num_nodes == 12
        assert net.num_edges == 3 * 3 + 2 * 4   # horizontal + vertical
        assert net.is_connected()

    def test_hypercube(self):
        net = hypercube(3)
        assert net.num_nodes == 8
        assert net.num_edges == 12
        assert all(net.degree(node) == 3 for node in net.nodes())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            line(1)
        with pytest.raises(ValueError):
            star(0)
        with pytest.raises(ValueError):
            balanced_tree(0, 2)
        with pytest.raises(ValueError):
            grid(0, 3)
        with pytest.raises(ValueError):
            hypercube(0)


class TestRegistryAndClasses:
    def test_default_class_is_query_network(self):
        assert isinstance(ring(4), QueryNetwork)

    def test_custom_class(self):
        net = ring(4, cls=Network)
        assert isinstance(net, Network)
        assert not isinstance(net, QueryNetwork)

    def test_custom_prefix(self):
        net = line(3, prefix="host")
        assert set(net.nodes()) == {"host0", "host1", "host2"}

    def test_regular_by_name_total_node_semantics(self):
        for shape in REGULAR_SHAPES:
            net = regular_by_name(shape, 5)
            assert net.num_nodes == 5, shape

    def test_regular_by_name_unknown_shape(self):
        with pytest.raises(ValueError):
            regular_by_name("torus", 5)
