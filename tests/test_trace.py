"""Tests for repro.workloads.trace — replayable JSONL trace artifacts.

The trace is the experiment: it must serialise to deterministic bytes
(same seed ⇒ byte-identical file), round-trip losslessly, reject malformed
artifacts loudly, and replay to the identical per-request outcome
classification even across a process boundary.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness import SCENARIOS, build_trace, load_scenario
from repro.workloads import (
    TRACE_SCHEMA_VERSION,
    Trace,
    TraceArrival,
    TraceDeparture,
    read_trace,
    workload_fingerprint,
    write_trace,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDeterministicBytes:
    def test_same_seed_byte_identical(self, tmp_path):
        config = SCENARIOS["steady"]
        first = write_trace(build_trace(config, seed=5), tmp_path / "a.jsonl")
        second = write_trace(build_trace(config, seed=5), tmp_path / "b.jsonl")
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_differs(self, tmp_path):
        config = SCENARIOS["steady"]
        first = write_trace(build_trace(config, seed=5), tmp_path / "a.jsonl")
        second = write_trace(build_trace(config, seed=6), tmp_path / "b.jsonl")
        assert first.read_bytes() != second.read_bytes()

    def test_reserving_scenario_records_departures(self, tmp_path):
        trace = build_trace(SCENARIOS["churn"], seed=5)
        assert any(a.reserve for a in trace.arrivals)
        assert trace.departures
        # Departures replay strictly within the recorded horizon.
        assert all(d.offset < trace.horizon for d in trace.departures)


class TestRoundTrip:
    def test_read_back_equals_written(self, tmp_path):
        config = SCENARIOS["churn"]   # exercises reserve/lifetime/departures
        trace = build_trace(config, seed=11)
        path = write_trace(trace, tmp_path / "trace.jsonl")
        loaded = read_trace(path)
        assert loaded.arrivals == trace.arrivals
        assert loaded.departures == trace.departures
        assert loaded.header["scenario"] == config.name
        assert loaded.header["seed"] == 11
        assert loaded.fingerprints() == trace.fingerprints()
        assert loaded.horizon == pytest.approx(config.horizon)

    def test_rewrite_is_byte_stable(self, tmp_path):
        trace = build_trace(SCENARIOS["steady"], seed=3)
        first = write_trace(trace, tmp_path / "a.jsonl")
        second = write_trace(read_trace(first), tmp_path / "b.jsonl")
        assert first.read_bytes() == second.read_bytes()

    def test_minimal_handwritten_trace(self, tmp_path):
        trace = Trace(header={"scenario": "adhoc", "seed": 0, "horizon": 2.0},
                      arrivals=[TraceArrival(offset=0.5, index=0)],
                      departures=[TraceDeparture(offset=1.5, request_index=0)])
        loaded = read_trace(write_trace(trace, tmp_path / "t.jsonl"))
        assert loaded.arrivals[0].tenant == "default"
        assert loaded.arrivals[0].lifetime is None
        assert loaded.departures[0].request_index == 0


class TestMalformedArtifacts:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"arrival","offset":0.1,"index":0}\n')
        with pytest.raises(ValueError, match="header"):
            read_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            read_trace(path)

    def test_wrong_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"kind": "header", "schema": TRACE_SCHEMA_VERSION + 1}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            read_trace(path)

    def test_unknown_record_kind_rejected(self, tmp_path):
        path = tmp_path / "alien.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "schema": TRACE_SCHEMA_VERSION})
            + "\n" + json.dumps({"kind": "telemetry", "offset": 0.1}) + "\n")
        with pytest.raises(ValueError, match="unknown record kind"):
            read_trace(path)

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "schema": TRACE_SCHEMA_VERSION})
            + "\n{not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_trace(path)


class TestFingerprints:
    def test_stable_across_rebuilds(self):
        from repro.harness import build_scene

        config = SCENARIOS["steady"]
        _, first = build_scene(config, seed=7)
        _, second = build_scene(config, seed=7)
        assert ([workload_fingerprint(w) for w in first]
                == [workload_fingerprint(w) for w in second])

    def test_distinguish_different_scenes(self):
        from repro.harness import build_scene

        config = SCENARIOS["steady"]
        _, first = build_scene(config, seed=7)
        _, second = build_scene(config, seed=8)
        assert ([workload_fingerprint(w) for w in first]
                != [workload_fingerprint(w) for w in second])


class TestSubprocessReplayParity:
    """A recorded trace replays to the identical outcome classification
    in a fresh interpreter — the fingerprints are process-stable and
    nothing about the classification depends on wall-clock timing."""

    def _replay(self, trace_path: Path, out_dir: Path) -> list:
        env_path = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "loadtest",
             "--scenario", "steady", "--seed", "4",
             "--replay", str(trace_path), "--output-dir", str(out_dir)],
            capture_output=True, text=True, cwd=str(REPO_ROOT),
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin",
                 "HOME": "/tmp"}, timeout=120)
        assert result.returncode == 0, result.stderr
        rows = (out_dir / "steady" / "requests.csv").read_text().splitlines()
        header = rows[0].split(",")
        picked = [header.index(c) for c in
                  ("index", "kind", "detail", "mappings")]
        return [tuple(row.split(",")[i] for i in picked) for row in rows[1:]]

    def test_two_subprocess_replays_classify_identically(self, tmp_path):
        trace_path = write_trace(build_trace(SCENARIOS["steady"], seed=4),
                                 tmp_path / "steady.jsonl")
        first = self._replay(trace_path, tmp_path / "run1")
        second = self._replay(trace_path, tmp_path / "run2")
        assert first, "replay produced no outcome rows"
        assert first == second
