"""Tests for the shared utilities: RNG normalisation, timing, validation."""

from __future__ import annotations

import math
import random
import time

import numpy as np
import pytest

from repro.utils import (
    Deadline,
    Stopwatch,
    TimeoutExpired,
    as_rng,
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_type,
    spawn_rngs,
)
from repro.utils.rng import as_numpy_rng, sample_without_replacement, shuffled


class TestRng:
    def test_as_rng_from_seed_is_deterministic(self):
        assert as_rng(42).random() == as_rng(42).random()

    def test_as_rng_passthrough(self):
        rng = random.Random(1)
        assert as_rng(rng) is rng

    def test_as_rng_from_numpy_generator(self):
        generator = np.random.default_rng(5)
        rng = as_rng(generator)
        assert isinstance(rng, random.Random)

    def test_as_rng_rejects_junk(self):
        with pytest.raises(TypeError):
            as_rng("seed")

    def test_as_numpy_rng_variants(self):
        assert isinstance(as_numpy_rng(3), np.random.Generator)
        assert isinstance(as_numpy_rng(random.Random(1)), np.random.Generator)
        generator = np.random.default_rng(2)
        assert as_numpy_rng(generator) is generator
        with pytest.raises(TypeError):
            as_numpy_rng("x")

    def test_spawn_rngs_are_independent_but_reproducible(self):
        first = [r.random() for r in spawn_rngs(7, 3)]
        second = [r.random() for r in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_sample_without_replacement(self):
        sample = sample_without_replacement(random.Random(1), range(10), 4)
        assert len(sample) == len(set(sample)) == 4
        with pytest.raises(ValueError):
            sample_without_replacement(random.Random(1), range(3), 5)

    def test_shuffled_preserves_elements(self):
        items = list(range(20))
        result = shuffled(random.Random(3), items)
        assert sorted(result) == items
        assert items == list(range(20))   # input untouched


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired()
        assert deadline.remaining == math.inf
        deadline.check()   # must not raise

    def test_expiry_and_check(self):
        deadline = Deadline(seconds=0.01)
        time.sleep(0.02)
        assert deadline.expired()
        with pytest.raises(TimeoutExpired):
            deadline.check()

    def test_restart_resets_clock(self):
        deadline = Deadline(seconds=0.05)
        time.sleep(0.02)
        elapsed_before = deadline.elapsed
        deadline.restart()
        assert deadline.elapsed < elapsed_before

    def test_remaining_decreases(self):
        deadline = Deadline(seconds=10.0)
        first = deadline.remaining
        time.sleep(0.01)
        assert deadline.remaining < first


class TestStopwatch:
    def test_accumulates_across_start_stop(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        first = watch.stop()
        watch.start()
        time.sleep(0.01)
        second = watch.stop()
        assert second > first > 0

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.01

    def test_reset(self):
        watch = Stopwatch().start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0


class TestValidationHelpers:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_require_type(self):
        require_type(3, int, "value")
        require_type("x", (int, str), "value")
        with pytest.raises(TypeError):
            require_type(3.5, int, "value")

    def test_numeric_requirements(self):
        require_positive(1, "x")
        require_non_negative(0, "x")
        require_in_range(5, 0, 10, "x")
        with pytest.raises(ValueError):
            require_positive(0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-1, "x")
        with pytest.raises(ValueError):
            require_in_range(11, 0, 10, "x")
