"""Crash safety: the reservation write-ahead log and recovery.

The contract under test: every reservation mutation (grant / rebind /
release) is journaled before the call returns, and a restarted service that
replays the log reconstructs the ledger **byte-identically** — same ticket
ids, mappings, demands, rebind counts, and the same remaining capacity on
every hosting node.  The SIGKILL test proves it for real: a child process
is killed mid-grant-stream and the survivor's WAL must replay to exactly
the committed prefix.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.graphs import write_graphml
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork
from repro.service import NetEmbedService, ReservationError
from repro.service.wal import (
    ReservationWAL,
    WALError,
    release_record,
    reserve_record,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def capacity_hosting(capacity: float = 16.0) -> HostingNetwork:
    """A fresh 6-node hosting network with uniform per-host capacity."""
    hosting = HostingNetwork("wal-host")
    for i in range(6):
        hosting.add_node(f"h{i}", name=f"h{i}")
        hosting.set_capacity(f"h{i}", capacity)
    edges = [("h0", "h1", 10.0), ("h1", "h2", 50.0), ("h0", "h3", 30.0),
             ("h1", "h4", 20.0), ("h2", "h5", 15.0), ("h3", "h4", 40.0),
             ("h4", "h5", 25.0)]
    for u, v, delay in edges:
        hosting.add_edge(u, v, avgDelay=delay, minDelay=delay * 0.9,
                         maxDelay=delay * 1.2)
    return hosting


def pquery(name: str = "pq") -> QueryNetwork:
    query = QueryNetwork(name)
    for node in ("x", "y", "z"):
        query.add_node(node)
    query.add_edge("x", "y", minDelay=5.0, maxDelay=35.0)
    query.add_edge("y", "z", minDelay=10.0, maxDelay=60.0)
    return query


def make_service(wal_path=None) -> NetEmbedService:
    service = NetEmbedService(default_timeout=5.0)
    service.register_network(capacity_hosting(), default=True)
    if wal_path is not None:
        service.attach_wal(wal_path)
    return service


def capacities(service: NetEmbedService) -> list:
    network = service.registry.get("wal-host")
    return [(node, network.available_capacity(node))
            for node in sorted(network.nodes(), key=str)]


def snapshot_json(service: NetEmbedService) -> str:
    return json.dumps(service.reservations.snapshot(), sort_keys=True)


# --------------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------------- #

class TestReplayRoundTrip:
    def test_reserve_replays_byte_identically(self, tmp_path):
        wal = tmp_path / "rsv.wal"
        original = make_service(wal)
        response = original.embed(query=pquery(), algorithm="ECF",
                                  max_results=1, reserve=True)
        assert response.reservation_id is not None
        expected_snapshot = snapshot_json(original)
        expected_capacity = capacities(original)
        original.shutdown()

        recovered = make_service()
        report = recovered.attach_wal(wal)
        assert report["applied"] == {"reserve": 1, "rebind": 0, "release": 0}
        assert report["active"] == 1 and report["skipped"] == 0
        assert snapshot_json(recovered) == expected_snapshot
        assert capacities(recovered) == expected_capacity
        recovered.shutdown()

    def test_rebind_and_release_replay(self, tmp_path):
        wal = tmp_path / "rsv.wal"
        original = make_service(wal)
        first = original.embed(query=pquery("a"), algorithm="ECF",
                               max_results=4, reserve=True)
        assert len(first.mappings) >= 2
        original.reservations.rebind(first.reservation_id,
                                     original.registry.get("wal-host"),
                                     first.mappings[1])
        second = original.embed(query=pquery("b"), algorithm="ECF",
                                max_results=1, reserve=True)
        original.release(first.reservation_id)
        expected_snapshot = snapshot_json(original)
        expected_capacity = capacities(original)
        original.shutdown()

        recovered = make_service()
        report = recovered.attach_wal(wal)
        assert report["applied"] == {"reserve": 2, "rebind": 1, "release": 1}
        assert report["active"] == 1
        assert snapshot_json(recovered) == expected_snapshot
        assert capacities(recovered) == expected_capacity
        # The id counter resumes past every granted id: no reuse after
        # recovery, even of released tickets.
        third = recovered.embed(query=pquery("c"), algorithm="ECF",
                                max_results=1, reserve=True)
        assert third.reservation_id not in (first.reservation_id,
                                            second.reservation_id)
        recovered.shutdown()

    def test_journaling_resumes_after_recovery(self, tmp_path):
        wal = tmp_path / "rsv.wal"
        original = make_service(wal)
        original.embed(query=pquery("a"), algorithm="ECF", max_results=1,
                       reserve=True)
        original.shutdown()

        recovered = make_service(wal)       # replay + re-attach in one step
        recovered.embed(query=pquery("b"), algorithm="ECF", max_results=1,
                        reserve=True)
        recovered.shutdown()

        # A third incarnation sees both grants — the second one was
        # journaled by the recovered service, to the same log.
        third = make_service()
        report = third.attach_wal(wal)
        assert report["applied"]["reserve"] == 2 and report["active"] == 2
        third.shutdown()

    def test_replay_requires_an_empty_ledger(self, tmp_path):
        service = make_service()
        service.embed(query=pquery(), algorithm="ECF", max_results=1,
                      reserve=True)
        with pytest.raises(ReservationError, match="empty"):
            service.reservations.replay([], service.registry.get)
        service.shutdown()


# --------------------------------------------------------------------------- #
# Log robustness: torn tails, corruption, fsync batching, compaction
# --------------------------------------------------------------------------- #

class TestLogRobustness:
    def test_torn_tail_is_skipped(self, tmp_path):
        wal = tmp_path / "rsv.wal"
        original = make_service(wal)
        original.embed(query=pquery(), algorithm="ECF", max_results=1,
                       reserve=True)
        original.shutdown()
        with open(wal, "ab") as handle:     # a write cut short by the crash
            handle.write(b'{"op": "reserve", "id": "rsv-trunc')

        records, skipped = ReservationWAL.read(wal)
        assert skipped == 1
        recovered = make_service()
        report = recovered.attach_wal(wal)
        assert report["skipped"] == 1 and report["active"] == 1
        recovered.shutdown()

    def test_corruption_before_valid_records_is_an_error(self, tmp_path):
        wal = tmp_path / "rsv.wal"
        original = make_service(wal)
        original.embed(query=pquery(), algorithm="ECF", max_results=1,
                       reserve=True)
        original.shutdown()
        lines = wal.read_bytes().splitlines(keepends=True)
        # Mangle a record that valid records follow: not a torn tail but
        # real corruption, which must refuse to replay silently.
        lines.insert(1, b"NOT JSON AT ALL\n")
        wal.write_bytes(b"".join(lines))
        with pytest.raises(WALError, match="corrupt"):
            ReservationWAL.read(wal)

    def test_fsync_batching_still_flushes_every_record(self, tmp_path):
        wal_path = tmp_path / "batched.wal"
        wal = ReservationWAL(wal_path, fsync_batch=10)
        wal.append({"op": "counter", "next": 5})
        # No close, no sync: the record must already be flushed (fsync
        # batching trades durability granularity, never visibility).
        records, skipped = ReservationWAL.read(wal_path)
        assert skipped == 0
        assert records[-1] == {"op": "counter", "next": 5}
        wal.close()

    def test_compaction_keeps_active_state_and_counter(self, tmp_path):
        wal = tmp_path / "rsv.wal"
        original = make_service(wal)
        kept = original.embed(query=pquery("a"), algorithm="ECF",
                              max_results=1, reserve=True)
        dropped = original.embed(query=pquery("b"), algorithm="ECF",
                                 max_results=1, reserve=True)
        original.release(dropped.reservation_id)
        # Compaction intentionally forgets released tickets, so the
        # byte-identity claim covers the active ledger.
        expected_snapshot = json.dumps(
            [entry for entry in original.reservations.snapshot()
             if entry["active"]], sort_keys=True)
        expected_capacity = capacities(original)
        compacted = original.reservations.compact_wal()
        assert compacted == 1               # only the surviving grant
        original.shutdown()

        records, skipped = ReservationWAL.read(wal)
        assert skipped == 0
        ops = [r["op"] for r in records]
        assert ops == ["wal-header", "reserve", "counter"]
        assert records[0].get("compacted") is True

        recovered = make_service()
        report = recovered.attach_wal(wal)
        assert report["active"] == 1
        assert snapshot_json(recovered) == expected_snapshot
        assert capacities(recovered) == expected_capacity
        follow_up = recovered.embed(query=pquery("c"), algorithm="ECF",
                                    max_results=1, reserve=True)
        # The counter record preserved the pre-compaction sequence.
        assert follow_up.reservation_id not in (kept.reservation_id,
                                                dropped.reservation_id)
        recovered.shutdown()

    def test_record_builders_round_trip_node_ids(self):
        # Node ids ship as [query, host] pairs, not object keys: JSON
        # object keys are always strings, which would corrupt int ids.
        service = make_service()
        response = service.embed(query=pquery(), algorithm="ECF",
                                 max_results=1, reserve=True)
        reservation = service.reservations.get(response.reservation_id)
        record = reserve_record(reservation)
        assert isinstance(record["mapping"], list)
        assert isinstance(record["demands"], list)
        assert release_record("rsv-000001", "capacity")["op"] == "release"
        service.shutdown()


# --------------------------------------------------------------------------- #
# The SIGKILL kill-and-restart proof
# --------------------------------------------------------------------------- #

CHILD_SCRIPT = textwrap.dedent("""\
    import sys, time
    from repro.graphs.query import QueryNetwork
    from repro.service import NetEmbedService

    host_path, wal_path = sys.argv[1], sys.argv[2]
    service = NetEmbedService(default_timeout=5.0)
    service.register_network_from_graphml(host_path, default=True)
    service.attach_wal(wal_path)
    for i in range(10):
        query = QueryNetwork(f"kq{i}")
        for node in ("x", "y", "z"):
            query.add_node(node)
        query.add_edge("x", "y", minDelay=5.0, maxDelay=35.0)
        query.add_edge("y", "z", minDelay=10.0, maxDelay=60.0)
        response = service.embed(query=query, algorithm="ECF",
                                 max_results=1, reserve=True)
        print(f"COMMIT {response.reservation_id}", flush=True)
        time.sleep(0.2)
""")


class TestKillAndRestart:
    def test_sigkill_mid_stream_recovers_the_committed_prefix(self, tmp_path):
        host_path = tmp_path / "host.graphml"
        write_graphml(capacity_hosting(), host_path)
        wal_path = tmp_path / "rsv.wal"
        child = tmp_path / "child.py"
        child.write_text(CHILD_SCRIPT)

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, str(child), str(host_path), str(wal_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        committed = []
        try:
            while len(committed) < 3:
                line = proc.stdout.readline()
                assert line, f"child exited early: {proc.stderr.read()}"
                if line.startswith("COMMIT "):
                    committed.append(line.split()[1])
            proc.send_signal(signal.SIGKILL)
            remainder, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:     # pragma: no cover - cleanup path
                proc.kill()
                proc.communicate()
        committed += [line.split()[1] for line in remainder.splitlines()
                      if line.startswith("COMMIT ")]
        assert 3 <= len(committed) < 10     # killed mid-stream, not after

        recovered = NetEmbedService(default_timeout=5.0)
        recovered.register_network_from_graphml(host_path, default=True)
        report = recovered.attach_wal(wal_path)
        active = report["active"]
        # Every acknowledged grant is journaled (append happens before the
        # COMMIT print); at most one un-acknowledged grant squeezed its
        # record in between the append and the kill.
        assert len(committed) <= active <= len(committed) + 1
        assert report["skipped"] <= 1       # at most a torn trailing line

        # Byte-identity: an uninterrupted run of the same deterministic
        # grant sequence, stopped after `active` grants, produces the
        # identical ledger and identical remaining capacity.
        reference = NetEmbedService(default_timeout=5.0)
        reference.register_network_from_graphml(host_path, default=True)
        for i in range(active):
            query = QueryNetwork(f"kq{i}")
            for node in ("x", "y", "z"):
                query.add_node(node)
            query.add_edge("x", "y", minDelay=5.0, maxDelay=35.0)
            query.add_edge("y", "z", minDelay=10.0, maxDelay=60.0)
            reference.embed(query=query, algorithm="ECF", max_results=1,
                            reserve=True)
        assert snapshot_json(recovered) == snapshot_json(reference)
        network_name = recovered.registry.default_name
        recovered_net = recovered.registry.get(network_name)
        reference_net = reference.registry.get(network_name)
        for node in recovered_net.nodes():
            assert (recovered_net.available_capacity(node)
                    == reference_net.available_capacity(node))
        # No orphans: every active ticket's charge is present, every
        # released one's charge is gone — which the capacity equality above
        # already proves; spell out the ledger count too.
        assert len(recovered.reservations.active_reservations()) == active
        recovered.shutdown()
        reference.shutdown()


# --------------------------------------------------------------------------- #
# The recover CLI
# --------------------------------------------------------------------------- #

class TestRecoverCLI:
    def test_recover_json_reports_replayed_records(self, tmp_path):
        host_path = tmp_path / "host.graphml"
        write_graphml(capacity_hosting(), host_path)
        wal = tmp_path / "rsv.wal"
        service = NetEmbedService(default_timeout=5.0)
        service.register_network_from_graphml(host_path, default=True)
        service.attach_wal(wal)
        keep = service.embed(query=pquery("a"), algorithm="ECF",
                             max_results=1, reserve=True)
        drop = service.embed(query=pquery("b"), algorithm="ECF",
                             max_results=1, reserve=True)
        service.release(drop.reservation_id)
        expected = snapshot_json(service)
        service.shutdown()

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-m", "repro", "recover", "--wal", str(wal),
             "--hosting", str(host_path), "--json"],
            capture_output=True, text=True, env=env, timeout=60)
        assert out.returncode == 0, out.stderr
        report = json.loads(out.stdout)
        assert report["records"] == 4       # header + 2 reserves + 1 release
        assert report["applied"] == {"reserve": 2, "rebind": 0, "release": 1}
        assert report["active"] == 1
        assert json.dumps(report["reservations"], sort_keys=True) == expected
        assert report["reservations"][0]["id"] == keep.reservation_id

    def test_recover_rejects_a_corrupt_log(self, tmp_path):
        host_path = tmp_path / "host.graphml"
        write_graphml(capacity_hosting(), host_path)
        wal = tmp_path / "rsv.wal"
        wal.write_text('{"op": "wal-header", "version": 1}\n'
                       "GARBAGE\n"
                       '{"op": "counter", "next": 3}\n')
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-m", "repro", "recover", "--wal", str(wal),
             "--hosting", str(host_path), "--json"],
            capture_output=True, text=True, env=env, timeout=60)
        assert out.returncode == 2
        assert "cannot recover" in out.stderr
