"""Tests for the query/workload generators mirroring §VII's experiment inputs."""

from __future__ import annotations

import pytest

from repro.core import ECF, LNS
from repro.topology.composite import LEVEL_ATTR, CompositeSpec
from repro.workloads import (
    DELAY_WINDOW_CONSTRAINT,
    SUITES,
    ChurnConfig,
    ChurnProcess,
    brite_host,
    churn_embedding_suite,
    build_clique_suite,
    build_composite_suite,
    build_subgraph_suite,
    clique_query,
    clique_query_series,
    composite_query,
    composite_query_series,
    make_globally_infeasible,
    planetlab_host,
    subgraph_query,
    subgraph_query_series,
    tighten_random_edges,
)


@pytest.fixture(scope="module")
def host():
    return planetlab_host(36, rng=5)


class TestSubgraphQueries:
    def test_query_carries_delay_windows(self, host):
        workload = subgraph_query(host, 6, rng=1)
        assert workload.feasible_by_construction
        assert workload.query.num_nodes == 6
        for u, v in workload.query.edges():
            attrs = workload.query.edge_attrs(u, v)
            assert attrs["minDelay"] < attrs["maxDelay"]

    def test_query_nodes_are_relabeled(self, host):
        workload = subgraph_query(host, 5, rng=2)
        assert all(str(node).startswith("q") for node in workload.query.nodes())
        assert not any(host.has_node(node) for node in workload.query.nodes())

    def test_sampled_query_is_actually_embeddable(self, host):
        workload = subgraph_query(host, 6, rng=3)
        result = LNS().search(workload.query, host, constraint=workload.constraint,
                              max_results=1)
        assert result.found

    def test_zero_slack_still_feasible(self, host):
        workload = subgraph_query(host, 4, slack=0.0, rng=4)
        result = LNS().search(workload.query, host, constraint=workload.constraint,
                              max_results=1)
        assert result.found

    def test_negative_slack_rejected(self, host):
        with pytest.raises(ValueError):
            subgraph_query(host, 4, slack=-0.1)

    def test_series_respects_sizes_and_count(self, host):
        series = subgraph_query_series(host, sizes=[4, 6], queries_per_size=3, rng=6)
        assert len(series) == 6
        assert sorted({w.query.num_nodes for w in series}) == [4, 6]

    def test_edge_factor_thins_queries(self, host):
        series = subgraph_query_series(host, sizes=[8], queries_per_size=2,
                                       edge_factor=1.2, rng=7)
        for workload in series:
            assert workload.query.num_edges <= int(1.2 * 8) + 1
            assert workload.query.is_connected()


class TestCliqueQueries:
    def test_structure_and_windows(self):
        workload = clique_query(5, 10.0, 100.0)
        assert workload.query.num_edges == 10
        for u, v in workload.query.edges():
            assert workload.query.get_edge_attr(u, v, "minDelay") == 10.0
            assert workload.query.get_edge_attr(u, v, "maxDelay") == 100.0
        assert not workload.feasible_by_construction

    def test_series(self):
        series = clique_query_series([2, 3, 4])
        assert [w.query.num_nodes for w in series] == [2, 3, 4]

    def test_small_clique_found_on_planetlab_like_host(self, host):
        workload = clique_query(3)
        result = LNS().search(workload.query, host, constraint=workload.constraint,
                              max_results=1, timeout=10)
        # The 10-100ms band is well populated, so a triangle should exist.
        assert result.found

    def test_validation(self):
        with pytest.raises(ValueError):
            clique_query(1)


class TestCompositeQueries:
    def test_regular_constraints_by_level(self):
        spec = CompositeSpec(root_shape="ring", num_groups=3, group_shape="star",
                             group_size=3)
        workload = composite_query(spec, root_window=(75.0, 350.0),
                                   group_window=(1.0, 75.0))
        for u, v in workload.query.edges():
            attrs = workload.query.edge_attrs(u, v)
            if attrs[LEVEL_ATTR] == 0:
                assert (attrs["minDelay"], attrs["maxDelay"]) == (75.0, 350.0)
            else:
                assert (attrs["minDelay"], attrs["maxDelay"]) == (1.0, 75.0)

    def test_irregular_constraints_fall_in_band(self):
        spec = CompositeSpec(num_groups=3, group_size=3)
        workload = composite_query(spec, irregular_band=(25.0, 175.0), rng=8)
        for u, v in workload.query.edges():
            attrs = workload.query.edge_attrs(u, v)
            assert 25.0 <= attrs["minDelay"] < attrs["maxDelay"] <= 175.0

    def test_series_sizes(self):
        series = composite_query_series([8, 12], group_size=4, rng=9)
        assert [w.query.num_nodes for w in series] == [8, 12]
        irregular = composite_query_series([8], irregular=True, rng=9)
        assert "irregular" in irregular[0].description


class TestInfeasiblePerturbation:
    def test_globally_infeasible_is_proven_infeasible(self, host):
        workload = subgraph_query(host, 5, rng=10)
        infeasible = make_globally_infeasible(workload, host, rng=10)
        # Topology untouched, only attributes changed.
        assert infeasible.query.num_edges == workload.query.num_edges
        assert infeasible.query.num_nodes == workload.query.num_nodes
        result = ECF().search(infeasible.query, host, constraint=infeasible.constraint)
        assert result.proved_infeasible

    def test_original_workload_is_not_mutated(self, host):
        workload = subgraph_query(host, 5, rng=11)
        before = {edge: dict(workload.query.edge_attrs(*edge))
                  for edge in workload.query.edges()}
        make_globally_infeasible(workload, host, rng=11)
        after = {edge: dict(workload.query.edge_attrs(*edge))
                 for edge in workload.query.edges()}
        assert before == after

    def test_perturbs_requested_number_of_edges(self, host):
        workload = subgraph_query(host, 6, rng=12)
        infeasible = make_globally_infeasible(workload, host, num_edges=3, rng=12)
        delays = [infeasible.query.get_edge_attr(u, v, "maxDelay")
                  for u, v in infeasible.query.edges()]
        global_min = min(host.edge_attribute_values("avgDelay"))
        assert sum(1 for d in delays if d < global_min) == 3

    def test_tighten_random_edges_shrinks_windows(self, host):
        workload = subgraph_query(host, 5, rng=13)
        tightened = tighten_random_edges(workload, factor=0.01, fraction=1.0, rng=13)
        for u, v in tightened.query.edges():
            original = workload.query.edge_attrs(u, v)
            new = tightened.query.edge_attrs(u, v)
            original_width = original["maxDelay"] - original["minDelay"]
            new_width = new["maxDelay"] - new["minDelay"]
            assert new_width <= original_width * 0.02 + 1e-6

    def test_validation(self, host):
        workload = subgraph_query(host, 4, rng=14)
        with pytest.raises(ValueError):
            tighten_random_edges(workload, factor=0.0)
        with pytest.raises(ValueError):
            tighten_random_edges(workload, fraction=2.0)


class TestSuites:
    def test_registry_covers_all_figures(self):
        assert set(SUITES) == {"fig8", "fig10", "fig11", "fig13", "fig14"}
        for suite in SUITES.values():
            assert suite.benchmark.hosting_nodes <= suite.paper.hosting_nodes
            assert max(suite.benchmark.query_sizes) <= max(suite.paper.query_sizes)

    def test_suite_scale_selection(self):
        suite = SUITES["fig8"]
        assert suite.scale(benchmark=True) is suite.benchmark
        assert suite.scale(benchmark=False) is suite.paper

    def test_build_subgraph_suite(self, host):
        scale = SUITES["fig8"].benchmark
        scale = type(scale)(hosting_nodes=host.num_nodes, query_sizes=(4, 6),
                            queries_per_size=2)
        workloads = build_subgraph_suite(host, scale, rng=15)
        assert len(workloads) == 4

    def test_build_clique_and_composite_suites(self):
        scale = SUITES["fig13"].benchmark
        cliques = build_clique_suite(scale)
        assert len(cliques) == len(scale.query_sizes)
        composites = build_composite_suite(SUITES["fig14"].benchmark, irregular=False,
                                           rng=16)
        assert len(composites) == len(SUITES["fig14"].benchmark.query_sizes)

    def test_hosts(self):
        pl = planetlab_host(20, rng=17)
        br = brite_host(20, rng=17)
        assert pl.num_nodes == 20 and br.num_nodes == 20
        assert pl.num_edges > br.num_edges    # near-clique vs power-law sparse

    def test_default_constraint_is_the_window_expression(self):
        assert "vEdge.minDelay" in DELAY_WINDOW_CONSTRAINT.source
        assert "vEdge.maxDelay" in DELAY_WINDOW_CONSTRAINT.source


class TestChurnProcess:
    def test_tick_touches_the_configured_fractions(self, host):
        network = host.copy()
        churn = ChurnProcess(network, ChurnConfig(link_fraction=0.1,
                                                  node_fraction=0.25), rng=1)
        tick = churn.tick()
        assert tick.index == 1 and churn.ticks == 1
        assert len(tick.touched_edges) == round(0.1 * network.num_edges)
        assert 0 < len(tick.touched_nodes) <= round(0.25 * network.num_nodes)
        assert not tick.structural

    def test_ticks_are_journal_replayable_attr_deltas(self, host):
        network = host.copy()
        base = network.mutation_count
        ChurnProcess(network, ChurnConfig(), rng=2).tick()
        delta = network.delta_since(base)
        assert delta is not None and delta.attrs_only and not delta.empty

    def test_delay_jitter_is_baseline_anchored(self, host):
        network = host.copy()
        baselines = {tuple(sorted(e, key=str)):
                     network.get_edge_attr(*e, "avgDelay")
                     for e in network.edges()}
        churn = ChurnProcess(network, ChurnConfig(link_fraction=1.0,
                                                  delay_jitter=0.2), rng=3)
        for _ in range(25):
            churn.tick()
        for u, v in network.edges():
            baseline = baselines[tuple(sorted((u, v), key=str))]
            delay = network.get_edge_attr(u, v, "avgDelay")
            assert baseline * 0.8 - 0.001 <= delay <= baseline * 1.2 + 0.001

    def test_same_seed_replays_the_same_trace(self, host):
        ticks_a = ChurnProcess(host.copy(), ChurnConfig(), rng=4).run(5)
        ticks_b = ChurnProcess(host.copy(), ChurnConfig(), rng=4).run(5)
        assert [(t.touched_edges, t.touched_nodes) for t in ticks_a] \
            == [(t.touched_edges, t.touched_nodes) for t in ticks_b]

    def test_structural_churn_removes_and_restores_links(self, host):
        network = host.copy()
        edges_before = network.num_edges
        churn = ChurnProcess(network, ChurnConfig(
            link_fraction=0.0, node_fraction=0.0,
            edge_failure_probability=1.0, edge_recovery_probability=1.0),
            rng=5)
        first = churn.tick()
        assert len(first.removed_edges) == 1 and first.structural
        assert network.num_edges == edges_before - 1
        second = churn.tick()
        assert len(second.restored_edges) == 1
        # The restored link carries its original attributes.
        (u, v) = second.restored_edges[0]
        assert network.get_edge_attr(u, v, "avgDelay") is not None

    def test_up_down_flags_are_attributes_not_removals(self, host):
        network = host.copy()
        nodes_before = network.num_nodes
        churn = ChurnProcess(network, ChurnConfig(node_fraction=1.0,
                                                  failure_probability=1.0),
                             rng=6)
        tick = churn.tick()
        assert network.num_nodes == nodes_before
        assert tick.went_down
        assert all(network.get_node_attr(n, "up") is False
                   for n in tick.went_down)

    def test_suite_queries_are_feasible_by_construction(self, host):
        workloads = churn_embedding_suite(host, num_queries=2, query_size=5,
                                          rng=7)
        assert len(workloads) == 2
        for workload in workloads:
            assert workload.feasible_by_construction
            result = ECF().find_first(workload.query, host,
                                      constraint=workload.constraint)
            assert result.found

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(link_fraction=1.5)
